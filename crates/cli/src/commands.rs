//! Subcommand implementations over a persistent store directory.
//!
//! The store layout is `<store>/index/` (persistent semantic index) plus
//! `<store>/videos/` (tile files + manifests). Scene specs are persisted at
//! ingest so later `detect` calls can regenerate ground truth
//! deterministically.

use crate::args::Args;
use std::error::Error;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use tasm_client::{Connection, LoadGen, LoadGenConfig};
use tasm_core::{LabelPredicate, Query, QueryMode, Tasm, TasmConfig};
use tasm_data::{workloads, Dataset, SyntheticVideo, WorkloadParams};
use tasm_detect::sampled::SampledDetector;
use tasm_detect::yolo::SimulatedYolo;
use tasm_detect::Detector;
use tasm_index::{SemanticIndex, TieredIndex};
use tasm_server::{ServerConfig, TasmServer};
use tasm_service::{QueryRequest, QueryService, RetilePolicy, ServiceConfig, Shutdown};
use tasm_video::{FrameSource, Rect};

type CmdResult = Result<(), Box<dyn Error>>;

const USAGE: &str = "\
tasm — tile-based storage manager for video analytics

USAGE:
  tasm ingest  --store DIR --name NAME --dataset PRESET --seconds N [--seed N]
  tasm detect  --store DIR --name NAME [--detector yolov3|yolov3-tiny] [--stride K]
  tasm scan    --store DIR --name NAME --label LABEL [--start F] [--end F] [--repeat N]
  tasm query   --store DIR --name NAME --label LABEL [--start F] [--end F]
               [--roi x,y,w,h] [--stride N] [--limit K]
               [--mode pixels|count|exists] [--repeat N] [--as-of EPOCH]
               [--explain]
  tasm retile  --store DIR --name NAME --labels L1,L2
  tasm observe --store DIR --name NAME --label LABEL [--start F] [--end F]
  tasm workload --store DIR --name NAME [--workload 1|2|3|4] [--queries N]
                [--concurrency N] [--queue-depth N] [--retile off|regret|more]
                [--query-frames N] [--seed N]
  tasm info    --store DIR [--name NAME]
  tasm stats   --store DIR [--name NAME] [--storage] [--json]
  tasm fsck    --store DIR [--name NAME]
  tasm presets
  tasm serve   --store DIR [--addr HOST:PORT] [--max-connections N]
               [--max-inflight N] [--concurrency N] [--queue-depth N]
               [--retile off|regret|more] [--backup ADDR[,ADDR]]
               [--metrics-addr HOST:PORT] [--slow-query-ms N]
               [--log-level debug|info|warn|error] [--log-json]
  tasm cluster init --map FILE --nodes id=HOST:PORT[,id=HOST:PORT...]
               [--replicas R] [--pin VIDEO=NODE[+NODE...]]
  tasm cluster show --map FILE [--video NAME]
  tasm route   --map FILE [--addr HOST:PORT] [--max-connections N]
               [--max-inflight N] [--shard-timeout-ms N] [--health-ms N]
               [--fail-threshold N] [--route-workers N]
               [--metrics-addr HOST:PORT]
               [--log-level debug|info|warn|error] [--log-json]
  tasm rebalance --map FILE --video NAME --to NODE [--timeout-ms N]
  tasm client query    --addr HOST:PORT --name NAME --label LABEL
                       [--start F] [--end F] [--roi x,y,w,h] [--stride N]
                       [--limit K] [--mode pixels|count|exists] [--as-of EPOCH]
                       [--explain]
  tasm client loadgen  --addr HOST:PORT --name NAME --label LABEL
                       [--requests N] [--connections N] [--frames N]
                       [--window N] [--reconnects N] [query flags as above]
  tasm client stats    --addr HOST:PORT [--json]
  tasm client shutdown --addr HOST:PORT

EXECUTION (any command):
  --workers N    decode worker threads (0 = one per core, default)
  --cache-mb N   decoded-GOP cache budget in MiB (0 disables; default 256)

QUERY: the spatiotemporal planner. --roi keeps only boxes intersecting the
  region of interest, --stride N samples every Nth frame of the window,
  --limit K stops after the first K matching frames, and --mode count|exists
  answers from the semantic index without decoding any tile. Pruned tiles
  and GOPs are never decoded; the command reports what the planner cut.
  Results are bit-identical to `tasm scan` filtered after the fact.
  --as-of E pins a still-live layout epoch (MVCC): the query reads that
  exact tile layout even if the video has since been re-tiled. Epochs stay
  live while a reader pins them; a reclaimed epoch is a typed error.

WORKLOAD: replays one of the paper's §5.3 workload generators through the
  concurrent QueryService: --concurrency query workers (0 = one per core)
  over a --queue-depth bounded queue, optionally with the background
  re-tiling daemon (--retile regret|more). Reports aggregate throughput,
  decoded-GOP cache reuse, the shared-scan dedup rate, and the
  submit-to-complete latency percentiles (p50/p95/p99).

SERVE: exposes every video in the store over TCP (tasm-proto wire
  protocol). Admission control: at most --max-connections sessions, at
  most --max-inflight queries per session, and a typed BUSY reply — never
  a blocked socket — when the service queue is full. Runs until a client
  sends `tasm client shutdown`; shutdown drains in-flight queries, stops
  the retile daemon, and prints the latency histogram. With --backup,
  every listed node receives a full sync at startup and every background
  re-tile is replicated (and acked) before it counts as durable.

CLUSTER: shard-map administration. `init` writes an epoch-1 CRC-framed
  cluster.json placing videos on the listed nodes by rendezvous hashing
  with R-way replication; `show` prints the map (and, with --video, one
  video's replica set). ROUTE starts the shard router over a map: clients
  speak plain tasm-proto to it, each query is forwarded to the video's
  primary (failing over to backups when a shard dies), `client stats`
  aggregates per-shard counters, and `client shutdown` drains the whole
  cluster in order. REBALANCE moves a video to a new primary with the
  staged protocol: copy, verify byte-equal manifests, flip the map epoch,
  GC the source copy.

STATS: storage accounting. Per video: on-disk tile bytes, the ratio
  against raw planar YUV, and how many tiles each codec won (dct = the
  quantized transform codec, pred = the lossless entropy-coded codec
  chosen when its stream is smaller). With --storage, also reports the
  semantic index tier: sorted-run count and sizes, memtable occupancy,
  WAL length, resident vs on-disk bytes, and the bloom/frame-range
  filter hit rate measured over one probe query per stored label.

FSCK: opens the store (running startup recovery: interrupted re-tiles are
  rolled forward or back, half-ingested videos reaped) and then validates
  every manifest against the on-disk tile files and their container
  headers — SOT chain contiguity, tile presence, dimensions, GOP length,
  frame counts, exact container lengths, stray files. Exits non-zero if
  anything is wrong. Run it after a crash or `kill -9` before trusting a
  store.

CLIENT: drives a remote server. `query` mirrors the local `query` command
  (results are bit-identical to running it on the server's store),
  `loadgen` floods the server from a connection pool (--connections) and
  reports throughput plus client-observed latency percentiles; --frames N
  with --window W slides each request's frame window across the video.

OBSERVABILITY: --metrics-addr on `serve` and `route` exposes a Prometheus
  text endpoint (GET /metrics): counters, gauges, and log-scale latency
  histograms named in ARCHITECTURE.md. --slow-query-ms N logs any query
  slower than N ms — the full per-phase trace — through the structured
  stderr logger (--log-json switches it to JSON lines, --log-level sets
  verbosity). --explain on `query` and `client query` prints the query's
  per-phase breakdown (queue/plan/decode/stream) with its trace id, the
  serving instance, and the executed layout epoch. `stats --json` and
  `client stats --json` emit machine-readable statistics.

PRESETS: visual-road-2k, visual-road-4k, netflix-public, netflix-open-source,
         xiph, mot16, el-fuente-sparse, el-fuente-dense";

/// Routes a command line to its implementation.
pub fn dispatch(argv: &[String]) -> CmdResult {
    let Some((cmd, rest)) = argv.split_first() else {
        println!("{USAGE}");
        return Ok(());
    };
    if cmd == "client" {
        return client(rest);
    }
    if cmd == "cluster" {
        return cluster(rest);
    }
    if cmd == "stats" {
        let args = Args::parse_with_flags(rest, &["storage", "json"])?;
        return stats(&args);
    }
    let args = Args::parse_with_flags(rest, &["explain", "log-json"])?;
    match cmd.as_str() {
        "ingest" => ingest(&args),
        "detect" => detect(&args),
        "scan" => scan(&args),
        "query" => query(&args),
        "retile" => retile(&args),
        "observe" => observe(&args),
        "workload" => workload(&args),
        "serve" => serve(&args),
        "route" => route(&args),
        "rebalance" => rebalance_cmd(&args),
        "info" => info(&args),
        "fsck" => fsck(&args),
        "presets" => {
            for d in Dataset::ALL {
                println!("{}", d.name());
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}").into()),
    }
}

fn open_tasm(store: &str, args: &Args) -> Result<Tasm, Box<dyn Error>> {
    let root = PathBuf::from(store);
    let cfg = TasmConfig {
        workers: args.get_or("workers", 0usize)?,
        cache_bytes: args.get_or("cache-mb", 256u64)? << 20,
        // Escape hatch for smoke tests: a tiny limit forces the tiered
        // index through run flushes and compactions on small workloads.
        index_memtable_limit: std::env::var("TASM_MEMTABLE_LIMIT")
            .ok()
            .and_then(|v| v.parse().ok()),
        ..TasmConfig::default()
    };
    Ok(Tasm::open_tiered(
        root.join("videos"),
        &root.join("index"),
        cfg,
    )?)
}

fn spec_path(store: &str, name: &str) -> PathBuf {
    Path::new(store)
        .join("videos")
        .join(name)
        .join("scene.json")
}

/// Loads the scene spec persisted at ingest and rebuilds the video, then
/// registers it with a fresh `Tasm` (manifest comes from disk state; the
/// facade re-ingests only if the files are missing).
fn load_video(store: &str, name: &str) -> Result<SyntheticVideo, Box<dyn Error>> {
    let raw = std::fs::read(spec_path(store, name))
        .map_err(|_| format!("video '{name}' not found in store (run `tasm ingest` first)"))?;
    let spec = serde_json::from_slice(&raw)?;
    Ok(SyntheticVideo::new(spec))
}

/// Attaches an existing stored video (no re-encode) and rebuilds its scene
/// for ground truth.
fn register(tasm: &Tasm, store: &str, name: &str) -> Result<SyntheticVideo, Box<dyn Error>> {
    let video = load_video(store, name)?;
    tasm.attach(name)?;
    Ok(video)
}

fn ingest(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let name = args.required("name")?;
    let dataset_name = args.required("dataset")?;
    let seconds: u32 = args.get_or("seconds", 4)?;
    let seed: u64 = args.get_or("seed", 1)?;

    let dataset = Dataset::ALL
        .into_iter()
        .find(|d| d.name() == dataset_name)
        .ok_or_else(|| format!("unknown dataset '{dataset_name}' (see `tasm presets`)"))?;
    let video = dataset.build(seconds, seed);

    let tasm = open_tasm(store, args)?;
    tasm.ingest(name, &video, 30)?;
    std::fs::write(
        spec_path(store, name),
        serde_json::to_vec_pretty(video.spec())?,
    )?;
    let bytes = tasm.video_size_bytes(name)?;
    println!(
        "ingested '{name}': {} frames at {}x{}, {} SOTs, {:.1} KiB on disk",
        video.len(),
        video.width(),
        video.height(),
        tasm.manifest(name)?.sots.len(),
        bytes as f64 / 1024.0
    );
    Ok(())
}

fn detect(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let name = args.required("name")?;
    let which = args.get("detector").unwrap_or("yolov3");
    let stride: u32 = args.get_or("stride", 1)?;

    let mut tasm = open_tasm(store, args)?;
    let video = register(&tasm, store, name)?;
    let inner: Box<dyn Detector> = match which {
        "yolov3" => Box::new(SimulatedYolo::full(1)),
        "yolov3-tiny" => Box::new(SimulatedYolo::tiny(1)),
        other => return Err(format!("unknown detector '{other}'").into()),
    };
    let mut detector = SampledDetector::new(inner, stride);
    let mut detections = 0u64;
    for f in 0..video.len() {
        let truth = video.ground_truth(f);
        for d in detector.detect(f, None, &truth) {
            tasm.add_metadata(name, &d.label, f, d.bbox)?;
            detections += 1;
        }
        tasm.mark_processed(name, f)?;
    }
    tasm.index_mut().flush()?;
    println!(
        "detected {} boxes over {} frames ({} frames run through {which}, stride {stride}); simulated cost {:.2}s",
        detections,
        video.len(),
        detector.frames_processed(),
        detector.total_cost_seconds()
    );
    Ok(())
}

fn scan(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let name = args.required("name")?;
    let label = args.required("label")?;
    let tasm = open_tasm(store, args)?;
    let video = register(&tasm, store, name)?;
    let start: u32 = args.get_or("start", 0)?;
    let end: u32 = args.get_or("end", video.len())?;

    let repeat: u32 = args.get_or("repeat", 1)?;
    for run in 0..repeat.max(1) {
        let result = tasm.scan(name, &LabelPredicate::label(label), start..end)?;
        println!(
            "scan '{label}' over frames {start}..{end}: {} regions, {} samples decoded, {} tile-chunks, {} cache hits ({} samples reused), {:.2} ms",
            result.regions.len(),
            result.stats.samples_decoded,
            result.stats.tile_chunks_decoded,
            result.cache.hits,
            result.cache.samples_reused,
            result.seconds() * 1e3
        );
        if repeat > 1 && run == 0 {
            println!(
                "  (repeating {} more times against the warm decoded-GOP cache)",
                repeat - 1
            );
        }
    }
    Ok(())
}

/// Parses `--roi x,y,w,h` into a rectangle.
fn parse_roi(spec: &str) -> Result<Rect, Box<dyn Error>> {
    let parts: Vec<u32> = spec
        .split(',')
        .map(|t| t.trim().parse::<u32>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("invalid --roi '{spec}' (expected x,y,w,h)"))?;
    let [x, y, w, h] = parts[..] else {
        return Err(format!(
            "invalid --roi '{spec}' (expected 4 values, got {})",
            parts.len()
        )
        .into());
    };
    if w == 0 || h == 0 {
        return Err(format!("--roi '{spec}' is empty").into());
    }
    Ok(Rect::new(x, y, w, h))
}

/// Builds the spatiotemporal query the `query`, `client query`, and
/// `client loadgen` commands share: `--label` with optional `--start`,
/// `--end`, `--roi`, `--stride`, `--limit`, `--mode`, and `--as-of`
/// flags.
fn build_query(args: &Args, default_end: u32) -> Result<Query, Box<dyn Error>> {
    let label = args.required("label")?;
    let start: u32 = args.get_or("start", 0)?;
    let end: u32 = args.get_or("end", default_end)?;
    let stride: u32 = args.get_or("stride", 1)?;
    let mode = match args.get("mode").unwrap_or("pixels") {
        "pixels" => QueryMode::Pixels,
        "count" => QueryMode::Count,
        "exists" => QueryMode::Exists,
        other => return Err(format!("unknown query mode '{other}'").into()),
    };
    let mut q = Query::new(LabelPredicate::label(label))
        .frames(start..end)
        .stride(stride)
        .mode(mode);
    if let Some(spec) = args.get("roi") {
        q = q.roi(parse_roi(spec)?);
    }
    if let Some(limit) = args.get("limit") {
        let limit: u32 = limit
            .parse()
            .map_err(|_| format!("invalid value '{limit}' for --limit"))?;
        q = q.limit(limit);
    }
    if let Some(epoch) = args.get("as-of") {
        let epoch: u64 = epoch
            .parse()
            .map_err(|_| format!("invalid value '{epoch}' for --as-of"))?;
        q = q.as_of(epoch);
    }
    Ok(q)
}

/// Runs a spatiotemporal query through the planner and reports both the
/// answer and what the planner pruned.
fn query(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let name = args.required("name")?;
    let label = args.required("label")?;
    let tasm = open_tasm(store, args)?;
    let video = register(&tasm, store, name)?;
    let q = build_query(args, video.len())?;
    let (start, end) = (q.frame_range().start, q.frame_range().end);
    let mode = q.query_mode();

    let repeat: u32 = args.get_or("repeat", 1)?;
    for run in 0..repeat.max(1) {
        let (result, trace) = if args.has("explain") {
            let spans = tasm_obs::TraceSpans::shared();
            let t0 = std::time::Instant::now();
            let result = tasm.query_traced(name, &q, &spans)?;
            let trace = spans.finish(tasm_obs::next_trace_id(), result.epoch, t0.elapsed());
            (result, Some(trace))
        } else {
            (tasm.query(name, &q)?, None)
        };
        match mode {
            QueryMode::Exists => println!(
                "exists '{label}' over frames {start}..{end}: {} ({} matches known from the index; no tiles decoded)",
                result.matched > 0,
                result.matched
            ),
            QueryMode::Count => println!(
                "count '{label}' over frames {start}..{end}: {} matches on {} frames (no tiles decoded)",
                result.matched, result.plan.frames_sampled
            ),
            QueryMode::Pixels => println!(
                "query '{label}' over frames {start}..{end}: {} regions on {} frames, {} samples decoded, {} cache hits, {:.2} ms",
                result.regions.len(),
                result.plan.frames_sampled,
                result.stats.samples_decoded,
                result.cache.hits,
                result.seconds() * 1e3
            ),
        }
        println!(
            "  plan: {} tiles decoded / {} pruned, {} GOPs decoded / {} skipped (layout epoch {})",
            result.plan.tiles_planned,
            result.plan.tiles_pruned,
            result.plan.gops_planned,
            result.plan.gops_skipped,
            result.epoch
        );
        if let Some(trace) = &trace {
            print_trace(trace);
        }
        if repeat > 1 && run == 0 {
            println!(
                "  (repeating {} more times against the warm decoded-GOP cache)",
                repeat - 1
            );
        }
    }
    Ok(())
}

fn retile(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let name = args.required("name")?;
    let labels: Vec<String> = args
        .required("labels")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if labels.is_empty() {
        return Err("--labels needs at least one label".into());
    }
    let tasm = open_tasm(store, args)?;
    register(&tasm, store, name)?;
    let stats = tasm.kqko_retile_all(name, &labels)?;
    let manifest = tasm.manifest(name)?;
    let tiled = manifest
        .sots
        .iter()
        .filter(|s| !s.layout.is_untiled())
        .count();
    println!(
        "retiled around [{}]: {}/{} SOTs tiled, transcode {:.2}s, new size {:.1} KiB",
        labels.join(", "),
        tiled,
        manifest.sots.len(),
        stats.seconds(),
        tasm.video_size_bytes(name)? as f64 / 1024.0
    );
    Ok(())
}

fn observe(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let name = args.required("name")?;
    let label = args.required("label")?;
    let tasm = open_tasm(store, args)?;
    let video = register(&tasm, store, name)?;
    let start: u32 = args.get_or("start", 0)?;
    let end: u32 = args.get_or("end", video.len())?;

    let stats = tasm.observe_regret(name, label, start..end)?;
    if stats.encode.bytes_produced > 0 {
        println!(
            "regret threshold crossed: re-tiled ({:.2}s transcode)",
            stats.seconds()
        );
    } else {
        println!("regret recorded; no re-tile yet");
    }
    Ok(())
}

/// Replays a §5.3 workload generator through the concurrent
/// [`QueryService`], reporting aggregate throughput and shared-scan reuse.
fn workload(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let name = args.required("name")?;
    let which: u32 = args.get_or("workload", 1)?;
    let concurrency: usize = args.get_or("concurrency", 0)?;
    let queue_depth: usize = args.get_or("queue-depth", 64)?;
    if queue_depth == 0 {
        return Err("--queue-depth must be at least 1".into());
    }
    let seed: u64 = args.get_or("seed", 1)?;
    let retile = parse_retile(args)?;

    let tasm = Arc::new(open_tasm(store, args)?);
    let video = register(&tasm, store, name)?;
    let query_frames: u32 = args.get_or("query-frames", 30.min(video.len()))?;

    // Populate the semantic index up front so the timed run measures query
    // execution, not first-touch detection.
    let frame_count = video.len();
    if tasm.processed_count(name, 0..frame_count)? < frame_count {
        let mut detector = SimulatedYolo::full(1);
        for f in 0..frame_count {
            let truth = video.ground_truth(f);
            for d in detector.detect(f, None, &truth) {
                tasm.add_metadata(name, &d.label, f, d.bbox)?;
            }
            tasm.mark_processed(name, f)?;
        }
        println!("(populated index: {frame_count} frames detected up front)");
    }

    let params = WorkloadParams::new(frame_count, query_frames.clamp(1, frame_count), seed);
    let mut queries = match which {
        1 => workloads::workload1(params),
        2 => workloads::workload2(params),
        3 => workloads::workload3(params),
        4 => workloads::workload4(params),
        other => return Err(format!("unknown workload '{other}' (1-4 supported)").into()),
    };
    if let Some(cap) = args.get("queries") {
        let cap: usize = cap
            .parse()
            .map_err(|_| format!("invalid value '{cap}' for --queries"))?;
        queries.truncate(cap);
    }

    let service = QueryService::start(
        Arc::clone(&tasm),
        ServiceConfig {
            workers: concurrency,
            queue_depth,
            retile,
            ..ServiceConfig::default()
        },
    );
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = queries
        .iter()
        .map(|q| {
            service.submit(QueryRequest::scan(
                name,
                LabelPredicate::label(&q.label),
                q.frames.clone(),
            ))
        })
        .collect::<Result<_, _>>()?;
    let mut regions = 0usize;
    for h in handles {
        regions += h.wait()?.result.regions.len();
    }
    let elapsed = t0.elapsed();
    service.drain_retile_backlog();
    let stats = service.shutdown(Shutdown::Drain).stats;
    tasm.with_index(|ix| ix.flush())?;

    let shared = stats.shared;
    println!(
        "workload {which}: {} queries in {:.2}s — {:.1} queries/s (concurrency {}, queue depth {queue_depth})",
        queries.len(),
        elapsed.as_secs_f64(),
        queries.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        if concurrency == 0 { "auto".to_string() } else { concurrency.to_string() },
    );
    println!(
        "  {} regions returned, {} samples decoded, {} reused ({:.0}% cache hit rate)",
        regions,
        stats.samples_decoded,
        stats.samples_reused,
        stats.cache_hit_rate() * 100.0,
    );
    println!(
        "  shared-scan dedup: {} owned / {} joined GOP decodes ({:.0}% join rate); {} retile ops",
        shared.owned,
        shared.joined,
        shared.join_rate() * 100.0,
        stats.retile_ops,
    );
    println!(
        "  latency (submit→complete): {} over {} queries",
        fmt_latency(&stats.latency),
        stats.latency.count,
    );
    Ok(())
}

/// Formats a latency histogram's headline percentiles in milliseconds.
fn fmt_latency(h: &tasm_service::LatencyHistogram) -> String {
    format!(
        "p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        h.p50().as_secs_f64() * 1e3,
        h.p95().as_secs_f64() * 1e3,
        h.p99().as_secs_f64() * 1e3,
    )
}

/// Parses the shared retile-policy flag.
fn parse_retile(args: &Args) -> Result<RetilePolicy, Box<dyn Error>> {
    Ok(match args.get("retile").unwrap_or("off") {
        "off" => RetilePolicy::Off,
        "regret" => RetilePolicy::Regret,
        "more" => RetilePolicy::More,
        other => return Err(format!("unknown retile policy '{other}'").into()),
    })
}

/// Applies the shared structured-logging flags (`--log-level`,
/// `--log-json`) to the process-wide logger.
fn apply_log_flags(args: &Args) -> Result<(), Box<dyn Error>> {
    if let Some(level) = args.get("log-level") {
        tasm_obs::log::set_level(match level {
            "debug" => tasm_obs::Level::Debug,
            "info" => tasm_obs::Level::Info,
            "warn" => tasm_obs::Level::Warn,
            "error" => tasm_obs::Level::Error,
            other => return Err(format!("unknown log level '{other}'").into()),
        });
    }
    if args.has("log-json") {
        tasm_obs::log::set_json(true);
    }
    Ok(())
}

/// Parses `--slow-query-ms N` into the service's slow-query threshold.
fn parse_slow_query(args: &Args) -> Result<Option<Duration>, Box<dyn Error>> {
    Ok(match args.get("slow-query-ms") {
        Some(v) => {
            let ms: u64 = v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --slow-query-ms"))?;
            Some(Duration::from_millis(ms))
        }
        None => None,
    })
}

/// Prints the `--explain` per-phase breakdown of one query trace. The
/// phase sum is bounded by the printed total: `total_micros` is the
/// server-side admission→completion measurement and the stream phase is
/// measured after it, so `queue+plan+decode+stream ≤ total+stream`.
fn print_trace(trace: &tasm_obs::QueryTrace) {
    let ms = |us: u64| us as f64 / 1e3;
    let instance = if trace.instance.is_empty() {
        "local"
    } else {
        trace.instance.as_str()
    };
    println!(
        "  trace {:016x} served by {instance} (layout epoch {}):",
        trace.trace_id, trace.epoch
    );
    println!("    queue   {:>10.3} ms", ms(trace.queue_micros));
    println!("    plan    {:>10.3} ms", ms(trace.plan_micros));
    println!("    decode  {:>10.3} ms", ms(trace.decode_micros));
    println!("    stream  {:>10.3} ms", ms(trace.stream_micros));
    println!(
        "    total   {:>10.3} ms ({:.3} ms unattributed scheduling gaps)",
        ms(trace.total_micros + trace.stream_micros),
        ms(trace.unattributed_micros()),
    );
}

/// Appends endpoint-specific series (the server's latency histogram)
/// after the global registry in a `/metrics` response.
type ExtraSeries = Arc<dyn Fn(&mut String) + Send + Sync>;

/// Starts the Prometheus exposition endpoint shared by `serve` and
/// `route` when `--metrics-addr` is given.
fn start_metrics(
    args: &Args,
    extra: Option<ExtraSeries>,
) -> Result<Option<tasm_obs::MetricsServer>, Box<dyn Error>> {
    let Some(addr) = args.get("metrics-addr") else {
        return Ok(None);
    };
    let body: Arc<dyn Fn() -> String + Send + Sync> = Arc::new(move || {
        let mut out = tasm_obs::render();
        if let Some(extra) = &extra {
            extra(&mut out);
        }
        out
    });
    let endpoint = tasm_obs::MetricsServer::serve(addr, body)?;
    println!(
        "metrics exposed at http://{}/metrics",
        endpoint.local_addr()
    );
    Ok(Some(endpoint))
}

/// Serves every video in the store over TCP until a client sends the
/// administrative shutdown frame.
fn serve(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7743");
    let concurrency: usize = args.get_or("concurrency", 0)?;
    let queue_depth: usize = args.get_or("queue-depth", 64)?;
    if queue_depth == 0 {
        return Err("--queue-depth must be at least 1".into());
    }
    let retile = parse_retile(args)?;
    apply_log_flags(args)?;
    let slow_query = parse_slow_query(args)?;
    let server_cfg = ServerConfig {
        max_connections: args.get_or("max-connections", 64usize)?,
        max_inflight: args.get_or("max-inflight", 8u32)?,
        ..ServerConfig::default()
    };

    let tasm = Arc::new(open_tasm(store, args)?);
    // Opening ran startup recovery; surface what it repaired (e.g. after a
    // kill -9 mid-re-tile) before serving any traffic.
    report_recovery(&tasm);
    // Register every stored video; queries name them over the wire.
    let mut served = Vec::new();
    let videos_dir = Path::new(store).join("videos");
    let entries = std::fs::read_dir(&videos_dir)
        .map_err(|_| format!("no store at '{store}' (run `tasm ingest` first)"))?;
    for entry in entries {
        let entry = entry?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().to_string();
        if register(&tasm, store, &name).is_ok() {
            // The detector output lives in the persistent index; replaying
            // ground truth is not needed here.
            served.push(name);
        }
    }
    if served.is_empty() {
        return Err(format!("store '{store}' holds no servable videos").into());
    }
    served.sort();

    // Primary→backup replication: full-sync every backup now, then hook
    // the retile daemon so layout changes replicate before they count as
    // durable.
    let hook: Option<Arc<dyn tasm_service::RetileHook>> = match args.get("backup") {
        Some(list) => {
            let addrs: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let hook = tasm_cluster::ReplicatorHook::bootstrap(Arc::clone(&tasm), &addrs)
                .map_err(|e| format!("backup sync failed: {e}"))?;
            println!(
                "replicating to {} backup(s): {}",
                addrs.len(),
                addrs.join(", ")
            );
            Some(Arc::new(hook))
        }
        None => None,
    };

    let server = Arc::new(TasmServer::bind_with_hook(
        tasm,
        ServiceConfig {
            workers: concurrency,
            queue_depth,
            retile,
            slow_query,
            ..ServiceConfig::default()
        },
        server_cfg,
        addr,
        hook,
    )?);
    // The latency histogram on /metrics comes from the same ServiceStats
    // snapshot `client stats` sees, so both views agree at any instant.
    let metrics = {
        let stats_server = Arc::clone(&server);
        start_metrics(
            args,
            Some(Arc::new(move |out: &mut String| {
                let stats = stats_server.stats();
                tasm_obs::render_histogram_into(
                    out,
                    "tasm_query_latency_seconds",
                    "Submit-to-complete query latency (service histogram).",
                    &stats.latency.buckets,
                    stats.latency.count,
                    stats.latency.total_micros,
                );
            })),
        )?
    };
    println!(
        "tasm-server listening on {} — serving [{}] ({} workers, queue depth {queue_depth}, retile {retile:?})",
        server.local_addr(),
        served.join(", "),
        if concurrency == 0 { "auto".to_string() } else { concurrency.to_string() },
    );
    println!(
        "stop with: tasm client shutdown --addr {}",
        server.local_addr()
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    server.wait_shutdown_requested();
    // The metrics endpoint holds the only other handle on the server;
    // stopping it first makes the unwrap below infallible.
    if let Some(m) = metrics {
        m.shutdown();
    }
    let server = Arc::try_unwrap(server).map_err(|_| "metrics endpoint still holds the server")?;
    let report = server.shutdown();
    let stats = report.service.stats;
    println!(
        "shutdown: {} sessions served, {} queries completed ({} abandoned), {} busy rejections",
        report.sessions_served,
        report.service.completed,
        report.service.abandoned,
        report.busy_rejections,
    );
    println!(
        "  latency (submit→complete): {}; {} retile ops",
        fmt_latency(&stats.latency),
        stats.retile_ops,
    );
    Ok(())
}

/// Dispatches `tasm client <subcommand>`.
fn client(argv: &[String]) -> CmdResult {
    let Some((sub, rest)) = argv.split_first() else {
        return Err(format!("client needs a subcommand\n\n{USAGE}").into());
    };
    let args = Args::parse_with_flags(rest, &["explain", "json"])?;
    match sub.as_str() {
        "query" => client_query(&args),
        "loadgen" => client_loadgen(&args),
        "stats" => client_stats(&args),
        "shutdown" => client_shutdown(&args),
        other => Err(format!("unknown client subcommand '{other}'\n\n{USAGE}").into()),
    }
}

/// Runs one remote query and reports the same summary as the local
/// `query` command, plus the client-observed latency.
fn client_query(args: &Args) -> CmdResult {
    let addr = args.required("addr")?;
    let name = args.required("name")?;
    let label = args.required("label")?;
    // The remote end clamps the window to the video length.
    let q = build_query(args, u32::MAX)?;
    let mut conn = Connection::connect(addr)?;
    let explain = args.has("explain");
    // A client-supplied trace id lets this invocation be correlated with
    // the server's slow-query log.
    let trace_id = explain.then(tasm_obs::next_trace_id);
    let outcome = conn.query_traced(name, &q, trace_id)?;
    match q.query_mode() {
        QueryMode::Exists => println!(
            "exists '{label}' on {name}@{addr}: {} ({} matches known from the index; no tiles decoded)",
            outcome.matched > 0,
            outcome.matched
        ),
        QueryMode::Count => println!(
            "count '{label}' on {name}@{addr}: {} matches on {} frames (no tiles decoded)",
            outcome.matched, outcome.plan.frames_sampled
        ),
        QueryMode::Pixels => println!(
            "query '{label}' on {name}@{addr}: {} regions on {} frames, {} samples decoded remotely, {} cache hits",
            outcome.regions.len(),
            outcome.plan.frames_sampled,
            outcome.summary.samples_decoded,
            outcome.summary.cache_hits,
        ),
    }
    println!(
        "  plan: {} tiles decoded / {} pruned, {} GOPs decoded / {} skipped (layout epoch {})",
        outcome.plan.tiles_planned,
        outcome.plan.tiles_pruned,
        outcome.plan.gops_planned,
        outcome.plan.gops_skipped,
        outcome.epoch
    );
    println!(
        "  latency: {:.2} ms end-to-end ({:.2} ms server-side decode)",
        outcome.latency.as_secs_f64() * 1e3,
        (outcome.summary.lookup_micros + outcome.summary.exec_micros) as f64 / 1e3,
    );
    if explain {
        match &outcome.trace {
            Some(trace) => print_trace(trace),
            None => println!("  (server sent no trace — pre-tracing build?)"),
        }
    }
    conn.goodbye()?;
    Ok(())
}

/// Floods a remote server from a connection pool and reports throughput
/// plus the client- and server-observed latency percentiles.
fn client_loadgen(args: &Args) -> CmdResult {
    let addr = args.required("addr")?;
    let name = args.required("name")?;
    let requests: u64 = args.get_or("requests", 100)?;
    let connections: usize = args.get_or("connections", 4)?;
    let frames: u32 = args.get_or("frames", 0)?;
    let window: u32 = args.get_or("window", 30)?;
    let reconnects: u32 = args.get_or("reconnects", 0)?;
    let query = build_query(args, u32::MAX)?;

    let report = LoadGen::new(LoadGenConfig {
        connections,
        requests,
        video: name.to_string(),
        query,
        window,
        frames,
        busy_backoff: Duration::from_millis(2),
        reconnect_attempts: reconnects,
    })
    .run(addr)?;
    println!(
        "loadgen against {name}@{addr}: {} completed, {} busy retries, {} failed ({} reconnects) in {:.2}s — {:.1} queries/s over {connections} connections",
        report.completed,
        report.busy,
        report.failed,
        report.reconnects,
        report.elapsed.as_secs_f64(),
        report.throughput(),
    );
    println!(
        "  client-observed latency: {} (mean {:.2} ms), {} regions",
        fmt_latency(&report.latency),
        report.latency.mean().as_secs_f64() * 1e3,
        report.regions,
    );
    // Server-side counters are lifetime totals for the whole server, not
    // scoped to this run — label them as such.
    if let Ok(mut conn) = Connection::connect(addr) {
        if let Ok(stats) = conn.stats() {
            println!(
                "  server lifetime: {} completed, {}, {:.0}% cache hits, {:.0}% dedup joins",
                stats.completed,
                fmt_latency(&stats.latency),
                stats.cache_hit_rate() * 100.0,
                stats.shared.join_rate() * 100.0,
            );
        }
        let _ = conn.goodbye();
    }
    Ok(())
}

/// One line of hand-built JSON for a [`tasm_service::ServiceStats`]
/// snapshot. Built
/// with `format!` rather than a serializer: the service types carry no
/// serde derives, and every field here is numeric.
fn service_stats_json(source: &str, stats: &tasm_service::ServiceStats) -> String {
    let l = &stats.latency;
    let buckets: Vec<String> = l.buckets.iter().map(|b| b.to_string()).collect();
    format!(
        concat!(
            "{{\"source\":\"{}\",\"submitted\":{},\"completed\":{},\"failed\":{},",
            "\"samples_decoded\":{},\"samples_reused\":{},\"cache_hits\":{},",
            "\"cache_misses\":{},\"shared_owned\":{},\"shared_joined\":{},",
            "\"retile_ops\":{},\"retile_errors\":{},\"queue_peak\":{},",
            "\"latency\":{{\"count\":{},\"total_micros\":{},\"p50_micros\":{},",
            "\"p95_micros\":{},\"p99_micros\":{},\"buckets\":[{}]}}}}"
        ),
        tasm_obs::log::json_escape(source),
        stats.submitted,
        stats.completed,
        stats.failed,
        stats.samples_decoded,
        stats.samples_reused,
        stats.cache_hits,
        stats.cache_misses,
        stats.shared.owned,
        stats.shared.joined,
        stats.retile_ops,
        stats.retile_errors,
        stats.queue_peak,
        l.count,
        l.total_micros,
        l.p50().as_micros(),
        l.p95().as_micros(),
        l.p99().as_micros(),
        buckets.join(","),
    )
}

/// Prints a remote server's aggregate statistics.
fn client_stats(args: &Args) -> CmdResult {
    let addr = args.required("addr")?;
    let mut conn = Connection::connect(addr)?;
    let stats = conn.stats()?;
    if args.has("json") {
        println!("{}", service_stats_json(addr, &stats));
        conn.goodbye()?;
        return Ok(());
    }
    println!(
        "{addr}: {} submitted, {} completed, {} failed, queue peak {}",
        stats.submitted, stats.completed, stats.failed, stats.queue_peak
    );
    println!(
        "  decode: {} samples decoded, {} reused ({:.0}% cache hits); dedup {} owned / {} joined",
        stats.samples_decoded,
        stats.samples_reused,
        stats.cache_hit_rate() * 100.0,
        stats.shared.owned,
        stats.shared.joined,
    );
    println!(
        "  latency: {} over {} queries; {} retile ops",
        fmt_latency(&stats.latency),
        stats.latency.count,
        stats.retile_ops,
    );
    conn.goodbye()?;
    Ok(())
}

/// Asks a remote server to shut down gracefully.
fn client_shutdown(args: &Args) -> CmdResult {
    let addr = args.required("addr")?;
    let mut conn = Connection::connect(addr)?;
    conn.shutdown_server()?;
    println!("server at {addr} acknowledged shutdown");
    Ok(())
}

/// Dispatches `tasm cluster <subcommand>`.
fn cluster(argv: &[String]) -> CmdResult {
    let Some((sub, rest)) = argv.split_first() else {
        return Err(format!("cluster needs a subcommand\n\n{USAGE}").into());
    };
    let args = Args::parse(rest)?;
    match sub.as_str() {
        "init" => cluster_init(&args),
        "show" => cluster_show(&args),
        other => Err(format!("unknown cluster subcommand '{other}'\n\n{USAGE}").into()),
    }
}

/// Writes an epoch-1 shard map from `--nodes id=addr,...`.
fn cluster_init(args: &Args) -> CmdResult {
    let map_path = PathBuf::from(args.required("map")?);
    let mut nodes = Vec::new();
    for spec in args.required("nodes")?.split(',') {
        let spec = spec.trim();
        if spec.is_empty() {
            continue;
        }
        let (id, addr) = spec
            .split_once('=')
            .ok_or_else(|| format!("node spec '{spec}' is not id=host:port"))?;
        nodes.push(tasm_cluster::NodeInfo {
            id: id.to_string(),
            addr: addr.to_string(),
        });
    }
    let replicas: u32 = args.get_or("replicas", 1)?;
    let mut map = tasm_cluster::ShardMap::new(nodes, replicas)?;
    if let Some(pin) = args.get("pin") {
        let (video, node_list) = pin
            .split_once('=')
            .ok_or_else(|| format!("pin '{pin}' is not VIDEO=NODE[+NODE...]"))?;
        let pinned: Vec<String> = node_list.split('+').map(str::to_string).collect();
        for n in &pinned {
            if map.node(n).is_none() {
                return Err(format!("pin names unknown node '{n}'").into());
            }
        }
        map.pin(video, pinned);
        // `init` publishes one atomic epoch regardless of pins.
        map.epoch = 1;
    }
    map.save(&map_path)?;
    println!(
        "wrote {} (epoch {}, {} nodes, {}-way replication)",
        map_path.display(),
        map.epoch,
        map.nodes.len(),
        map.replicas
    );
    Ok(())
}

/// Prints a shard map, optionally with one video's placement.
fn cluster_show(args: &Args) -> CmdResult {
    let map = tasm_cluster::ShardMap::load(Path::new(args.required("map")?))?;
    println!(
        "epoch {} — {} nodes, {}-way replication",
        map.epoch,
        map.nodes.len(),
        map.replicas
    );
    for n in &map.nodes {
        println!("  node {} @ {}", n.id, n.addr);
    }
    for p in &map.pins {
        println!("  pin {} -> [{}]", p.video, p.nodes.join(", "));
    }
    if let Some(video) = args.get("video") {
        let set: Vec<&str> = map
            .replica_set(video)
            .into_iter()
            .map(|n| n.id.as_str())
            .collect();
        println!("  placement '{video}': [{}]", set.join(", "));
    }
    Ok(())
}

/// Runs the shard router until a client requests shutdown, then drains
/// the whole cluster in order and reports per-shard outcomes.
fn route(args: &Args) -> CmdResult {
    let map_path = PathBuf::from(args.required("map")?);
    let addr = args.get("addr").unwrap_or("127.0.0.1:7750");
    apply_log_flags(args)?;
    let cfg = tasm_cluster::RouterConfig {
        map_path,
        max_connections: args.get_or("max-connections", 64usize)?,
        max_inflight: args.get_or("max-inflight", 64usize)?,
        shard_io_timeout: Duration::from_millis(args.get_or("shard-timeout-ms", 10_000u64)?),
        health_interval: Duration::from_millis(args.get_or("health-ms", 500u64)?),
        fail_threshold: args.get_or("fail-threshold", 2u32)?,
        route_workers: args.get_or("route-workers", 8usize)?,
        ..tasm_cluster::RouterConfig::default()
    };
    let router = tasm_cluster::Router::bind(cfg, addr)?;
    // Router-side counters (routed queries, failovers, replication acks)
    // live in the global registry; no shard is dialed on a scrape.
    let metrics = start_metrics(args, None)?;
    let stats = router.stats();
    println!(
        "tasm-router listening on {} (shard map epoch {})",
        router.local_addr(),
        stats.map_epoch
    );
    println!(
        "stop with: tasm client shutdown --addr {}",
        router.local_addr()
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    router.wait_shutdown_requested();
    if let Some(m) = metrics {
        m.shutdown();
    }
    let report = router.shutdown(true);
    println!(
        "cluster drain: {} queries routed ({} replica retries, {} failovers), {} busy rejections, {} sessions",
        report.router.routed,
        report.router.retries,
        report.router.failovers,
        report.router.busy_rejections,
        report.router.sessions_served,
    );
    for shard in &report.shards {
        match (&shard.stats, &shard.error) {
            (Some(stats), None) => println!(
                "  shard {} @ {}: {} completed, {} retile ops, {}",
                shard.node,
                shard.addr,
                stats.completed,
                stats.retile_ops,
                fmt_latency(&stats.latency),
            ),
            (Some(stats), Some(e)) => println!(
                "  shard {} @ {}: {} completed, but drain incomplete: {e}",
                shard.node, shard.addr, stats.completed,
            ),
            (None, e) => println!(
                "  shard {} @ {}: unreachable ({})",
                shard.node,
                shard.addr,
                e.as_deref().unwrap_or("no detail"),
            ),
        }
    }
    Ok(())
}

/// Moves a video to a new primary: copy → verify → flip → GC.
fn rebalance_cmd(args: &Args) -> CmdResult {
    let map_path = PathBuf::from(args.required("map")?);
    let video = args.required("video")?;
    let to = args.required("to")?;
    let timeout = Duration::from_millis(args.get_or("timeout-ms", 30_000u64)?);
    let report = tasm_cluster::rebalance(&map_path, video, to, timeout)?;
    println!(
        "rebalanced '{}': [{}] -> [{}] at map epoch {} (gc'd: {})",
        report.video,
        report.from.join(", "),
        report.to.join(", "),
        report.epoch,
        if report.removed.is_empty() {
            "nothing".to_string()
        } else {
            report.removed.join(", ")
        },
    );
    Ok(())
}

/// Prints what startup recovery repaired, if anything, mirroring it into
/// the structured log so a supervised `serve` leaves a machine-readable
/// record of post-crash repairs.
fn report_recovery(tasm: &Tasm) {
    let report = tasm.recovery_report();
    if report.deferred {
        println!(
            "recovery: deferred — another live process holds the store lock \
             (a running server?); nothing was repaired, and staging/commit \
             files may belong to its in-flight re-tiles"
        );
        tasm_obs::log::warn(
            "recovery.deferred",
            &[("reason", "store lock held by another process".to_string())],
        );
    }
    if !report.is_clean() {
        println!(
            "recovery: repaired {} interrupted operation(s):",
            report.actions.len()
        );
        tasm_obs::log::warn(
            "recovery.repaired",
            &[("actions", report.actions.len().to_string())],
        );
        for action in &report.actions {
            println!("  - {action}");
            tasm_obs::log::info("recovery.action", &[("action", action.to_string())]);
        }
    }
}

/// Sidecar files this CLI places inside video directories (next to the
/// manifest) that the store's fsck should not flag as stray.
const STORE_SIDECARS: &[&str] = &["scene.json"];

/// Validates the store: recovery runs at open, then every manifest is
/// checked against its on-disk tile files and container headers.
fn fsck(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let tasm = open_tasm(store, args)?;
    report_recovery(&tasm);
    let report = match args.get("name") {
        Some(name) => tasm.store().fsck_video_with(name, STORE_SIDECARS)?,
        None => tasm.store().fsck_with(STORE_SIDECARS)?,
    };
    if report.is_clean() {
        println!(
            "fsck clean: {} video(s), {} tile file(s) validated",
            report.videos_checked, report.tiles_checked
        );
        Ok(())
    } else {
        println!(
            "fsck found {} issue(s) across {} video(s) ({} tile file(s) validated):",
            report.issues.len(),
            report.videos_checked,
            report.tiles_checked
        );
        for issue in &report.issues {
            println!("  - {issue}");
        }
        Err(format!(
            "store '{store}' failed fsck with {} issue(s)",
            report.issues.len()
        )
        .into())
    }
}

fn info(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let videos_dir = Path::new(store).join("videos");
    let entries = std::fs::read_dir(&videos_dir)
        .map_err(|_| format!("no store at '{store}' (run `tasm ingest` first)"))?;
    let mut tasm = open_tasm(store, args)?;
    for entry in entries {
        let entry = entry?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().to_string();
        if let Some(filter) = args.get("name") {
            if filter != name {
                continue;
            }
        }
        if register(&tasm, store, &name).is_err() {
            continue;
        }
        let m = tasm.manifest(&name)?;
        let tiled = m.sots.iter().filter(|s| !s.layout.is_untiled()).count();
        let id = tasm.video_id(&name)?;
        let labels = tasm.index_mut().labels(id)?;
        println!(
            "{name}: {}x{} {} frames, {} SOTs ({} tiled), {:.1} KiB, labels: [{}]",
            m.width,
            m.height,
            m.frame_count,
            m.sots.len(),
            tiled,
            tasm.video_size_bytes(&name)? as f64 / 1024.0,
            labels.join(", ")
        );
    }
    Ok(())
}

fn stats(args: &Args) -> CmdResult {
    let store = args.required("store")?;
    let videos_dir = Path::new(store).join("videos");
    let entries = std::fs::read_dir(&videos_dir)
        .map_err(|_| format!("no store at '{store}' (run `tasm ingest` first)"))?;
    let tasm = open_tasm(store, args)?;
    let json = args.has("json");
    let mut video_objs: Vec<String> = Vec::new();
    let mut ids: Vec<u32> = Vec::new();
    for entry in entries {
        let entry = entry?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().to_string();
        if let Some(filter) = args.get("name") {
            if filter != name {
                continue;
            }
        }
        if register(&tasm, store, &name).is_err() {
            continue;
        }
        ids.push(tasm.video_id(&name)?);
        let m = tasm.manifest(&name)?;
        let disk = tasm.video_size_bytes(&name)?;
        let luma = m.width as u64 * m.height as u64;
        let raw = m.frame_count as u64 * (luma + luma / 2);
        let (mut dct, mut pred) = (0u64, 0u64);
        for sot in &m.sots {
            for &c in &sot.tile_codecs {
                if c == 0 {
                    dct += 1;
                } else {
                    pred += 1;
                }
            }
        }
        if json {
            video_objs.push(format!(
                concat!(
                    "{{\"name\":\"{}\",\"disk_bytes\":{},\"raw_bytes\":{},",
                    "\"frames\":{},\"sots\":{},\"tiles_dct\":{},\"tiles_pred\":{}}}"
                ),
                tasm_obs::log::json_escape(&name),
                disk,
                raw,
                m.frame_count,
                m.sots.len(),
                dct,
                pred,
            ));
        } else {
            println!(
                "{name}: {:.1} KiB on disk / {:.1} KiB raw ({:.2}x smaller), \
                 tiles: {dct} dct, {pred} pred",
                disk as f64 / 1024.0,
                raw as f64 / 1024.0,
                raw as f64 / disk.max(1) as f64,
            );
        }
    }
    let mut index_obj: Option<String> = None;
    if args.has("storage") {
        // A second, read-only handle on the tier: probe one query per
        // stored label so the filter counters reflect real lookups.
        let mut tier = TieredIndex::open(&Path::new(store).join("index"))?;
        for &id in &ids {
            for label in tier.labels(id)? {
                tier.query(id, &label, 0..u32::MAX)?;
            }
        }
        let ts = tier.stats();
        if json {
            index_obj = Some(format!(
                concat!(
                    "{{\"runs\":{},\"run_entries\":{},\"memtable_entries\":{},",
                    "\"detections\":{},\"disk_bytes\":{},\"resident_bytes\":{},",
                    "\"filter_probes\":{},\"filter_skips\":{},\"runs_read\":{}}}"
                ),
                ts.run_count,
                ts.run_entries,
                ts.memtable_entries,
                tier.detection_count(),
                ts.disk_bytes,
                ts.resident_bytes,
                ts.filter_probes,
                ts.filter_skips,
                ts.runs_read,
            ));
        } else {
            println!("semantic index tier:");
            println!(
                "  {} run(s) holding {} entries, memtable {} entries, {} detections total",
                ts.run_count,
                ts.run_entries,
                ts.memtable_entries,
                tier.detection_count()
            );
            for (id, n, bytes) in tier.run_summaries() {
                println!(
                    "    run {id:08}: {n} entries, {:.1} KiB",
                    bytes as f64 / 1024.0
                );
            }
            println!(
                "  disk {:.1} KiB, resident {:.1} KiB ({:.1}% of a fully resident map)",
                ts.disk_bytes as f64 / 1024.0,
                ts.resident_bytes as f64 / 1024.0,
                100.0 * ts.resident_bytes as f64
                    / ((ts.run_entries + ts.memtable_entries as u64).max(1) * 32) as f64,
            );
            println!(
                "  bloom/range filters: {} probe(s), {} skipped disk reads ({:.0}% hit rate), {} run file(s) read",
                ts.filter_probes,
                ts.filter_skips,
                100.0 * ts.filter_hit_rate(),
                ts.runs_read,
            );
        }
    }
    if json {
        match index_obj {
            Some(index) => println!(
                "{{\"videos\":[{}],\"index\":{index}}}",
                video_objs.join(",")
            ),
            None => println!("{{\"videos\":[{}]}}", video_objs.join(",")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(line: &str) -> CmdResult {
        let argv: Vec<String> = line.split_whitespace().map(|s| s.to_string()).collect();
        dispatch(&argv)
    }

    fn store(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("tasm-cli-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir.display().to_string()
    }

    #[test]
    fn full_cli_session() {
        let s = store("session");
        run(&format!(
            "ingest --store {s} --name cam --dataset visual-road-2k --seconds 1 --seed 3"
        ))
        .expect("ingest");
        run(&format!("detect --store {s} --name cam --stride 2")).expect("detect");
        run(&format!("scan --store {s} --name cam --label car")).expect("scan");
        run(&format!(
            "scan --store {s} --name cam --label car --repeat 2 --workers 2 --cache-mb 64"
        ))
        .expect("scan with execution flags");
        run(&format!(
            "scan --store {s} --name cam --label car --cache-mb 0 --workers 1"
        ))
        .expect("scan serial uncached");
        run(&format!(
            "query --store {s} --name cam --label car --roi 0,0,160,176 --stride 2 --limit 4"
        ))
        .expect("roi query");
        run(&format!(
            "query --store {s} --name cam --label car --mode count"
        ))
        .expect("count query");
        run(&format!(
            "query --store {s} --name cam --label car --mode exists --repeat 2"
        ))
        .expect("exists query");
        run(&format!("retile --store {s} --name cam --labels car")).expect("retile");
        run(&format!(
            "observe --store {s} --name cam --label car --end 30"
        ))
        .expect("observe");
        run(&format!("info --store {s}")).expect("info");
        run(&format!("stats --store {s}")).expect("stats");
        run(&format!("stats --store {s} --storage")).expect("stats storage");
        // The store is consistent after the whole session, whole-store and
        // per-video.
        run(&format!("fsck --store {s}")).expect("fsck");
        run(&format!("fsck --store {s} --name cam")).expect("fsck one video");
    }

    #[test]
    fn fsck_reports_corruption_and_unknown_videos() {
        let s = store("fsck");
        run(&format!(
            "ingest --store {s} --name cam --dataset visual-road-2k --seconds 1 --seed 3"
        ))
        .expect("ingest");
        run(&format!("fsck --store {s}")).expect("clean store");
        assert!(run(&format!("fsck --store {s} --name nope")).is_err());
        // Truncate one tile file: fsck must fail with a non-zero exit.
        let videos = Path::new(&s).join("videos").join("cam");
        let sot = std::fs::read_dir(&videos)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.path().is_dir())
            .expect("a SOT dir");
        let tile = sot.path().join("tile_000.tvf");
        let bytes = std::fs::read(&tile).unwrap();
        std::fs::write(&tile, &bytes[..bytes.len() / 2]).unwrap();
        assert!(run(&format!("fsck --store {s}")).is_err());
        assert!(run(&format!("fsck --store {s} --name cam")).is_err());
        // Repair and re-verify.
        std::fs::write(&tile, &bytes).unwrap();
        run(&format!("fsck --store {s}")).expect("repaired store");
    }

    #[test]
    fn workload_runs_through_query_service() {
        let s = store("workload");
        run(&format!(
            "ingest --store {s} --name cam --dataset visual-road-2k --seconds 1 --seed 3"
        ))
        .expect("ingest");
        // Concurrent, small queue, regret daemon on; index populates lazily
        // inside the command.
        run(&format!(
            "workload --store {s} --name cam --workload 3 --queries 12 \
             --concurrency 4 --queue-depth 4 --retile regret --query-frames 10"
        ))
        .expect("workload with service flags");
        // Serial path through the same service machinery.
        run(&format!(
            "workload --store {s} --name cam --queries 4 --concurrency 1"
        ))
        .expect("serial workload");
    }

    #[test]
    fn serve_and_client_round_trip() {
        let s = store("serve");
        run(&format!(
            "ingest --store {s} --name cam --dataset visual-road-2k --seconds 1 --seed 3"
        ))
        .expect("ingest");
        run(&format!("detect --store {s} --name cam")).expect("detect");
        // A quasi-unique loopback port; `serve` runs on its own thread
        // until `client shutdown` lands.
        let port = 21000 + (std::process::id() as usize % 20000);
        let addr = format!("127.0.0.1:{port}");
        let serve_store = s.clone();
        let serve_addr = addr.clone();
        let server = std::thread::spawn(move || {
            run(&format!(
                "serve --store {serve_store} --addr {serve_addr} --concurrency 2 --queue-depth 8"
            ))
            .map_err(|e| e.to_string())
        });
        // The listener may take a moment to come up.
        let mut attempts = 0;
        loop {
            match run(&format!(
                "client query --addr {addr} --name cam --label car --roi 0,0,160,176 --stride 2"
            )) {
                Ok(()) => break,
                Err(_) if attempts < 100 => {
                    attempts += 1;
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                Err(e) => panic!("client query never succeeded: {e}"),
            }
        }
        run(&format!(
            "client query --addr {addr} --name cam --label car --mode count"
        ))
        .expect("remote count query");
        run(&format!(
            "client loadgen --addr {addr} --name cam --label car --requests 12 \
             --connections 3 --frames 30 --window 10"
        ))
        .expect("loadgen");
        run(&format!("client stats --addr {addr}")).expect("stats");
        run(&format!("client shutdown --addr {addr}")).expect("shutdown");
        server
            .join()
            .expect("serve thread")
            .expect("serve exits cleanly");
        // Remote errors are typed, not panics.
        assert!(run(&format!("client stats --addr {addr}")).is_err());
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let s = store("errors");
        assert!(run("bogus --store /tmp").is_err());
        assert!(run(&format!("scan --store {s} --name missing --label car")).is_err());
        assert!(run(&format!(
            "ingest --store {s} --name v --dataset not-a-dataset --seconds 1"
        ))
        .is_err());
        assert!(run(&format!("retile --store {s} --name v --labels ,")).is_err());
        assert!(run(&format!(
            "workload --store {s} --name missing --concurrency 2"
        ))
        .is_err());
        assert!(run(&format!(
            "ingest --store {s} --name w --dataset xiph --seconds 1"
        ))
        .is_ok());
        assert!(run(&format!("workload --store {s} --name w --workload 9")).is_err());
        assert!(run(&format!("workload --store {s} --name w --retile sideways")).is_err());
        // Malformed query flags are reported, not panicked.
        assert!(run(&format!(
            "query --store {s} --name w --label car --roi 1,2,3"
        ))
        .is_err());
        assert!(run(&format!(
            "query --store {s} --name w --label car --roi a,b,c,d"
        ))
        .is_err());
        assert!(run(&format!(
            "query --store {s} --name w --label car --roi 0,0,0,4"
        ))
        .is_err());
        assert!(run(&format!(
            "query --store {s} --name w --label car --mode sideways"
        ))
        .is_err());
        assert!(run(&format!("query --store {s} --name w --label car --limit x")).is_err());
    }

    #[test]
    fn help_and_presets_work() {
        run("help").expect("help");
        run("presets").expect("presets");
        run("").err(); // empty command prints usage via dispatch of [""], which errs
    }
}
