//! `tasm` — command-line front-end for the tile-based storage manager.
//!
//! Operates a persistent store directory (tile files + semantic index):
//!
//! ```text
//! tasm ingest  --store S --name V --dataset visual-road-2k --seconds 4 [--seed N]
//! tasm detect  --store S --name V [--detector yolov3|yolov3-tiny] [--stride K]
//! tasm scan    --store S --name V --label car [--start F] [--end F]
//! tasm retile  --store S --name V --labels car,person
//! tasm observe --store S --name V --label car [--start F] [--end F]
//! tasm info    --store S [--name V]
//! tasm serve   --store S [--addr HOST:PORT]        # TCP query front-end
//! tasm client query|loadgen|stats|shutdown --addr HOST:PORT ...
//! ```
//!
//! Videos come from the synthetic corpus presets (this reproduction has no
//! external media decoder); everything else — encoding, the index, layout
//! optimization, scans — is the real storage manager operating on disk.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
