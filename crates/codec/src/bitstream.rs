//! Bit-level I/O with exponential-Golomb entropy codes.
//!
//! The codec's entropy layer uses unsigned (`ue`) and signed (`se`)
//! exp-Golomb codes, the same family HEVC uses for header syntax. They are
//! simple, prefix-free, and favour small magnitudes, which matches the
//! residual statistics of quantized DCT coefficients.

use bytes::{BufMut, Bytes, BytesMut};

/// Error raised when a bitstream ends prematurely or contains an invalid code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitstreamError {
    /// The reader ran past the end of the buffer.
    UnexpectedEof,
    /// An exp-Golomb prefix was longer than any value we ever encode.
    CodeTooLong,
}

impl std::fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitstreamError::UnexpectedEof => write!(f, "bitstream ended unexpectedly"),
            BitstreamError::CodeTooLong => write!(f, "exp-Golomb code exceeds 32-bit range"),
        }
    }
}

impl std::error::Error for BitstreamError {}

/// Writes bits MSB-first into a growable byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: BytesMut,
    /// Bits accumulated but not yet flushed to `buf` (kept in the high bits).
    acc: u64,
    /// Number of valid bits in `acc`.
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `n` bits of `value`, MSB first. `n` must be ≤ 32.
    #[inline]
    pub fn put_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(
            n == 32 || value < (1u32 << n),
            "value does not fit in {n} bits"
        );
        if n == 0 {
            return;
        }
        self.acc |= (value as u64) << (64 - self.nbits - n);
        self.nbits += n;
        while self.nbits >= 8 {
            self.buf.put_u8((self.acc >> 56) as u8);
            self.acc <<= 8;
            self.nbits -= 8;
        }
    }

    /// Writes a single flag bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.put_bits(bit as u32, 1);
    }

    /// Writes an unsigned exp-Golomb code (`ue(v)`): `leading_zeros(v+1)`
    /// zero bits, then the binary of `v + 1`.
    #[inline]
    pub fn put_ue(&mut self, v: u32) {
        debug_assert!(v < u32::MAX, "ue(v) requires v + 1 to fit in u32");
        let code = v + 1;
        let len = 32 - code.leading_zeros(); // bits in code
        self.put_bits(0, len - 1);
        self.put_bits(code, len);
    }

    /// Writes a signed exp-Golomb code (`se(v)`), mapping
    /// 0, 1, -1, 2, -2, … to 0, 1, 2, 3, 4, …
    #[inline]
    pub fn put_se(&mut self, v: i32) {
        let mapped = if v <= 0 {
            (-(v as i64) * 2) as u32
        } else {
            (v as u32) * 2 - 1
        };
        self.put_ue(mapped);
    }

    /// Pads with zero bits to the next byte boundary and returns the bytes.
    pub fn finish(mut self) -> Bytes {
        if self.nbits > 0 {
            self.buf.put_u8((self.acc >> 56) as u8);
        }
        self.buf.freeze()
    }

    /// Number of whole bytes the stream would occupy if finished now.
    pub fn byte_len(&self) -> usize {
        self.buf.len() + if self.nbits > 0 { 1 } else { 0 }
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next bit position from the start of `data`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Remaining unread bits.
    pub fn remaining_bits(&self) -> usize {
        self.data.len() * 8 - self.pos
    }

    /// Reads `n` bits (≤ 32), MSB first.
    #[inline]
    pub fn get_bits(&mut self, n: u32) -> Result<u32, BitstreamError> {
        debug_assert!(n <= 32);
        if n as usize > self.remaining_bits() {
            return Err(BitstreamError::UnexpectedEof);
        }
        let mut out = 0u32;
        let mut remaining = n;
        while remaining > 0 {
            let byte = self.data[self.pos / 8];
            let bit_off = (self.pos % 8) as u32;
            let avail = 8 - bit_off;
            let take = avail.min(remaining);
            let shifted = (byte as u32) >> (avail - take);
            let mask = if take == 32 {
                u32::MAX
            } else {
                (1u32 << take) - 1
            };
            out = (out << take) | (shifted & mask);
            self.pos += take as usize;
            remaining -= take;
        }
        Ok(out)
    }

    /// Reads a single flag bit.
    #[inline]
    pub fn get_bit(&mut self) -> Result<bool, BitstreamError> {
        Ok(self.get_bits(1)? == 1)
    }

    /// Reads an unsigned exp-Golomb code.
    #[inline]
    pub fn get_ue(&mut self) -> Result<u32, BitstreamError> {
        let mut zeros = 0u32;
        loop {
            if self.remaining_bits() == 0 {
                return Err(BitstreamError::UnexpectedEof);
            }
            if self.get_bits(1)? == 1 {
                break;
            }
            zeros += 1;
            if zeros > 31 {
                return Err(BitstreamError::CodeTooLong);
            }
        }
        let rest = self.get_bits(zeros)?;
        let code = (1u32 << zeros) | rest;
        Ok(code - 1)
    }

    /// Reads a signed exp-Golomb code.
    #[inline]
    pub fn get_se(&mut self) -> Result<i32, BitstreamError> {
        let mapped = self.get_ue()?;
        if mapped % 2 == 1 {
            Ok(mapped.div_ceil(2) as i32)
        } else {
            Ok(-((mapped / 2) as i32))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0xFFFF, 16);
        w.put_bit(false);
        w.put_bits(7, 5);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        assert_eq!(r.get_bits(16).unwrap(), 0xFFFF);
        assert!(!r.get_bit().unwrap());
        assert_eq!(r.get_bits(5).unwrap(), 7);
    }

    #[test]
    fn ue_small_values() {
        // Classic exp-Golomb examples: 0 -> "1", 1 -> "010", 2 -> "011".
        let mut w = BitWriter::new();
        for v in 0..=10 {
            w.put_ue(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for v in 0..=10 {
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn ue_bit_pattern() {
        let mut w = BitWriter::new();
        w.put_ue(0);
        let b = w.finish();
        assert_eq!(b[0], 0b1000_0000);
        let mut w = BitWriter::new();
        w.put_ue(1); // 010
        w.put_ue(2); // 011
        let b = w.finish();
        assert_eq!(b[0], 0b0100_1100);
    }

    #[test]
    fn se_roundtrip() {
        let values = [0, 1, -1, 2, -2, 17, -17, 255, -255, 4096, -4096];
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_se(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_se().unwrap(), v);
        }
    }

    #[test]
    fn large_ue_values() {
        let values = [0, 1, 100, 1000, 65535, 1 << 20, u32::MAX - 1];
        let mut w = BitWriter::new();
        for &v in &values {
            w.put_ue(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn eof_detected() {
        let mut r = BitReader::new(&[0b0000_0000]);
        assert!(r.get_ue().is_err());
        let mut r = BitReader::new(&[]);
        assert_eq!(r.get_bits(1), Err(BitstreamError::UnexpectedEof));
    }

    #[test]
    fn byte_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.byte_len(), 0);
        w.put_bit(true);
        assert_eq!(w.byte_len(), 1);
        w.put_bits(0, 7);
        assert_eq!(w.byte_len(), 1);
        w.put_bit(true);
        assert_eq!(w.byte_len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_ue_roundtrip(values in proptest::collection::vec(0u32..1_000_000, 0..200)) {
            let mut w = BitWriter::new();
            for &v in &values {
                w.put_ue(v);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                prop_assert_eq!(r.get_ue().unwrap(), v);
            }
        }

        #[test]
        fn prop_se_roundtrip(values in proptest::collection::vec(-500_000i32..500_000, 0..200)) {
            let mut w = BitWriter::new();
            for &v in &values {
                w.put_se(v);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                prop_assert_eq!(r.get_se().unwrap(), v);
            }
        }

        #[test]
        fn prop_mixed_roundtrip(ops in proptest::collection::vec((0u32..3, 0u32..100_000), 0..100)) {
            let mut w = BitWriter::new();
            for &(kind, v) in &ops {
                match kind {
                    0 => w.put_bits(v & 0xFF, 8),
                    1 => w.put_ue(v),
                    _ => w.put_se(v as i32 - 50_000),
                }
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &(kind, v) in &ops {
                match kind {
                    0 => prop_assert_eq!(r.get_bits(8).unwrap(), v & 0xFF),
                    1 => prop_assert_eq!(r.get_ue().unwrap(), v),
                    _ => prop_assert_eq!(r.get_se().unwrap(), v as i32 - 50_000),
                }
            }
        }
    }
}
