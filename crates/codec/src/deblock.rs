//! In-loop deblocking filter.
//!
//! Block-transform codecs exhibit discontinuities at transform-block edges;
//! an in-loop filter smooths them and is applied identically by encoder and
//! decoder (the filtered frame is the reference for subsequent prediction).
//!
//! Crucially for TASM, the filter operates on each tile's reconstruction in
//! isolation: it can never reach across a tile boundary, because tiles decode
//! independently. Interior block edges get filtered, *tile* edges do not —
//! which is exactly the boundary-artifact mechanism the paper cites (\[44\],
//! §2) as the quality cost of tiling, and what Figure 6(b) measures.

use tasm_video::{Frame, Plane};

/// Applies the weak deblocking filter in place to one reconstructed tile.
///
/// `qstep` controls the filter strength thresholds: stronger quantization
/// produces larger discontinuities that still count as blocking artifacts
/// rather than real edges.
pub fn deblock_frame(frame: &mut Frame, qstep: i32) {
    // Edges with a step larger than `beta` are treated as real image content
    // and left alone; corrections are clamped to ±tc.
    let beta = 2 * qstep + 8;
    let tc = qstep / 2 + 1;
    for plane in Plane::ALL {
        let w = frame.plane_width(plane) as usize;
        let h = frame.plane_height(plane) as usize;
        let data = frame.plane_mut(plane);
        filter_vertical_edges(data, w, h, beta, tc);
        filter_horizontal_edges(data, w, h, beta, tc);
    }
}

/// Filters vertical block edges (pixels left/right of columns 8, 16, …).
/// Plane widths are multiples of 8, so `x + 1 < w` always holds at an edge.
fn filter_vertical_edges(data: &mut [u8], w: usize, h: usize, beta: i32, tc: i32) {
    let mut x = 8;
    while x < w {
        for y in 0..h {
            let row = y * w;
            let p1 = data[row + x - 2] as i32;
            let p0 = data[row + x - 1] as i32;
            let q0 = data[row + x] as i32;
            let q1 = data[row + x + 1] as i32;
            if let Some((np0, nq0)) = weak_filter(p1, p0, q0, q1, beta, tc) {
                data[row + x - 1] = np0;
                data[row + x] = nq0;
            }
        }
        x += 8;
    }
}

/// Filters horizontal block edges (pixels above/below rows 8, 16, …).
/// Plane heights are multiples of 8, so `y + 1 < h` always holds at an edge.
fn filter_horizontal_edges(data: &mut [u8], w: usize, h: usize, beta: i32, tc: i32) {
    let mut y = 8;
    while y < h {
        for x in 0..w {
            let p1 = data[(y - 2) * w + x] as i32;
            let p0 = data[(y - 1) * w + x] as i32;
            let q0 = data[y * w + x] as i32;
            let q1 = data[(y + 1) * w + x] as i32;
            if let Some((np0, nq0)) = weak_filter(p1, p0, q0, q1, beta, tc) {
                data[(y - 1) * w + x] = np0;
                data[y * w + x] = nq0;
            }
        }
        y += 8;
    }
}

/// H.264-style weak filter on the two samples adjacent to an edge.
/// Returns the corrected pair, or `None` when the edge should not be touched.
#[inline]
fn weak_filter(p1: i32, p0: i32, q0: i32, q1: i32, beta: i32, tc: i32) -> Option<(u8, u8)> {
    let step = (p0 - q0).abs();
    if step == 0 || step >= beta {
        return None;
    }
    // Require the inside of each block to be smooth, so true texture edges
    // are not blurred.
    if (p1 - p0).abs() >= beta / 2 || (q1 - q0).abs() >= beta / 2 {
        return None;
    }
    let delta = ((q0 - p0) * 4 + (p1 - q1) + 4) >> 3;
    let delta = delta.clamp(-tc, tc);
    Some((
        (p0 + delta).clamp(0, 255) as u8,
        (q0 - delta).clamp(0, 255) as u8,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_video::Rect;

    #[test]
    fn weak_filter_smooths_small_step() {
        // Flat 100 | 104 edge: blocking artifact, should be pulled together.
        let (p0, q0) = weak_filter(100, 100, 104, 104, 40, 9).unwrap();
        assert!(
            p0 > 100 && q0 < 104,
            "filter should reduce the step: {p0} {q0}"
        );
    }

    #[test]
    fn weak_filter_preserves_strong_edges() {
        // A 100-step edge is real content.
        assert!(weak_filter(100, 100, 200, 200, 40, 9).is_none());
        // Identical samples need no filtering.
        assert!(weak_filter(50, 50, 50, 50, 40, 9).is_none());
    }

    #[test]
    fn weak_filter_respects_texture() {
        // Noisy insides (p1 far from p0) indicate texture, not blocking.
        assert!(weak_filter(10, 100, 104, 104, 40, 9).is_none());
    }

    #[test]
    fn deblock_reduces_block_edge_step() {
        let mut f = Frame::filled(32, 32, 100, 128, 128);
        // Create an artificial blocking step at x=8 in luma.
        f.fill_rect(Rect::new(8, 0, 24, 32), 106, 128, 128);
        let before = (f.sample(Plane::Y, 7, 4) as i32 - f.sample(Plane::Y, 8, 4) as i32).abs();
        deblock_frame(&mut f, 16);
        let after = (f.sample(Plane::Y, 7, 4) as i32 - f.sample(Plane::Y, 8, 4) as i32).abs();
        assert!(after < before, "step should shrink: {before} -> {after}");
    }

    #[test]
    fn deblock_leaves_flat_frame_unchanged() {
        let mut f = Frame::filled(32, 32, 90, 128, 128);
        let orig = f.clone();
        deblock_frame(&mut f, 16);
        assert_eq!(f, orig);
    }

    #[test]
    fn deblock_is_deterministic() {
        let mut a = Frame::filled(32, 32, 100, 128, 128);
        a.fill_rect(Rect::new(8, 8, 8, 8), 110, 120, 136);
        let mut b = a.clone();
        deblock_frame(&mut a, 16);
        deblock_frame(&mut b, 16);
        assert_eq!(a, b);
    }
}
