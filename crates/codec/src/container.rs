//! The TVF ("tile video file") container format.
//!
//! Each tile of a tiled video is stored as its own TVF file, exactly as the
//! paper stores each tile as a separate video on disk (Figure 1 and §3.4.5).
//! A TVF records the tile dimensions, GOP structure, quantizer, and a frame
//! table, followed by the concatenated frame payloads. The frame table gives
//! random access to any GOP: decoding frame `f` starts at the latest
//! keyframe at or before `f`.

use crate::decoder::{DecodeError, TileDecoder};
use crate::encoder::EncodedFrame;
use crate::pred;
use crate::stats::DecodeStats;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::ops::Range;
use std::time::Instant;
use tasm_video::Frame;

/// Magic bytes identifying a TVF stream.
pub const TVF_MAGIC: [u8; 4] = *b"TVF1";

/// The per-tile codec a TVF payload was encoded with.
///
/// Version-1 containers predate the codec-id field and always carry
/// [`TileCodec::Dct`]; version-2 containers record the id explicitly right
/// after the version byte. Ids are stable on disk and in manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TileCodec {
    /// The lossy block codec (DCT + quantization + motion compensation).
    #[default]
    Dct,
    /// The lossless prediction + rANS entropy codec ([`crate::pred`]).
    Pred,
}

impl TileCodec {
    /// The on-disk codec id.
    pub fn id(self) -> u8 {
        match self {
            TileCodec::Dct => 0,
            TileCodec::Pred => 1,
        }
    }

    /// Decodes an on-disk codec id; unknown ids are `None` (the caller
    /// surfaces [`ContainerError::UnsupportedCodec`]).
    pub fn from_id(id: u8) -> Option<TileCodec> {
        match id {
            0 => Some(TileCodec::Dct),
            1 => Some(TileCodec::Pred),
            _ => None,
        }
    }
}

/// Errors raised when parsing a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// The magic bytes or version did not match.
    BadMagic,
    /// The buffer ended before the declared content.
    Truncated,
    /// The header names a codec id this build does not know.
    UnsupportedCodec(u8),
    /// A header field held an invalid value.
    InvalidHeader(&'static str),
    /// Decoding a frame payload failed.
    Decode(DecodeError),
}

impl From<DecodeError> for ContainerError {
    fn from(e: DecodeError) -> Self {
        ContainerError::Decode(e)
    }
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "not a TVF stream"),
            ContainerError::Truncated => write!(f, "container truncated"),
            ContainerError::UnsupportedCodec(id) => write!(f, "unsupported codec id {id}"),
            ContainerError::InvalidHeader(what) => write!(f, "invalid header: {what}"),
            ContainerError::Decode(e) => write!(f, "decode failed: {e}"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// The validated header of a serialized TVF stream, as returned by
/// [`TileVideo::validate`] — everything `fsck` needs to cross-check a tile
/// file against a manifest without decoding any payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerHeader {
    /// Tile width in luma pixels.
    pub width: u32,
    /// Tile height in luma pixels.
    pub height: u32,
    /// GOP length the stream was encoded with.
    pub gop_len: u32,
    /// Quantization parameter.
    pub qp: u8,
    /// Whether the in-loop deblocking filter is active.
    pub deblock: bool,
    /// The codec the payload was encoded with.
    pub codec: TileCodec,
    /// Frames in the stream.
    pub frame_count: u32,
    /// Exact serialized size the container declares, header included.
    pub declared_len: u64,
}

/// The parsed fixed header and frame table of a TVF stream — everything
/// before the payload bytes. Shared by [`TileVideo::from_bytes`] and
/// [`TileVideo::validate`].
struct Prelude {
    width: u32,
    height: u32,
    gop_len: u32,
    qp: u8,
    deblock: bool,
    codec: TileCodec,
    /// Per frame: payload length, keyframe flag, frame QP.
    table: Vec<(usize, bool, u8)>,
    /// Offset of the first payload byte.
    payload_offset: usize,
}

impl Prelude {
    fn parse(full: &[u8]) -> Result<Prelude, ContainerError> {
        let mut data = full;
        if data.remaining() < 23 {
            return Err(ContainerError::Truncated);
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if magic != TVF_MAGIC {
            return Err(ContainerError::BadMagic);
        }
        // Version 1 has no codec-id byte (implicitly DCT); version 2 carries
        // it right after the version. Unknown versions are rejected outright,
        // unknown codec ids as the typed UnsupportedCodec corruption error.
        let (codec, fixed_len) = match data.get_u8() {
            1 => (TileCodec::Dct, 23usize),
            2 => {
                if full.len() < 24 {
                    return Err(ContainerError::Truncated);
                }
                let id = data.get_u8();
                let codec = TileCodec::from_id(id).ok_or(ContainerError::UnsupportedCodec(id))?;
                (codec, 24usize)
            }
            _ => return Err(ContainerError::BadMagic),
        };
        let width = data.get_u32_le();
        let height = data.get_u32_le();
        let gop_len = data.get_u32_le();
        let qp = data.get_u8();
        let deblock = data.get_u8() != 0;
        let count = data.get_u32_le() as usize;
        if width == 0 || height == 0 {
            return Err(ContainerError::InvalidHeader("zero dimension"));
        }
        if gop_len == 0 {
            return Err(ContainerError::InvalidHeader("zero GOP length"));
        }
        if qp > crate::quant::MAX_QP {
            return Err(ContainerError::InvalidHeader("QP out of range"));
        }
        if data.remaining() < count * 6 {
            return Err(ContainerError::Truncated);
        }
        let mut table = Vec::with_capacity(count);
        for _ in 0..count {
            let len = data.get_u32_le() as usize;
            let is_key = data.get_u8() != 0;
            let frame_qp = data.get_u8();
            if frame_qp > crate::quant::MAX_QP {
                return Err(ContainerError::InvalidHeader("frame QP out of range"));
            }
            table.push((len, is_key, frame_qp));
        }
        if count > 0 && !table[0].1 {
            return Err(ContainerError::InvalidHeader(
                "first frame must be a keyframe",
            ));
        }
        Ok(Prelude {
            width,
            height,
            gop_len,
            qp,
            deblock,
            codec,
            table,
            payload_offset: fixed_len + count * 6,
        })
    }
}

/// An encoded single-tile video: the unit TASM stores on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct TileVideo {
    /// Tile width in luma pixels.
    pub width: u32,
    /// Tile height in luma pixels.
    pub height: u32,
    /// GOP length the stream was encoded with.
    pub gop_len: u32,
    /// Quantization parameter.
    pub qp: u8,
    /// Whether the in-loop deblocking filter is active.
    pub deblock: bool,
    /// The codec the frame payloads were encoded with.
    pub codec: TileCodec,
    /// Encoded frames in display order.
    pub frames: Vec<EncodedFrame>,
}

impl TileVideo {
    /// Number of frames in the stream.
    pub fn frame_count(&self) -> u32 {
        self.frames.len() as u32
    }

    /// Total compressed payload size (excluding the container header).
    pub fn payload_bytes(&self) -> u64 {
        self.frames.iter().map(|f| f.data.len() as u64).sum()
    }

    /// Total size when serialized, header included.
    pub fn size_bytes(&self) -> u64 {
        // header: magic(4) + version(1) + [codec(1) in v2] + w(4) + h(4) +
        // gop(4) + qp(1) + flags(1) + count(4); per frame: len(4) +
        // flags(1) + qp(1).
        self.fixed_header_len() + self.frames.len() as u64 * 6 + self.payload_bytes()
    }

    /// Length of the fixed header: DCT tiles serialize as version 1 (no
    /// codec byte, bit-compatible with pre-codec-id stores); anything else
    /// as version 2 with the codec id.
    fn fixed_header_len(&self) -> u64 {
        match self.codec {
            TileCodec::Dct => 23,
            _ => 24,
        }
    }

    /// Index of the latest keyframe at or before `frame`.
    ///
    /// # Panics
    /// Panics if `frame` is out of range.
    pub fn keyframe_before(&self, frame: u32) -> u32 {
        assert!(
            frame < self.frame_count(),
            "frame {frame} out of range ({} frames)",
            self.frame_count()
        );
        (0..=frame)
            .rev()
            .find(|&i| self.frames[i as usize].is_key)
            .expect("stream starts with a keyframe")
    }

    /// Serializes to bytes.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.size_bytes() as usize);
        buf.put_slice(&TVF_MAGIC);
        match self.codec {
            TileCodec::Dct => buf.put_u8(1), // version 1: implicit DCT
            codec => {
                buf.put_u8(2); // version 2: explicit codec id
                buf.put_u8(codec.id());
            }
        }
        buf.put_u32_le(self.width);
        buf.put_u32_le(self.height);
        buf.put_u32_le(self.gop_len);
        buf.put_u8(self.qp);
        buf.put_u8(u8::from(self.deblock));
        buf.put_u32_le(self.frames.len() as u32);
        for f in &self.frames {
            buf.put_u32_le(f.data.len() as u32);
            buf.put_u8(u8::from(f.is_key));
            buf.put_u8(f.qp);
        }
        for f in &self.frames {
            buf.put_slice(&f.data);
        }
        buf.freeze()
    }

    /// Parses a serialized TVF stream.
    pub fn from_bytes(data: &[u8]) -> Result<Self, ContainerError> {
        let prelude = Prelude::parse(data)?;
        let mut payload = &data[prelude.payload_offset..];
        let mut frames = Vec::with_capacity(prelude.table.len());
        for &(len, is_key, frame_qp) in &prelude.table {
            if payload.remaining() < len {
                return Err(ContainerError::Truncated);
            }
            frames.push(EncodedFrame {
                is_key,
                qp: frame_qp,
                data: Bytes::copy_from_slice(&payload[..len]),
            });
            payload.advance(len);
        }
        Ok(TileVideo {
            width: prelude.width,
            height: prelude.height,
            gop_len: prelude.gop_len,
            qp: prelude.qp,
            deblock: prelude.deblock,
            codec: prelude.codec,
            frames,
        })
    }

    /// Validates a serialized TVF stream *structurally* without copying any
    /// payload: header fields in range, frame table well-formed, and the
    /// buffer exactly as long as the container declares — a torn tail is
    /// [`ContainerError::Truncated`], appended garbage is an invalid
    /// header. This is the check `tasm fsck` runs against every tile file
    /// on disk.
    pub fn validate(data: &[u8]) -> Result<ContainerHeader, ContainerError> {
        Self::validate_header(data, data.len() as u64)
    }

    /// [`TileVideo::validate`] from a *prefix* of the stream plus the known
    /// total length — lets fsck check a file with a bounded header read
    /// instead of pulling whole tile payloads into memory. `prefix` must
    /// contain the full fixed header and frame table (a
    /// [`ContainerError::Truncated`] from a short prefix of a longer file
    /// means "read more", not "the file is torn").
    pub fn validate_header(
        prefix: &[u8],
        file_len: u64,
    ) -> Result<ContainerHeader, ContainerError> {
        let prelude = Prelude::parse(prefix)?;
        let payload: u64 = prelude.table.iter().map(|&(len, _, _)| len as u64).sum();
        let declared_len = prelude.payload_offset as u64 + payload;
        match file_len.cmp(&declared_len) {
            std::cmp::Ordering::Less => Err(ContainerError::Truncated),
            std::cmp::Ordering::Greater => Err(ContainerError::InvalidHeader(
                "trailing bytes after payload",
            )),
            std::cmp::Ordering::Equal => Ok(ContainerHeader {
                width: prelude.width,
                height: prelude.height,
                gop_len: prelude.gop_len,
                qp: prelude.qp,
                deblock: prelude.deblock,
                codec: prelude.codec,
                frame_count: prelude.table.len() as u32,
                declared_len,
            }),
        }
    }

    /// Decodes frames `range` (display order), returning the requested
    /// frames and exact accounting of the work performed.
    ///
    /// Decoding starts at the preceding keyframe — as in any GOP-structured
    /// codec, frames between the keyframe and `range.start` must be decoded
    /// and discarded, and that warm-up work is included in the stats. This
    /// is the cost structure TASM's layout optimizer reasons about.
    pub fn decode_range(
        &self,
        range: Range<u32>,
    ) -> Result<(Vec<Frame>, DecodeStats), ContainerError> {
        assert!(range.start <= range.end, "invalid range");
        if range.start >= self.frame_count() || range.end > self.frame_count() {
            return Err(ContainerError::InvalidHeader("frame range out of bounds"));
        }
        if range.is_empty() {
            return Ok((Vec::new(), DecodeStats::new()));
        }
        let start = self.keyframe_before(range.start);
        self.decode_span(start, range.start, range.end, None)
    }

    /// Resumes decoding at `from`, producing frames `from..end`.
    ///
    /// `from` must either be a keyframe, or `reference` must hold the
    /// decoder's reconstruction of frame `from - 1` (e.g. the last frame of
    /// a cached GOP prefix). Resuming from a reference is bit-exact with a
    /// decode that started at the preceding keyframe, but is charged only
    /// for the frames actually decoded — this is what lets a decoded-GOP
    /// cache extend a partial entry without re-paying the warm-up.
    pub fn decode_resume(
        &self,
        from: u32,
        end: u32,
        reference: Option<&Frame>,
    ) -> Result<(Vec<Frame>, DecodeStats), ContainerError> {
        assert!(from <= end, "invalid range");
        if end > self.frame_count() {
            return Err(ContainerError::InvalidHeader("frame range out of bounds"));
        }
        if from == end {
            return Ok((Vec::new(), DecodeStats::new()));
        }
        if reference.is_none() && !self.frames[from as usize].is_key {
            return Err(ContainerError::InvalidHeader(
                "resume point is not a keyframe and no reference was supplied",
            ));
        }
        self.decode_span(from, from, end, reference)
    }

    /// Shared decode loop: decodes `start..end`, returning frames
    /// `keep_from..end` and accounting for every frame decoded.
    fn decode_span(
        &self,
        start: u32,
        keep_from: u32,
        end: u32,
        reference: Option<&Frame>,
    ) -> Result<(Vec<Frame>, DecodeStats), ContainerError> {
        match self.codec {
            TileCodec::Dct => self.decode_span_dct(start, keep_from, end, reference),
            TileCodec::Pred => self.decode_span_pred(start, keep_from, end, reference),
        }
    }

    fn decode_span_dct(
        &self,
        start: u32,
        keep_from: u32,
        end: u32,
        reference: Option<&Frame>,
    ) -> Result<(Vec<Frame>, DecodeStats), ContainerError> {
        let t0 = Instant::now();
        let mut dec = match reference {
            Some(r) => TileDecoder::with_reference(
                self.width,
                self.height,
                self.qp,
                self.deblock,
                r.clone(),
            ),
            None => TileDecoder::new(self.width, self.height, self.qp, self.deblock),
        };
        let mut out = Vec::with_capacity((end - keep_from) as usize);
        let mut stats = DecodeStats::new();
        let samples_per_frame =
            self.width as u64 * self.height as u64 + (self.width as u64 * self.height as u64) / 2;
        for i in start..end {
            let ef = &self.frames[i as usize];
            let frame = dec.decode_next_qp(&ef.data, ef.is_key, ef.qp)?;
            stats.frames_decoded += 1;
            stats.samples_decoded += samples_per_frame;
            stats.tile_chunks_decoded += 1;
            stats.bytes_read += ef.data.len() as u64;
            stats.blocks_decoded += dec.blocks_per_frame();
            if i >= keep_from {
                out.push(frame);
            }
        }
        stats.decode_time = t0.elapsed();
        Ok((out, stats))
    }

    /// The lossless `Pred` path: identical GOP semantics (keyframes decode
    /// standalone, P-frames against the previous reconstruction), so resume
    /// from a cached prefix works exactly as with the DCT codec.
    fn decode_span_pred(
        &self,
        start: u32,
        keep_from: u32,
        end: u32,
        reference: Option<&Frame>,
    ) -> Result<(Vec<Frame>, DecodeStats), ContainerError> {
        let t0 = Instant::now();
        let mut prev: Option<Frame> = reference.cloned();
        let mut out = Vec::with_capacity((end - keep_from) as usize);
        let mut stats = DecodeStats::new();
        let luma = self.width as u64 * self.height as u64;
        let samples_per_frame = luma + luma / 2;
        // Same block accounting as the DCT decoder, for a comparable cost
        // model signal.
        let blocks_per_frame = {
            let blocks = (self.width as u64 / 8) * (self.height as u64 / 8);
            blocks + blocks / 2
        };
        for i in start..end {
            let ef = &self.frames[i as usize];
            let frame = if ef.is_key {
                pred::decode_frame(&ef.data, self.width, self.height, None)
            } else {
                pred::decode_frame(&ef.data, self.width, self.height, prev.as_ref())
            }
            .map_err(|e| match e {
                pred::PredError::MissingReference => {
                    ContainerError::Decode(DecodeError::MissingReference)
                }
                other => ContainerError::Decode(DecodeError::Lossless(other.to_string())),
            })?;
            stats.frames_decoded += 1;
            stats.samples_decoded += samples_per_frame;
            stats.tile_chunks_decoded += 1;
            stats.bytes_read += ef.data.len() as u64;
            stats.blocks_decoded += blocks_per_frame;
            prev = Some(frame.clone());
            if i >= keep_from {
                out.push(frame);
            }
        }
        stats.decode_time = t0.elapsed();
        Ok((out, stats))
    }

    /// Decodes the whole stream.
    pub fn decode_all(&self) -> Result<(Vec<Frame>, DecodeStats), ContainerError> {
        self.decode_range(0..self.frame_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncoderConfig, TileEncoder};
    use tasm_video::{Plane, Rect};

    fn encode_test_video(n: u32, gop: u32) -> TileVideo {
        let cfg = EncoderConfig {
            gop_len: gop,
            ..Default::default()
        };
        let mut enc = TileEncoder::new(cfg, Rect::new(0, 0, 32, 32));
        let frames: Vec<EncodedFrame> = (0..n)
            .map(|i| {
                // Textured background + a moving patch, so keyframes carry
                // real intra cost while P-frames mostly skip.
                let mut f = Frame::filled(32, 32, 100, 128, 128);
                for y in 0..32 {
                    for x in 0..32 {
                        f.set_sample(Plane::Y, x, y, ((x * 11 + y * 5) % 200 + 20) as u8);
                    }
                }
                f.fill_rect(Rect::new((i * 2) % 24, 4, 8, 8), 220, 90, 160);
                enc.encode_next(&f)
            })
            .collect();
        TileVideo {
            width: 32,
            height: 32,
            gop_len: gop,
            qp: cfg.qp,
            deblock: cfg.deblock,
            codec: TileCodec::Dct,
            frames,
        }
    }

    fn encode_pred_video(n: u32, gop: u32) -> TileVideo {
        let mut frames = Vec::new();
        let mut prev: Option<Frame> = None;
        for i in 0..n {
            let mut f = Frame::filled(32, 32, 100, 128, 128);
            for y in 0..32 {
                for x in 0..32 {
                    f.set_sample(Plane::Y, x, y, ((x * 11 + y * 5) % 200 + 20) as u8);
                }
            }
            f.fill_rect(Rect::new((i * 2) % 24, 4, 8, 8), 220, 90, 160);
            let is_key = i % gop == 0;
            let data = if is_key {
                pred::encode_intra(&f)
            } else {
                pred::encode_inter(&f, prev.as_ref().unwrap())
            };
            frames.push(EncodedFrame {
                is_key,
                qp: 0,
                data: Bytes::from(data),
            });
            prev = Some(f);
        }
        TileVideo {
            width: 32,
            height: 32,
            gop_len: gop,
            qp: 0,
            deblock: false,
            codec: TileCodec::Pred,
            frames,
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let v = encode_test_video(10, 4);
        let bytes = v.to_bytes();
        assert_eq!(bytes.len() as u64, v.size_bytes());
        let back = TileVideo::from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let v = encode_test_video(2, 2);
        let mut bytes = v.to_bytes().to_vec();
        bytes[0] = b'X';
        assert_eq!(TileVideo::from_bytes(&bytes), Err(ContainerError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let v = encode_test_video(4, 2);
        let bytes = v.to_bytes();
        for cut in [0, 10, 22, bytes.len() - 1] {
            assert!(
                TileVideo::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn validate_checks_exact_length() {
        let v = encode_test_video(6, 3);
        let bytes = v.to_bytes();
        let h = TileVideo::validate(&bytes).unwrap();
        assert_eq!(h.width, 32);
        assert_eq!(h.height, 32);
        assert_eq!(h.gop_len, 3);
        assert_eq!(h.frame_count, 6);
        assert_eq!(h.declared_len, bytes.len() as u64);
        // A torn tail is truncation; appended garbage is an invalid header.
        assert_eq!(
            TileVideo::validate(&bytes[..bytes.len() - 1]),
            Err(ContainerError::Truncated)
        );
        let mut longer = bytes.to_vec();
        longer.push(0);
        assert!(matches!(
            TileVideo::validate(&longer),
            Err(ContainerError::InvalidHeader(_))
        ));
    }

    #[test]
    fn keyframe_before_finds_gop_start() {
        let v = encode_test_video(10, 4);
        assert_eq!(v.keyframe_before(0), 0);
        assert_eq!(v.keyframe_before(3), 0);
        assert_eq!(v.keyframe_before(4), 4);
        assert_eq!(v.keyframe_before(7), 4);
        assert_eq!(v.keyframe_before(9), 8);
    }

    #[test]
    fn decode_range_includes_warmup_in_stats() {
        let v = encode_test_video(10, 4);
        // Request frames 6..8: decode must start at keyframe 4.
        let (frames, stats) = v.decode_range(6..8).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(stats.frames_decoded, 4); // frames 4,5,6,7
        assert_eq!(stats.tile_chunks_decoded, 4);
        assert!(stats.samples_decoded > 0);
        assert!(stats.bytes_read > 0);
    }

    #[test]
    fn decode_range_matches_decode_all() {
        let v = encode_test_video(8, 4);
        let (all, _) = v.decode_all().unwrap();
        let (some, _) = v.decode_range(5..8).unwrap();
        assert_eq!(all.len(), 8);
        assert_eq!(some.len(), 3);
        for (a, b) in all[5..].iter().zip(&some) {
            assert_eq!(a.plane(Plane::Y), b.plane(Plane::Y));
            assert_eq!(a.plane(Plane::U), b.plane(Plane::U));
        }
    }

    #[test]
    fn decode_resume_matches_full_decode() {
        let v = encode_test_video(10, 4);
        let (all, _) = v.decode_all().unwrap();
        // Resume mid-GOP using the previous reconstruction as reference.
        let (tail, stats) = v.decode_resume(6, 10, Some(&all[5])).unwrap();
        assert_eq!(tail.len(), 4);
        assert_eq!(stats.frames_decoded, 4); // no warm-up charged
        for (a, b) in all[6..].iter().zip(&tail) {
            assert_eq!(a, b, "resumed decode must be bit-identical");
        }
        // Resume at a keyframe needs no reference.
        let (from_key, _) = v.decode_resume(4, 8, None).unwrap();
        assert_eq!(&all[4..8], &from_key[..]);
        // Mid-GOP without a reference is an error.
        assert!(v.decode_resume(6, 8, None).is_err());
    }

    #[test]
    fn empty_range_is_free() {
        let v = encode_test_video(4, 2);
        let (frames, stats) = v.decode_range(2..2).unwrap();
        assert!(frames.is_empty());
        assert_eq!(stats, DecodeStats::new());
    }

    #[test]
    fn out_of_bounds_range_is_error() {
        let v = encode_test_video(4, 2);
        assert!(v.decode_range(0..5).is_err());
        assert!(v.decode_range(4..4).is_err());
    }

    #[test]
    fn dct_serializes_as_version_1() {
        // DCT tiles stay bit-compatible with pre-codec-id stores: version
        // byte 1, 23-byte fixed header.
        let v = encode_test_video(2, 2);
        let bytes = v.to_bytes();
        assert_eq!(bytes[4], 1);
        let h = TileVideo::validate(&bytes).unwrap();
        assert_eq!(h.codec, TileCodec::Dct);
    }

    #[test]
    fn pred_roundtrip_is_lossless_and_versioned() {
        let v = encode_pred_video(10, 4);
        let bytes = v.to_bytes();
        assert_eq!(bytes[4], 2, "non-DCT containers serialize as version 2");
        assert_eq!(bytes[5], TileCodec::Pred.id());
        assert_eq!(bytes.len() as u64, v.size_bytes());
        let back = TileVideo::from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
        assert_eq!(back.codec, TileCodec::Pred);
        // Lossless: decode must reproduce the source frames exactly.
        let (frames, stats) = back.decode_all().unwrap();
        assert_eq!(frames.len(), 10);
        assert_eq!(stats.frames_decoded, 10);
        let mut f0 = Frame::filled(32, 32, 100, 128, 128);
        for y in 0..32 {
            for x in 0..32 {
                f0.set_sample(Plane::Y, x, y, ((x * 11 + y * 5) % 200 + 20) as u8);
            }
        }
        f0.fill_rect(Rect::new(0, 4, 8, 8), 220, 90, 160);
        assert_eq!(frames[0], f0);
    }

    #[test]
    fn pred_decode_resume_matches_full_decode() {
        let v = encode_pred_video(10, 4);
        let (all, _) = v.decode_all().unwrap();
        let (tail, stats) = v.decode_resume(6, 10, Some(&all[5])).unwrap();
        assert_eq!(stats.frames_decoded, 4);
        assert_eq!(&all[6..], &tail[..]);
        let (some, warm) = v.decode_range(6..8).unwrap();
        assert_eq!(warm.frames_decoded, 4); // warm-up from keyframe 4
        assert_eq!(&all[6..8], &some[..]);
    }

    #[test]
    fn unknown_codec_id_is_typed_error() {
        let v = encode_pred_video(2, 2);
        let mut bytes = v.to_bytes().to_vec();
        bytes[5] = 9; // codec id nobody knows
        assert_eq!(
            TileVideo::from_bytes(&bytes),
            Err(ContainerError::UnsupportedCodec(9))
        );
        assert_eq!(
            TileVideo::validate(&bytes),
            Err(ContainerError::UnsupportedCodec(9))
        );
    }

    #[test]
    fn unknown_version_is_bad_magic() {
        let v = encode_test_video(2, 2);
        let mut bytes = v.to_bytes().to_vec();
        bytes[4] = 7;
        assert_eq!(TileVideo::from_bytes(&bytes), Err(ContainerError::BadMagic));
    }

    #[test]
    fn corrupt_pred_payload_is_typed_error() {
        let v = encode_pred_video(4, 4);
        let mut bytes = v.to_bytes().to_vec();
        // Flip a byte deep in the first frame's payload (past its header).
        let off = bytes.len() - 3;
        bytes[off] ^= 0xFF;
        let back = TileVideo::from_bytes(&bytes).unwrap();
        match back.decode_all() {
            Ok((frames, _)) => assert_eq!(frames.len(), 4), // flip survived checksum? impossible
            Err(ContainerError::Decode(_)) => {}
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn keyframes_cost_more_than_p_frames() {
        let v = encode_test_video(8, 4);
        let key_avg: f64 = v
            .frames
            .iter()
            .filter(|f| f.is_key)
            .map(|f| f.data.len() as f64)
            .sum::<f64>()
            / 2.0;
        let p_avg: f64 = v
            .frames
            .iter()
            .filter(|f| !f.is_key)
            .map(|f| f.data.len() as f64)
            .sum::<f64>()
            / 6.0;
        assert!(
            key_avg > 2.0 * p_avg,
            "keyframes ({key_avg:.0}B) should dominate P-frames ({p_avg:.0}B)"
        );
    }
}
