//! The `Pred` tile codec: lossless prediction + rANS entropy coding.
//!
//! An alternative per-tile codec to the DCT pipeline, selected at ingest by
//! a size trial (see [`crate::encode`]): frames are predicted — keyframes
//! with PNG-style per-row spatial predictors (none/left/up/average/Paeth),
//! P-frames with a temporal delta against the previous reconstruction, per
//! plane, with a spatial fallback when the scene cuts — and the residual
//! bytes are entropy-coded with [`crate::entropy`]. The codec is lossless,
//! so a P-frame's reference equals the source frame and resume-from-cache
//! decoding is trivially bit-exact.

use crate::entropy::{self, EntropyError};
use tasm_video::{Frame, Plane};

/// Errors surfaced while decoding a `Pred` frame payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredError {
    /// The entropy layer failed (truncated or corrupt stream).
    Entropy(EntropyError),
    /// The residual payload does not match the frame geometry.
    Malformed(&'static str),
    /// A temporal plane arrived without a reference frame.
    MissingReference,
}

impl From<EntropyError> for PredError {
    fn from(e: EntropyError) -> Self {
        PredError::Entropy(e)
    }
}

impl std::fmt::Display for PredError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredError::Entropy(e) => write!(f, "entropy layer: {e}"),
            PredError::Malformed(what) => write!(f, "malformed pred payload: {what}"),
            PredError::MissingReference => write!(f, "temporal plane with no reference frame"),
        }
    }
}

impl std::error::Error for PredError {}

/// Per-plane coding mode.
const PLANE_SPATIAL: u8 = 0;
const PLANE_TEMPORAL: u8 = 1;

/// Per-row spatial predictors (PNG filter set).
const PRED_NONE: u8 = 0;
const PRED_LEFT: u8 = 1;
const PRED_UP: u8 = 2;
const PRED_AVG: u8 = 3;
const PRED_PAETH: u8 = 4;

fn paeth(a: u8, b: u8, c: u8) -> u8 {
    // a = left, b = up, c = up-left.
    let p = a as i32 + b as i32 - c as i32;
    let (pa, pb, pc) = (
        (p - a as i32).abs(),
        (p - b as i32).abs(),
        (p - c as i32).abs(),
    );
    if pa <= pb && pa <= pc {
        a
    } else if pb <= pc {
        b
    } else {
        c
    }
}

fn predict(kind: u8, left: u8, up: u8, up_left: u8) -> u8 {
    match kind {
        PRED_NONE => 0,
        PRED_LEFT => left,
        PRED_UP => up,
        PRED_AVG => ((left as u16 + up as u16) / 2) as u8,
        _ => paeth(left, up, up_left),
    }
}

/// Cost proxy for a residual byte: distance from zero on the wrapping ring.
fn residual_cost(r: u8) -> u32 {
    (r as u32).min(256 - r as u32)
}

/// Encodes one plane spatially: a predictor byte per row, then row-major
/// residuals. Appends to `out`.
fn encode_plane_spatial(samples: &[u8], w: usize, h: usize, out: &mut Vec<u8>) {
    out.push(PLANE_SPATIAL);
    let preds_at = out.len();
    out.resize(preds_at + h, PRED_NONE);
    for y in 0..h {
        let row = &samples[y * w..(y + 1) * w];
        let prev = if y > 0 {
            Some(&samples[(y - 1) * w..y * w])
        } else {
            None
        };
        let mut best = (u64::MAX, PRED_NONE);
        for kind in [PRED_NONE, PRED_LEFT, PRED_UP, PRED_AVG, PRED_PAETH] {
            if prev.is_none() && (kind == PRED_UP || kind == PRED_AVG || kind == PRED_PAETH) {
                continue;
            }
            let mut cost = 0u64;
            for x in 0..w {
                let left = if x > 0 { row[x - 1] } else { 0 };
                let up = prev.map_or(0, |p| p[x]);
                let up_left = if x > 0 {
                    prev.map_or(0, |p| p[x - 1])
                } else {
                    0
                };
                cost += residual_cost(row[x].wrapping_sub(predict(kind, left, up, up_left))) as u64;
            }
            if cost < best.0 {
                best = (cost, kind);
            }
        }
        out[preds_at + y] = best.1;
        for x in 0..w {
            let left = if x > 0 { row[x - 1] } else { 0 };
            let up = prev.map_or(0, |p| p[x]);
            let up_left = if x > 0 {
                prev.map_or(0, |p| p[x - 1])
            } else {
                0
            };
            out.push(row[x].wrapping_sub(predict(best.1, left, up, up_left)));
        }
    }
}

fn decode_plane_spatial(
    data: &[u8],
    pos: &mut usize,
    w: usize,
    h: usize,
) -> Result<Vec<u8>, PredError> {
    let preds = data
        .get(*pos..*pos + h)
        .ok_or(PredError::Malformed("plane shorter than predictor table"))?
        .to_vec();
    *pos += h;
    let mut plane = vec![0u8; w * h];
    let zeros = vec![0u8; w];
    for (y, &kind) in preds.iter().enumerate() {
        if kind > PRED_PAETH {
            return Err(PredError::Malformed("unknown row predictor"));
        }
        let res = data
            .get(*pos..*pos + w)
            .ok_or(PredError::Malformed("plane shorter than residual rows"))?;
        *pos += w;
        // Per-predictor row loops: the straightforward per-pixel
        // `predict(kind, ...)` dispatch costs a branch per sample and keeps
        // the vectorizer out; NONE/UP become straight copies/adds, and the
        // serial predictors keep their loop-carried value in a register.
        let (above, row) =
            plane[(y.saturating_sub(1)) * w..].split_at_mut(if y == 0 { 0 } else { w });
        let above: &[u8] = if y == 0 { &zeros } else { above };
        let row = &mut row[..w];
        match kind {
            PRED_NONE => row.copy_from_slice(res),
            PRED_LEFT => {
                let mut left = 0u8;
                for (d, &r) in row.iter_mut().zip(res) {
                    left = r.wrapping_add(left);
                    *d = left;
                }
            }
            PRED_UP => {
                for ((d, &r), &up) in row.iter_mut().zip(res).zip(above) {
                    *d = r.wrapping_add(up);
                }
            }
            PRED_AVG => {
                let mut left = 0u8;
                for ((d, &r), &up) in row.iter_mut().zip(res).zip(above) {
                    left = r.wrapping_add(((left as u16 + up as u16) / 2) as u8);
                    *d = left;
                }
            }
            _ => {
                let (mut left, mut up_left) = (0u8, 0u8);
                for ((d, &r), &up) in row.iter_mut().zip(res).zip(above) {
                    left = r.wrapping_add(paeth(left, up, up_left));
                    up_left = up;
                    *d = left;
                }
            }
        }
    }
    Ok(plane)
}

/// Spatial cost of a whole plane (used for the temporal-vs-spatial trial).
fn spatial_cost(samples: &[u8], w: usize, h: usize) -> u64 {
    let mut scratch = Vec::with_capacity(1 + h + samples.len());
    encode_plane_spatial(samples, w, h, &mut scratch);
    scratch[1 + h..]
        .iter()
        .map(|&r| residual_cost(r) as u64)
        .sum()
}

/// Residual-buffer framing ahead of the entropy layer.
const PACK_PLAIN: u8 = 0;
const PACK_RLE0: u8 = 1;

/// Zero-run-length packs `data`: nonzero bytes pass through, a zero byte is
/// written as `0x00` followed by the run length (1..=255; longer runs emit
/// more pairs). Prediction residuals are overwhelmingly zero, so this
/// collapses both the stream *and* the number of symbols the rANS decoder
/// must pull — the dominant cost of a cold `Pred` scan.
fn rle0_pack(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        if b != 0 {
            out.push(b);
            i += 1;
            continue;
        }
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == 0 {
            run += 1;
        }
        i += run;
        while run > 0 {
            let n = run.min(255);
            out.push(0);
            out.push(n as u8);
            run -= n;
        }
    }
    out
}

/// Inverse of [`rle0_pack`]; refuses malformed pairs and output beyond
/// `max_len` (the geometric residual bound).
fn rle0_unpack(data: &[u8], max_len: usize) -> Result<Vec<u8>, PredError> {
    let mut out = Vec::with_capacity(max_len.min(data.len() * 4));
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        i += 1;
        if b != 0 {
            if out.len() >= max_len {
                return Err(PredError::Malformed("zero-run stream exceeds bound"));
            }
            out.push(b);
            continue;
        }
        let &n = data
            .get(i)
            .ok_or(PredError::Malformed("zero run missing length"))?;
        i += 1;
        if n == 0 {
            return Err(PredError::Malformed("zero-length zero run"));
        }
        if out.len() + n as usize > max_len {
            return Err(PredError::Malformed("zero-run stream exceeds bound"));
        }
        out.resize(out.len() + n as usize, 0);
    }
    Ok(out)
}

/// Zero-run packs the residual buffer when that is smaller, prepends the
/// framing byte, and entropy-codes the result.
fn seal(residuals: &[u8]) -> Vec<u8> {
    let packed = rle0_pack(residuals);
    let mut framed = Vec::with_capacity(packed.len().min(residuals.len()) + 1);
    if packed.len() < residuals.len() {
        framed.push(PACK_RLE0);
        framed.extend_from_slice(&packed);
    } else {
        framed.push(PACK_PLAIN);
        framed.extend_from_slice(residuals);
    }
    entropy::compress(&framed)
}

/// Encodes a keyframe: every plane spatial.
pub fn encode_intra(frame: &Frame) -> Vec<u8> {
    let mut residuals = Vec::with_capacity(frame.sample_count() as usize + 8);
    for plane in Plane::ALL {
        let (w, h) = (
            frame.plane_width(plane) as usize,
            frame.plane_height(plane) as usize,
        );
        encode_plane_spatial(frame.plane(plane), w, h, &mut residuals);
    }
    seal(&residuals)
}

/// Encodes a P-frame against the previous reconstruction (identical to the
/// previous source frame — the codec is lossless). Each plane picks
/// temporal delta or spatial prediction, whichever yields cheaper residuals.
pub fn encode_inter(frame: &Frame, prev: &Frame) -> Vec<u8> {
    let mut residuals = Vec::with_capacity(frame.sample_count() as usize + 8);
    for plane in Plane::ALL {
        let (w, h) = (
            frame.plane_width(plane) as usize,
            frame.plane_height(plane) as usize,
        );
        let cur = frame.plane(plane);
        let old = prev.plane(plane);
        let temporal_cost: u64 = cur
            .iter()
            .zip(old)
            .map(|(&c, &p)| residual_cost(c.wrapping_sub(p)) as u64)
            .sum();
        if temporal_cost <= spatial_cost(cur, w, h) {
            residuals.push(PLANE_TEMPORAL);
            residuals.extend(cur.iter().zip(old).map(|(&c, &p)| c.wrapping_sub(p)));
        } else {
            encode_plane_spatial(cur, w, h, &mut residuals);
        }
    }
    seal(&residuals)
}

/// Upper bound on the residual-buffer size for a `width`×`height` frame —
/// the allocation cap handed to the entropy decoder.
fn residual_bound(width: u32, height: u32) -> usize {
    let luma = width as usize * height as usize;
    let chroma = luma / 4;
    // Per plane: mode byte + predictor byte per row + samples.
    3 + (height as usize + 2 * (height as usize / 2)) + luma + 2 * chroma
}

/// Decodes one `Pred` frame. `prev` must hold the previous reconstruction
/// when any plane was coded temporally (always available in GOP order;
/// keyframes never need it).
pub fn decode_frame(
    data: &[u8],
    width: u32,
    height: u32,
    prev: Option<&Frame>,
) -> Result<Frame, PredError> {
    let bound = residual_bound(width, height);
    // +1 for the framing byte; a zero-run stream is only chosen when it is
    // smaller than the plain residuals, so the bound holds for both.
    let framed = entropy::decompress(data, bound + 1)?;
    let (&pack, body) = framed
        .split_first()
        .ok_or(PredError::Malformed("empty residual stream"))?;
    let residuals = match pack {
        PACK_PLAIN => body.to_vec(),
        PACK_RLE0 => rle0_unpack(body, bound)?,
        _ => return Err(PredError::Malformed("unknown residual framing")),
    };
    let mut pos = 0usize;
    let mut planes: Vec<Vec<u8>> = Vec::with_capacity(3);
    for plane in Plane::ALL {
        let w = (width >> plane.subsample_shift()) as usize;
        let h = (height >> plane.subsample_shift()) as usize;
        let &mode = residuals
            .get(pos)
            .ok_or(PredError::Malformed("missing plane mode"))?;
        pos += 1;
        let decoded = match mode {
            PLANE_SPATIAL => decode_plane_spatial(&residuals, &mut pos, w, h)?,
            PLANE_TEMPORAL => {
                let reference = prev.ok_or(PredError::MissingReference)?;
                if reference.width() != width || reference.height() != height {
                    return Err(PredError::Malformed("reference dimension mismatch"));
                }
                let old = reference.plane(plane);
                let res = residuals.get(pos..pos + w * h).ok_or(PredError::Malformed(
                    "plane shorter than temporal residuals",
                ))?;
                pos += w * h;
                res.iter()
                    .zip(old)
                    .map(|(&r, &p)| r.wrapping_add(p))
                    .collect()
            }
            _ => return Err(PredError::Malformed("unknown plane mode")),
        };
        planes.push(decoded);
    }
    if pos != residuals.len() {
        return Err(PredError::Malformed("trailing residual bytes"));
    }
    let mut it = planes.into_iter();
    let (y, u, v) = (
        it.next().expect("three planes"),
        it.next().expect("three planes"),
        it.next().expect("three planes"),
    );
    Frame::from_planes(width, height, y, u, v)
        .ok_or(PredError::Malformed("plane sizes do not match dimensions"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_video::Rect;

    fn textured(w: u32, h: u32, t: u32) -> Frame {
        let mut f = Frame::filled(w, h, 90, 128, 128);
        for y in 0..h {
            for x in 0..w {
                f.set_sample(Plane::Y, x, y, ((x * 3 + y * 5 + t * 2) % 200 + 20) as u8);
            }
        }
        f.fill_rect(Rect::new((t * 4) % (w - 16), 8, 16, 16), 230, 90, 160);
        f
    }

    #[test]
    fn intra_roundtrip_is_lossless() {
        let f = textured(64, 48, 0);
        let data = encode_intra(&f);
        let back = decode_frame(&data, 64, 48, None).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn inter_roundtrip_is_lossless() {
        let a = textured(64, 48, 0);
        let b = textured(64, 48, 1);
        let data = encode_inter(&b, &a);
        let back = decode_frame(&data, 64, 48, Some(&a)).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn static_content_yields_tiny_p_frames() {
        let a = textured(64, 48, 0);
        let key = encode_intra(&a);
        let p = encode_inter(&a, &a);
        assert!(
            p.len() * 4 < key.len(),
            "identical frames must delta to near nothing: key {} vs p {}",
            key.len(),
            p.len()
        );
    }

    #[test]
    fn gradient_frames_beat_raw_size() {
        let f = textured(64, 64, 0);
        let raw = f.sample_count();
        let data = encode_intra(&f);
        assert!(
            (data.len() as u64) < raw,
            "predictable texture must compress: {} vs raw {}",
            data.len(),
            raw
        );
    }

    #[test]
    fn temporal_plane_without_reference_is_typed_error() {
        let a = textured(32, 32, 0);
        let data = encode_inter(&a, &a); // all planes temporal
        assert_eq!(
            decode_frame(&data, 32, 32, None),
            Err(PredError::MissingReference)
        );
    }

    #[test]
    fn corrupt_payloads_never_panic() {
        let f = textured(32, 32, 0);
        let data = encode_intra(&f);
        for cut in 0..data.len() {
            let _ = decode_frame(&data[..cut], 32, 32, None);
        }
        for byte in 0..data.len() {
            let mut bad = data.clone();
            bad[byte] ^= 0x10;
            if let Ok(out) = decode_frame(&bad, 32, 32, None) {
                assert_eq!(out, f, "accepted corruption must still be bit-exact");
            }
        }
    }

    #[test]
    fn wrong_dimensions_rejected() {
        let f = textured(32, 32, 0);
        let data = encode_intra(&f);
        assert!(decode_frame(&data, 64, 64, None).is_err());
        assert!(decode_frame(&data, 16, 16, None).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_intra_roundtrip(
            seed in any::<u64>(),
        ) {
            // Pseudo-random plane contents driven by the seed: exercises
            // texture the row predictors cannot model.
            let (w, h) = (16 + (seed % 3) as u32 * 16, 16 + ((seed >> 8) % 2) as u32 * 16);
            let mut f = Frame::black(w, h);
            let mut s = seed | 1;
            for p in Plane::ALL {
                let (pw, ph) = (f.plane_width(p), f.plane_height(p));
                for y in 0..ph {
                    for x in 0..pw {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        f.set_sample(p, x, y, (s >> 33) as u8);
                    }
                }
            }
            let data = encode_intra(&f);
            prop_assert_eq!(decode_frame(&data, w, h, None).as_ref().ok(), Some(&f));
        }

        #[test]
        fn prop_inter_roundtrip(seed in any::<u64>(), delta in 0u8..=255u8) {
            let mut a = Frame::black(32, 32);
            let mut s = seed | 1;
            for y in 0..32 {
                for x in 0..32 {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    a.set_sample(Plane::Y, x, y, (s >> 40) as u8);
                }
            }
            let mut b = a.clone();
            for y in 8..16 {
                for x in 8..16 {
                    let v = b.sample(Plane::Y, x, y).wrapping_add(delta);
                    b.set_sample(Plane::Y, x, y, v);
                }
            }
            let data = encode_inter(&b, &a);
            prop_assert_eq!(decode_frame(&data, 32, 32, Some(&a)).as_ref().ok(), Some(&b));
        }
    }
}
