//! Tile layout geometry.
//!
//! A [`TileLayout`] is the paper's
//! `L = (n_r, n_c, {h_1..h_nr}, {c_1..c_nc})`: a regular grid whose rows and
//! columns extend through the entire frame (irregular layouts are not valid
//! HEVC and are not supported here either, §2). The untiled layout `ω` is the
//! special case of a single tile covering the frame.
//!
//! Layout *generation* (around objects, uniform grids, cost-driven choices)
//! lives in `tasm-core`; this module owns only the geometry, which the codec
//! needs for encoding and stitching.

use serde::{Deserialize, Serialize};
use tasm_video::Rect;

/// Tile boundaries must fall on multiples of this many luma pixels so that
/// 8×8 transform blocks align in both luma and 2×-subsampled chroma planes.
/// This mirrors HEVC's requirement that tile boundaries align to CTUs.
pub const TILE_ALIGN: u32 = 16;

/// Error produced when constructing an invalid tile layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A row or column list was empty.
    Empty,
    /// A tile dimension was zero or not a multiple of [`TILE_ALIGN`].
    Misaligned { dim: u32 },
    /// The widths/heights do not sum to the frame dimensions.
    CoverageMismatch { expected: u32, got: u32 },
    /// Requested more uniform tiles than the frame can hold at alignment.
    TooManyTiles { requested: u32, max: u32 },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::Empty => write!(f, "layout must have at least one row and column"),
            LayoutError::Misaligned { dim } => {
                write!(
                    f,
                    "tile dimension {dim} is not a positive multiple of {TILE_ALIGN}"
                )
            }
            LayoutError::CoverageMismatch { expected, got } => {
                write!(f, "tile dimensions sum to {got}, frame needs {expected}")
            }
            LayoutError::TooManyTiles { requested, max } => {
                write!(
                    f,
                    "requested {requested} tiles but alignment permits at most {max}"
                )
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// A tile layout: column widths and row heights that partition a frame.
///
/// Tiles are indexed in raster order: tile `r * cols + c` is the tile at row
/// `r`, column `c`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileLayout {
    col_widths: Vec<u32>,
    row_heights: Vec<u32>,
}

impl TileLayout {
    /// Builds a layout from explicit column widths and row heights.
    pub fn new(col_widths: Vec<u32>, row_heights: Vec<u32>) -> Result<Self, LayoutError> {
        if col_widths.is_empty() || row_heights.is_empty() {
            return Err(LayoutError::Empty);
        }
        for &d in col_widths.iter().chain(&row_heights) {
            if d == 0 || d % TILE_ALIGN != 0 {
                return Err(LayoutError::Misaligned { dim: d });
            }
        }
        Ok(TileLayout {
            col_widths,
            row_heights,
        })
    }

    /// The untiled layout `ω`: a single tile covering a `w`×`h` frame.
    ///
    /// # Panics
    /// Panics if the frame dimensions are not aligned (checked at video
    /// ingest, so an unaligned frame can never reach layout code).
    pub fn untiled(w: u32, h: u32) -> Self {
        TileLayout::new(vec![w], vec![h]).expect("frame dimensions must be TILE_ALIGN-aligned")
    }

    /// A uniform `rows`×`cols` layout over a `w`×`h` frame. Tile dimensions
    /// are equalized to within one alignment unit.
    pub fn uniform(w: u32, h: u32, rows: u32, cols: u32) -> Result<Self, LayoutError> {
        Ok(TileLayout {
            col_widths: split_even(w, cols)?,
            row_heights: split_even(h, rows)?,
        })
    }

    /// Number of tile rows.
    pub fn rows(&self) -> u32 {
        self.row_heights.len() as u32
    }

    /// Number of tile columns.
    pub fn cols(&self) -> u32 {
        self.col_widths.len() as u32
    }

    /// Total number of tiles.
    pub fn tile_count(&self) -> u32 {
        self.rows() * self.cols()
    }

    /// True if this is the untiled layout `ω`.
    pub fn is_untiled(&self) -> bool {
        self.tile_count() == 1
    }

    /// Column widths, left to right.
    pub fn col_widths(&self) -> &[u32] {
        &self.col_widths
    }

    /// Row heights, top to bottom.
    pub fn row_heights(&self) -> &[u32] {
        &self.row_heights
    }

    /// Frame width covered by the layout.
    pub fn frame_width(&self) -> u32 {
        self.col_widths.iter().sum()
    }

    /// Frame height covered by the layout.
    pub fn frame_height(&self) -> u32 {
        self.row_heights.iter().sum()
    }

    /// Verifies the layout exactly covers a `w`×`h` frame.
    pub fn check_covers(&self, w: u32, h: u32) -> Result<(), LayoutError> {
        if self.frame_width() != w {
            return Err(LayoutError::CoverageMismatch {
                expected: w,
                got: self.frame_width(),
            });
        }
        if self.frame_height() != h {
            return Err(LayoutError::CoverageMismatch {
                expected: h,
                got: self.frame_height(),
            });
        }
        Ok(())
    }

    /// Rectangle of the tile at `(row, col)`.
    pub fn tile_rect(&self, row: u32, col: u32) -> Rect {
        let x: u32 = self.col_widths[..col as usize].iter().sum();
        let y: u32 = self.row_heights[..row as usize].iter().sum();
        Rect::new(
            x,
            y,
            self.col_widths[col as usize],
            self.row_heights[row as usize],
        )
    }

    /// Rectangle of the tile with raster index `idx`.
    pub fn tile_rect_by_index(&self, idx: u32) -> Rect {
        let cols = self.cols();
        self.tile_rect(idx / cols, idx % cols)
    }

    /// Iterator over `(index, rect)` for all tiles in raster order.
    pub fn tiles(&self) -> impl Iterator<Item = (u32, Rect)> + '_ {
        (0..self.tile_count()).map(move |i| (i, self.tile_rect_by_index(i)))
    }

    /// Raster indices of the tiles that overlap `region`.
    pub fn tiles_intersecting(&self, region: &Rect) -> Vec<u32> {
        if region.is_empty() {
            return Vec::new();
        }
        let (r0, r1) = span(&self.row_heights, region.y, region.bottom());
        let (c0, c1) = span(&self.col_widths, region.x, region.right());
        let mut out = Vec::with_capacity(((r1 - r0) * (c1 - c0)) as usize);
        for r in r0..r1 {
            for c in c0..c1 {
                out.push(r * self.cols() + c);
            }
        }
        out
    }

    /// True if any interior tile boundary cuts through `rect`.
    pub fn boundary_intersects(&self, rect: &Rect) -> bool {
        if rect.is_empty() {
            return false;
        }
        let mut x = 0;
        for &w in &self.col_widths[..self.col_widths.len() - 1] {
            x += w;
            if x > rect.x && x < rect.right() {
                return true;
            }
        }
        let mut y = 0;
        for &h in &self.row_heights[..self.row_heights.len() - 1] {
            y += h;
            if y > rect.y && y < rect.bottom() {
                return true;
            }
        }
        false
    }

    /// Total pixels (luma) that must be decoded to recover `region`:
    /// the summed area of every tile overlapping it.
    pub fn covered_area(&self, region: &Rect) -> u64 {
        self.tiles_intersecting(region)
            .iter()
            .map(|&i| self.tile_rect_by_index(i).area())
            .sum()
    }
}

/// Index range `[first, last)` of grid cells overlapping `[lo, hi)`.
fn span(dims: &[u32], lo: u32, hi: u32) -> (u32, u32) {
    let mut first = dims.len() as u32;
    let mut last = 0u32;
    let mut start = 0u32;
    for (i, &d) in dims.iter().enumerate() {
        let end = start + d;
        if start < hi && end > lo {
            first = first.min(i as u32);
            last = (i + 1) as u32;
        }
        start = end;
    }
    if first >= last {
        (0, 0)
    } else {
        (first, last)
    }
}

/// Splits `total` into `parts` aligned segments as evenly as possible.
fn split_even(total: u32, parts: u32) -> Result<Vec<u32>, LayoutError> {
    if parts == 0 {
        return Err(LayoutError::Empty);
    }
    if total == 0 || !total.is_multiple_of(TILE_ALIGN) {
        return Err(LayoutError::Misaligned { dim: total });
    }
    let units = total / TILE_ALIGN;
    if parts > units {
        return Err(LayoutError::TooManyTiles {
            requested: parts,
            max: units,
        });
    }
    let base = units / parts;
    let extra = units % parts;
    Ok((0..parts)
        .map(|i| (base + u32::from(i < extra)) * TILE_ALIGN)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untiled_is_single_tile() {
        let l = TileLayout::untiled(640, 352);
        assert!(l.is_untiled());
        assert_eq!(l.tile_count(), 1);
        assert_eq!(l.tile_rect(0, 0), Rect::new(0, 0, 640, 352));
    }

    #[test]
    fn uniform_divides_evenly() {
        let l = TileLayout::uniform(640, 352, 2, 5).unwrap();
        assert_eq!(l.cols(), 5);
        assert_eq!(l.rows(), 2);
        assert_eq!(l.col_widths(), &[128, 128, 128, 128, 128]);
        assert_eq!(l.row_heights(), &[176, 176]);
        l.check_covers(640, 352).unwrap();
    }

    #[test]
    fn uniform_distributes_remainder_in_alignment_units() {
        let l = TileLayout::uniform(640, 352, 1, 7).unwrap();
        let widths = l.col_widths();
        assert_eq!(widths.iter().sum::<u32>(), 640);
        assert!(widths.iter().all(|w| w % TILE_ALIGN == 0));
        let min = widths.iter().min().unwrap();
        let max = widths.iter().max().unwrap();
        assert!(max - min <= TILE_ALIGN);
    }

    #[test]
    fn uniform_rejects_too_many_tiles() {
        assert!(matches!(
            TileLayout::uniform(64, 64, 1, 5),
            Err(LayoutError::TooManyTiles {
                requested: 5,
                max: 4
            })
        ));
    }

    #[test]
    fn new_rejects_misaligned() {
        assert!(matches!(
            TileLayout::new(vec![100, 540], vec![352]),
            Err(LayoutError::Misaligned { dim: 100 })
        ));
        assert!(matches!(
            TileLayout::new(vec![], vec![352]),
            Err(LayoutError::Empty)
        ));
        assert!(matches!(
            TileLayout::new(vec![0], vec![352]),
            Err(LayoutError::Misaligned { dim: 0 })
        ));
    }

    #[test]
    fn check_covers_detects_mismatch() {
        let l = TileLayout::new(vec![320, 320], vec![352]).unwrap();
        l.check_covers(640, 352).unwrap();
        assert!(l.check_covers(640, 368).is_err());
        assert!(l.check_covers(656, 352).is_err());
    }

    #[test]
    fn tile_rects_partition_frame() {
        let l = TileLayout::uniform(320, 160, 2, 4).unwrap();
        let total: u64 = l.tiles().map(|(_, r)| r.area()).sum();
        assert_eq!(total, 320 * 160);
        // No two tiles overlap.
        let rects: Vec<Rect> = l.tiles().map(|(_, r)| r).collect();
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                assert!(!rects[i].intersects(&rects[j]), "{i} and {j} overlap");
            }
        }
    }

    #[test]
    fn tiles_intersecting_finds_correct_tiles() {
        let l = TileLayout::uniform(320, 160, 2, 2).unwrap();
        // Tiles: 160x80 each.
        assert_eq!(l.tiles_intersecting(&Rect::new(0, 0, 10, 10)), vec![0]);
        assert_eq!(
            l.tiles_intersecting(&Rect::new(150, 70, 20, 20)),
            vec![0, 1, 2, 3]
        );
        assert_eq!(l.tiles_intersecting(&Rect::new(200, 100, 10, 10)), vec![3]);
        assert!(l.tiles_intersecting(&Rect::new(5, 5, 0, 0)).is_empty());
    }

    #[test]
    fn boundary_intersects_detects_cuts() {
        let l = TileLayout::uniform(320, 160, 2, 2).unwrap();
        assert!(l.boundary_intersects(&Rect::new(150, 10, 20, 10))); // crosses x=160
        assert!(l.boundary_intersects(&Rect::new(10, 70, 10, 20))); // crosses y=80
        assert!(!l.boundary_intersects(&Rect::new(0, 0, 160, 80))); // exactly tile 0
        assert!(!l.boundary_intersects(&Rect::new(170, 90, 20, 20))); // inside tile 3
        assert!(!TileLayout::untiled(320, 160).boundary_intersects(&Rect::new(0, 0, 320, 160)));
    }

    #[test]
    fn covered_area_counts_whole_tiles() {
        let l = TileLayout::uniform(320, 160, 2, 2).unwrap();
        // A 10x10 region inside one 160x80 tile costs the whole tile.
        assert_eq!(l.covered_area(&Rect::new(0, 0, 10, 10)), 160 * 80);
        assert_eq!(l.covered_area(&Rect::new(150, 70, 20, 20)), 320 * 160);
    }

    #[test]
    fn serde_roundtrip() {
        let l = TileLayout::uniform(320, 160, 3, 4).unwrap();
        let json = serde_json::to_string(&l).unwrap();
        let back: TileLayout = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
    }
}
