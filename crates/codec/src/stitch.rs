//! Homomorphic stitching.
//!
//! Tiles are stored as separate video files, but a query for a full frame
//! must recover the original picture. Homomorphic stitching (\[17\] in the
//! paper, §2) combines encoded tiles *without an intermediate re-encode*:
//! the stitched artifact interleaves the tiles' encoded bitstreams and adds
//! a layout header telling the decoder how tiles are arranged. Decoding the
//! stitched stream reconstructs each tile independently and composites the
//! planes — no generation loss beyond the tiles' own encoding.

use crate::container::{ContainerError, TileVideo};
use crate::grid::{LayoutError, TileLayout};
use crate::stats::DecodeStats;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::ops::Range;
use std::time::Instant;
use tasm_video::Frame;

/// Magic bytes identifying a stitched stream.
pub const TSF_MAGIC: [u8; 4] = *b"TSF1";

/// A stitched video: a tile layout plus the encoded tile streams, combined
/// without re-encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct StitchedVideo {
    layout: TileLayout,
    tiles: Vec<TileVideo>,
}

/// Errors raised while stitching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StitchError {
    /// The number of tile streams does not match the layout.
    TileCountMismatch { expected: u32, got: u32 },
    /// A tile stream's dimensions disagree with its layout rectangle.
    TileDimsMismatch { index: u32 },
    /// Tile streams disagree on frame count.
    FrameCountMismatch,
    /// A tile stream uses a codec homomorphic stitching cannot splice
    /// (stitching re-frames DCT bitstreams without re-encoding; lossless
    /// tiles must be decoded and composited instead).
    UnsupportedCodec { index: u32 },
    /// The layout itself is invalid.
    Layout(LayoutError),
    /// Container-level failure.
    Container(ContainerError),
}

impl From<LayoutError> for StitchError {
    fn from(e: LayoutError) -> Self {
        StitchError::Layout(e)
    }
}

impl From<ContainerError> for StitchError {
    fn from(e: ContainerError) -> Self {
        StitchError::Container(e)
    }
}

impl std::fmt::Display for StitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StitchError::TileCountMismatch { expected, got } => {
                write!(f, "layout expects {expected} tiles, got {got}")
            }
            StitchError::TileDimsMismatch { index } => {
                write!(f, "tile {index} dimensions disagree with layout")
            }
            StitchError::FrameCountMismatch => write!(f, "tiles disagree on frame count"),
            StitchError::UnsupportedCodec { index } => {
                write!(f, "tile {index} uses a codec stitching cannot splice")
            }
            StitchError::Layout(e) => write!(f, "layout error: {e}"),
            StitchError::Container(e) => write!(f, "container error: {e}"),
        }
    }
}

impl std::error::Error for StitchError {}

impl StitchedVideo {
    /// Stitches tile streams (raster order) under `layout`. Pure metadata
    /// operation: no pixel is decoded or re-encoded.
    pub fn stitch(layout: TileLayout, tiles: Vec<TileVideo>) -> Result<Self, StitchError> {
        if tiles.len() as u32 != layout.tile_count() {
            return Err(StitchError::TileCountMismatch {
                expected: layout.tile_count(),
                got: tiles.len() as u32,
            });
        }
        for (i, rect) in layout.tiles() {
            let t = &tiles[i as usize];
            if t.width != rect.w || t.height != rect.h {
                return Err(StitchError::TileDimsMismatch { index: i });
            }
            if t.codec != crate::container::TileCodec::Dct {
                return Err(StitchError::UnsupportedCodec { index: i });
            }
        }
        let n = tiles[0].frame_count();
        if tiles.iter().any(|t| t.frame_count() != n) {
            return Err(StitchError::FrameCountMismatch);
        }
        Ok(StitchedVideo { layout, tiles })
    }

    /// The stitched frame width.
    pub fn width(&self) -> u32 {
        self.layout.frame_width()
    }

    /// The stitched frame height.
    pub fn height(&self) -> u32 {
        self.layout.frame_height()
    }

    /// Number of frames.
    pub fn frame_count(&self) -> u32 {
        self.tiles[0].frame_count()
    }

    /// The tile layout.
    pub fn layout(&self) -> &TileLayout {
        &self.layout
    }

    /// Borrow the tile streams.
    pub fn tiles(&self) -> &[TileVideo] {
        &self.tiles
    }

    /// Total serialized size.
    pub fn size_bytes(&self) -> u64 {
        let header = 4 + 1 + 2 + 2 + 4 * (self.layout.cols() as u64 + self.layout.rows() as u64);
        header + self.tiles.iter().map(|t| 8 + t.size_bytes()).sum::<u64>()
    }

    /// Decodes full frames for `range`, compositing every tile.
    pub fn decode_range(
        &self,
        range: Range<u32>,
    ) -> Result<(Vec<Frame>, DecodeStats), ContainerError> {
        let t0 = Instant::now();
        let mut stats = DecodeStats::new();
        let mut frames: Vec<Frame> = (0..range.len())
            .map(|_| Frame::black(self.width(), self.height()))
            .collect();
        for (i, rect) in self.layout.tiles() {
            let (tile_frames, s) = self.tiles[i as usize].decode_range(range.clone())?;
            stats += s;
            for (dst, src) in frames.iter_mut().zip(&tile_frames) {
                dst.blit(src, src.rect(), rect.x, rect.y);
            }
        }
        stats.decode_time = t0.elapsed();
        Ok((frames, stats))
    }

    /// Decodes the whole stitched stream.
    pub fn decode_all(&self) -> Result<(Vec<Frame>, DecodeStats), ContainerError> {
        self.decode_range(0..self.frame_count())
    }

    /// Serializes the stitched stream: layout header + embedded tile streams.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.size_bytes() as usize);
        buf.put_slice(&TSF_MAGIC);
        buf.put_u8(1);
        buf.put_u16_le(self.layout.cols() as u16);
        buf.put_u16_le(self.layout.rows() as u16);
        for &w in self.layout.col_widths() {
            buf.put_u32_le(w);
        }
        for &h in self.layout.row_heights() {
            buf.put_u32_le(h);
        }
        for t in &self.tiles {
            let b = t.to_bytes();
            buf.put_u64_le(b.len() as u64);
            buf.put_slice(&b);
        }
        buf.freeze()
    }

    /// Parses a serialized stitched stream.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, StitchError> {
        if data.remaining() < 9 {
            return Err(StitchError::Container(ContainerError::Truncated));
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if magic != TSF_MAGIC || data.get_u8() != 1 {
            return Err(StitchError::Container(ContainerError::BadMagic));
        }
        let cols = data.get_u16_le() as usize;
        let rows = data.get_u16_le() as usize;
        if data.remaining() < 4 * (cols + rows) {
            return Err(StitchError::Container(ContainerError::Truncated));
        }
        let col_widths: Vec<u32> = (0..cols).map(|_| data.get_u32_le()).collect();
        let row_heights: Vec<u32> = (0..rows).map(|_| data.get_u32_le()).collect();
        let layout = TileLayout::new(col_widths, row_heights)?;
        let mut tiles = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            if data.remaining() < 8 {
                return Err(StitchError::Container(ContainerError::Truncated));
            }
            let len = data.get_u64_le() as usize;
            if data.remaining() < len {
                return Err(StitchError::Container(ContainerError::Truncated));
            }
            tiles.push(TileVideo::from_bytes(&data[..len]).map_err(StitchError::Container)?);
            data.advance(len);
        }
        StitchedVideo::stitch(layout, tiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_video;
    use crate::encoder::EncoderConfig;
    use tasm_video::{psnr_frames, Frame, FrameSource, Rect, VecFrameSource};

    fn source(n: u32) -> VecFrameSource {
        let frames = (0..n)
            .map(|i| {
                let mut f = Frame::filled(64, 64, 90, 128, 128);
                f.fill_rect(Rect::new((i * 6) % 48, 16, 16, 16), 200, 80, 170);
                f
            })
            .collect();
        VecFrameSource::new(frames)
    }

    fn tiled(n: u32, rows: u32, cols: u32) -> (TileLayout, Vec<TileVideo>) {
        let src = source(n);
        let layout = TileLayout::uniform(64, 64, rows, cols).unwrap();
        let (videos, _) = encode_video(&src, &layout, &EncoderConfig::default(), false).unwrap();
        (layout, videos)
    }

    #[test]
    fn stitch_validates_inputs() {
        let (layout, mut tiles) = tiled(4, 2, 2);
        assert!(StitchedVideo::stitch(layout.clone(), tiles[..3].to_vec()).is_err());
        tiles[1].frames.pop();
        assert_eq!(
            StitchedVideo::stitch(layout, tiles).unwrap_err(),
            StitchError::FrameCountMismatch
        );
    }

    #[test]
    fn stitched_decode_approximates_source() {
        let (layout, tiles) = tiled(6, 2, 2);
        let sv = StitchedVideo::stitch(layout, tiles).unwrap();
        assert_eq!(sv.width(), 64);
        assert_eq!(sv.frame_count(), 6);
        let (frames, stats) = sv.decode_all().unwrap();
        assert_eq!(frames.len(), 6);
        assert_eq!(stats.tile_chunks_decoded, 6 * 4);
        let src = source(6);
        for i in 0..6 {
            let r = psnr_frames(&src.frame(i), &frames[i as usize]);
            assert!(r.y > 28.0, "frame {i}: PSNR {:.1}", r.y);
        }
    }

    #[test]
    fn stitched_serialization_roundtrip() {
        let (layout, tiles) = tiled(4, 2, 2);
        let sv = StitchedVideo::stitch(layout, tiles).unwrap();
        let bytes = sv.to_bytes();
        assert_eq!(bytes.len() as u64, sv.size_bytes());
        let back = StitchedVideo::from_bytes(&bytes).unwrap();
        assert_eq!(sv, back);
    }

    #[test]
    fn stitching_is_homomorphic_no_reencode() {
        // The stitched tile payloads are byte-identical to the inputs:
        // stitching never touches encoded data.
        let (layout, tiles) = tiled(4, 2, 2);
        let original_bytes: Vec<Bytes> = tiles.iter().map(|t| t.to_bytes()).collect();
        let sv = StitchedVideo::stitch(layout, tiles).unwrap();
        for (t, orig) in sv.tiles().iter().zip(&original_bytes) {
            assert_eq!(&t.to_bytes(), orig);
        }
    }

    #[test]
    fn corrupt_stitched_stream_rejected() {
        let (layout, tiles) = tiled(2, 1, 2);
        let sv = StitchedVideo::stitch(layout, tiles).unwrap();
        let bytes = sv.to_bytes();
        assert!(StitchedVideo::from_bytes(&bytes[..8]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] = b'Z';
        assert!(StitchedVideo::from_bytes(&bad).is_err());
    }
}
