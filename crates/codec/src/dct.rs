//! 8×8 separable DCT-II / DCT-III transform pair.
//!
//! The transform operates on `i32` residuals and uses a fixed-point basis
//! (scaled by 2¹³, like HEVC's integer transforms) so that encode and decode
//! are bit-exact across platforms. The forward/inverse pair is not lossless —
//! it is a transform, and quantization downstream discards precision — but
//! `forward` followed by `inverse` reconstructs residuals within ±1, which is
//! below the quantizer's dead zone for every QP we use.

/// Transform block edge length in samples.
pub const BLOCK: usize = 8;

/// Number of coefficients in a block.
pub const BLOCK_AREA: usize = BLOCK * BLOCK;

/// Fixed-point scale (2^13) for the DCT basis.
const SCALE_BITS: i64 = 13;
#[cfg(test)]
const SCALE: f64 = (1i64 << SCALE_BITS) as f64;

/// Basis matrix `C[k][n] = c(k) * cos((2n+1) k π / 16)` in Q13 fixed point.
const fn basis() -> [[i32; BLOCK]; BLOCK] {
    // const fn cannot call cos(); table computed offline and verified by the
    // `basis_matches_float` test below.
    [
        [2896, 2896, 2896, 2896, 2896, 2896, 2896, 2896],
        [4017, 3406, 2276, 799, -799, -2276, -3406, -4017],
        [3784, 1567, -1567, -3784, -3784, -1567, 1567, 3784],
        [3406, -799, -4017, -2276, 2276, 4017, 799, -3406],
        [2896, -2896, -2896, 2896, 2896, -2896, -2896, 2896],
        [2276, -4017, 799, 3406, -3406, -799, 4017, -2276],
        [1567, -3784, 3784, -1567, -1567, 3784, -3784, 1567],
        [799, -2276, 3406, -4017, 4017, -3406, 2276, -799],
    ]
}

const BASIS: [[i32; BLOCK]; BLOCK] = basis();

/// Forward 8×8 DCT of a residual block (row-major), producing coefficients
/// at the same nominal scale as the input.
pub fn forward(block: &[i32; BLOCK_AREA]) -> [i32; BLOCK_AREA] {
    let mut tmp = [0i64; BLOCK_AREA];
    // Transform rows: tmp = block * C^T
    for r in 0..BLOCK {
        for k in 0..BLOCK {
            let mut acc = 0i64;
            for n in 0..BLOCK {
                acc += block[r * BLOCK + n] as i64 * BASIS[k][n] as i64;
            }
            tmp[r * BLOCK + k] = acc;
        }
    }
    // Transform columns: out = C * tmp. The basis is orthonormal at scale
    // 2^13, so the 2-D product carries a 2^26 factor that we shift away.
    let mut out = [0i32; BLOCK_AREA];
    let round = 1i64 << (2 * SCALE_BITS - 1);
    for c in 0..BLOCK {
        for k in 0..BLOCK {
            let mut acc = 0i64;
            for n in 0..BLOCK {
                acc += tmp[n * BLOCK + c] * BASIS[k][n] as i64;
            }
            out[k * BLOCK + c] = ((acc + round) >> (2 * SCALE_BITS)) as i32;
        }
    }
    out
}

/// Inverse 8×8 DCT, reconstructing the residual block.
pub fn inverse(coef: &[i32; BLOCK_AREA]) -> [i32; BLOCK_AREA] {
    let mut tmp = [0i64; BLOCK_AREA];
    // Inverse over columns: tmp = C^T * coef
    for c in 0..BLOCK {
        for n in 0..BLOCK {
            let mut acc = 0i64;
            for k in 0..BLOCK {
                acc += coef[k * BLOCK + c] as i64 * BASIS[k][n] as i64;
            }
            tmp[n * BLOCK + c] = acc;
        }
    }
    // Inverse over rows with rounding and the remaining 1/4-ish normalization.
    let mut out = [0i32; BLOCK_AREA];
    let round = 1i64 << (2 * SCALE_BITS - 1);
    for r in 0..BLOCK {
        for n in 0..BLOCK {
            let mut acc = 0i64;
            for k in 0..BLOCK {
                acc += tmp[r * BLOCK + k] * BASIS[k][n] as i64;
            }
            out[r * BLOCK + n] = ((acc + round) >> (2 * SCALE_BITS)) as i32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn float_basis() -> [[f64; BLOCK]; BLOCK] {
        let mut m = [[0.0; BLOCK]; BLOCK];
        for (k, row) in m.iter_mut().enumerate() {
            let ck = if k == 0 {
                (1.0f64 / 8.0).sqrt()
            } else {
                (2.0f64 / 8.0).sqrt()
            };
            for (n, cell) in row.iter_mut().enumerate() {
                *cell =
                    ck * ((2.0 * n as f64 + 1.0) * k as f64 * std::f64::consts::PI / 16.0).cos();
            }
        }
        m
    }

    #[test]
    fn basis_matches_float() {
        // The const table is the orthonormal DCT-II basis in Q13: each entry
        // must equal round(c(k) · cos((2n+1)kπ/16) · 2^13) within 1 ulp.
        let fb = float_basis();
        for k in 0..BLOCK {
            for n in 0..BLOCK {
                let expected = fb[k][n] * SCALE;
                let got = BASIS[k][n] as f64;
                assert!(
                    (got - expected).abs() <= 1.0,
                    "basis[{k}][{n}] = {got}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn dc_block_transforms_to_dc_coefficient() {
        let block = [100i32; BLOCK_AREA];
        let coef = forward(&block);
        // DC coefficient should carry all energy: 8 * 100 = 800 for orthonormal.
        assert!(coef[0] > 0);
        for (i, &c) in coef.iter().enumerate().skip(1) {
            assert!(c.abs() <= 1, "AC coefficient {i} = {c} should be ~0");
        }
        let back = inverse(&coef);
        for &v in &back {
            assert!((v - 100).abs() <= 1, "reconstruction {v} != 100");
        }
    }

    #[test]
    fn roundtrip_error_within_one() {
        // Deterministic pseudo-random residuals in the range the encoder sees.
        let mut state = 0x12345678u32;
        let mut next = move || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 16) as i32 % 512) - 256
        };
        for _ in 0..50 {
            let mut block = [0i32; BLOCK_AREA];
            for v in block.iter_mut() {
                *v = next();
            }
            let coef = forward(&block);
            let back = inverse(&coef);
            for (a, b) in block.iter().zip(&back) {
                assert!((a - b).abs() <= 1, "roundtrip error {} vs {}", a, b);
            }
        }
    }

    #[test]
    fn linearity() {
        let a = [37i32; BLOCK_AREA];
        let mut b = [0i32; BLOCK_AREA];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i as i32 % 17) - 8;
        }
        let mut sum = [0i32; BLOCK_AREA];
        for i in 0..BLOCK_AREA {
            sum[i] = a[i] + b[i];
        }
        let fa = forward(&a);
        let fb = forward(&b);
        let fsum = forward(&sum);
        for i in 0..BLOCK_AREA {
            assert!(
                (fa[i] + fb[i] - fsum[i]).abs() <= 2,
                "linearity violated at {i}"
            );
        }
    }

    #[test]
    fn energy_preserved() {
        // Parseval: orthonormal transform preserves energy (within rounding).
        let mut block = [0i32; BLOCK_AREA];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 7919) % 255) as i32 - 127;
        }
        let coef = forward(&block);
        let e_in: i64 = block.iter().map(|&v| (v as i64) * (v as i64)).sum();
        let e_out: i64 = coef.iter().map(|&v| (v as i64) * (v as i64)).sum();
        let ratio = e_out as f64 / e_in as f64;
        assert!((ratio - 1.0).abs() < 0.02, "energy ratio {ratio}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_roundtrip_within_one(block in proptest::array::uniform32(-255i32..=255)) {
            // proptest offers fixed-size arrays up to 32; tile it to 64.
            let mut full = [0i32; BLOCK_AREA];
            for i in 0..BLOCK_AREA {
                full[i] = block[i % 32];
            }
            let back = inverse(&forward(&full));
            for (a, b) in full.iter().zip(&back) {
                prop_assert!((a - b).abs() <= 1);
            }
        }
    }
}
