//! Scalar quantization of transform coefficients.
//!
//! Quantization is the lossy stage of the codec: coefficients are divided by
//! a step size derived from the quantization parameter (QP) with the HEVC
//! convention that the step doubles every 6 QP (`qstep = 2^((qp-4)/6)`).
//! Lower QP means finer steps, higher quality, and larger bitstreams.

/// Maximum supported quantization parameter.
pub const MAX_QP: u8 = 51;

/// Quantization step size for a QP, following the HEVC doubling rule,
/// clamped to at least 1 (QP ≤ 4 is effectively near-lossless).
pub fn qstep(qp: u8) -> i32 {
    assert!(qp <= MAX_QP, "qp {qp} out of range");
    let step = 2f64.powf((qp as f64 - 4.0) / 6.0);
    (step.round() as i32).max(1)
}

/// Quantizes one coefficient: symmetric round-to-nearest with step `qstep`.
#[inline]
pub fn quantize(coef: i32, qstep: i32) -> i32 {
    let sign = if coef < 0 { -1 } else { 1 };
    let mag = coef.unsigned_abs() as i64;
    let q = (2 * mag + qstep as i64) / (2 * qstep as i64);
    sign * q as i32
}

/// Reconstructs a coefficient from its quantized level.
#[inline]
pub fn dequantize(level: i32, qstep: i32) -> i32 {
    level.saturating_mul(qstep)
}

/// Quantizes a whole block in place, returning the number of nonzero levels.
pub fn quantize_block(coefs: &mut [i32], qstep: i32) -> usize {
    let mut nonzero = 0;
    for c in coefs.iter_mut() {
        *c = quantize(*c, qstep);
        if *c != 0 {
            nonzero += 1;
        }
    }
    nonzero
}

/// Dequantizes a whole block in place.
pub fn dequantize_block(levels: &mut [i32], qstep: i32) {
    for l in levels.iter_mut() {
        *l = dequantize(*l, qstep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qstep_doubles_every_six() {
        assert_eq!(qstep(4), 1);
        assert_eq!(qstep(10), 2);
        assert_eq!(qstep(16), 4);
        assert_eq!(qstep(22), 8);
        assert_eq!(qstep(28), 16);
        assert_eq!(qstep(34), 32);
        assert_eq!(qstep(40), 64);
    }

    #[test]
    fn qstep_clamped_to_one_at_low_qp() {
        for qp in 0..=4 {
            assert_eq!(qstep(qp), 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qstep_rejects_out_of_range() {
        let _ = qstep(52);
    }

    #[test]
    fn quantize_step_one_is_identity() {
        for v in [-300, -1, 0, 1, 2, 255, 12345] {
            assert_eq!(dequantize(quantize(v, 1), 1), v);
        }
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        // step 16: 7 -> 0, 8 -> 1 (ties round up in magnitude), 23 -> 1, 24 -> 2
        assert_eq!(quantize(7, 16), 0);
        assert_eq!(quantize(8, 16), 1);
        assert_eq!(quantize(23, 16), 1);
        assert_eq!(quantize(24, 16), 2);
        assert_eq!(quantize(-8, 16), -1);
        assert_eq!(quantize(-7, 16), 0);
    }

    #[test]
    fn reconstruction_error_bounded_by_half_step() {
        for qp in [10u8, 22, 28, 34] {
            let s = qstep(qp);
            for v in -1000..=1000 {
                let r = dequantize(quantize(v, s), s);
                assert!(
                    (v - r).abs() <= s / 2 + 1,
                    "qp {qp}: value {v} reconstructed as {r}"
                );
            }
        }
    }

    #[test]
    fn quantize_block_counts_nonzero() {
        let mut block = vec![0, 5, 40, -40, 7, -8];
        let nnz = quantize_block(&mut block, 16);
        assert_eq!(block, vec![0, 0, 3, -3, 0, -1]);
        assert_eq!(nnz, 3);
        dequantize_block(&mut block, 16);
        assert_eq!(block, vec![0, 0, 48, -48, 0, -16]);
    }
}
