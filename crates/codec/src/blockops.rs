//! Pixel-block helpers shared by the encoder and decoder.
//!
//! All functions operate on a single plane stored row-major with an explicit
//! stride, using 8×8 blocks (the transform size). Coordinates are in the
//! plane's own sample grid (chroma coordinates for chroma planes).

use crate::dct::{BLOCK, BLOCK_AREA};

/// Zigzag scan order for an 8×8 coefficient block (JPEG/MPEG order):
/// low frequencies first so runs of trailing zeros compress well.
pub const ZIGZAG: [usize; BLOCK_AREA] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Loads an 8×8 block of samples as `i32`.
#[inline]
pub fn load_block(plane: &[u8], stride: usize, x: usize, y: usize) -> [i32; BLOCK_AREA] {
    let mut out = [0i32; BLOCK_AREA];
    for row in 0..BLOCK {
        let base = (y + row) * stride + x;
        for col in 0..BLOCK {
            out[row * BLOCK + col] = plane[base + col] as i32;
        }
    }
    out
}

/// Stores an 8×8 block, clamping each value to the 8-bit sample range.
#[inline]
pub fn store_block(
    plane: &mut [u8],
    stride: usize,
    x: usize,
    y: usize,
    values: &[i32; BLOCK_AREA],
) {
    for row in 0..BLOCK {
        let base = (y + row) * stride + x;
        for col in 0..BLOCK {
            plane[base + col] = values[row * BLOCK + col].clamp(0, 255) as u8;
        }
    }
}

/// Copies an 8×8 block between planes (used for SKIP blocks and motion
/// compensation with integer vectors).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn copy_block(
    dst: &mut [u8],
    dst_stride: usize,
    dx: usize,
    dy: usize,
    src: &[u8],
    src_stride: usize,
    sx: usize,
    sy: usize,
) {
    for row in 0..BLOCK {
        let d = (dy + row) * dst_stride + dx;
        let s = (sy + row) * src_stride + sx;
        dst[d..d + BLOCK].copy_from_slice(&src[s..s + BLOCK]);
    }
}

/// Sum of absolute differences between a block in `a` and a block in `b`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn sad(
    a: &[u8],
    a_stride: usize,
    ax: usize,
    ay: usize,
    b: &[u8],
    b_stride: usize,
    bx: usize,
    by: usize,
) -> u32 {
    let mut total = 0u32;
    for row in 0..BLOCK {
        let pa = &a[(ay + row) * a_stride + ax..][..BLOCK];
        let pb = &b[(by + row) * b_stride + bx..][..BLOCK];
        for (&x, &y) in pa.iter().zip(pb) {
            total += (x as i32 - y as i32).unsigned_abs();
        }
    }
    total
}

/// DC intra prediction: the mean of the reconstructed samples directly above
/// and to the left of the block *within the same tile*, or 128 when the block
/// touches the tile's top-left corner. Mirrors HEVC DC mode restricted to the
/// tile (prediction never crosses tile boundaries — that is what makes tiles
/// independently decodable).
#[inline]
pub fn dc_predict(recon: &[u8], stride: usize, x: usize, y: usize) -> i32 {
    let mut sum = 0u32;
    let mut count = 0u32;
    if y > 0 {
        let base = (y - 1) * stride + x;
        for col in 0..BLOCK {
            sum += recon[base + col] as u32;
        }
        count += BLOCK as u32;
    }
    if x > 0 {
        for row in 0..BLOCK {
            sum += recon[(y + row) * stride + x - 1] as u32;
        }
        count += BLOCK as u32;
    }
    (sum + count / 2)
        .checked_div(count)
        .map_or(128, |v| v as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; BLOCK_AREA];
        for &z in &ZIGZAG {
            assert!(!seen[z], "duplicate index {z}");
            seen[z] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // First few entries follow the classic pattern.
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut plane = vec![0u8; 16 * 16];
        for (i, p) in plane.iter_mut().enumerate() {
            *p = (i % 251) as u8;
        }
        let block = load_block(&plane, 16, 8, 8);
        let mut out = vec![0u8; 16 * 16];
        store_block(&mut out, 16, 8, 8, &block);
        for row in 8..16 {
            for col in 8..16 {
                assert_eq!(out[row * 16 + col], plane[row * 16 + col]);
            }
        }
    }

    #[test]
    fn store_clamps_to_u8() {
        let mut plane = vec![0u8; 64];
        let mut vals = [0i32; BLOCK_AREA];
        vals[0] = -50;
        vals[1] = 300;
        vals[2] = 128;
        store_block(&mut plane, 8, 0, 0, &vals);
        assert_eq!(plane[0], 0);
        assert_eq!(plane[1], 255);
        assert_eq!(plane[2], 128);
    }

    #[test]
    fn sad_zero_for_identical() {
        let plane = vec![99u8; 64];
        assert_eq!(sad(&plane, 8, 0, 0, &plane, 8, 0, 0), 0);
    }

    #[test]
    fn sad_counts_differences() {
        let a = vec![10u8; 64];
        let b = vec![13u8; 64];
        assert_eq!(sad(&a, 8, 0, 0, &b, 8, 0, 0), 3 * 64);
    }

    #[test]
    fn copy_block_moves_pixels() {
        let mut src = vec![0u8; 16 * 16];
        src[3 * 16 + 4] = 200; // inside block at (0,0)? No: (4,3)
        let mut dst = vec![0u8; 16 * 16];
        copy_block(&mut dst, 16, 8, 8, &src, 16, 0, 0);
        assert_eq!(dst[(8 + 3) * 16 + 8 + 4], 200);
    }

    #[test]
    fn dc_predict_corner_is_mid_gray() {
        let recon = vec![77u8; 64];
        assert_eq!(dc_predict(&recon, 8, 0, 0), 128);
    }

    #[test]
    fn dc_predict_uses_top_and_left() {
        // 16x16 plane: row 7 (above block at (8,8)) = 100, col 7 = 50.
        let mut recon = vec![0u8; 16 * 16];
        for col in 8..16 {
            recon[7 * 16 + col] = 100;
        }
        for row in 8..16 {
            recon[row * 16 + 7] = 50;
        }
        assert_eq!(dc_predict(&recon, 16, 8, 8), 75);
    }

    #[test]
    fn dc_predict_top_only() {
        // Block at (0, 8): no left neighbours, top row 7 = 200.
        let mut recon = vec![0u8; 16 * 16];
        for col in 0..8 {
            recon[7 * 16 + col] = 200;
        }
        assert_eq!(dc_predict(&recon, 16, 0, 8), 200);
    }

    #[test]
    fn dc_predict_left_only() {
        // Block at (8, 0): no top neighbours, left column 7 = 60.
        let mut recon = vec![0u8; 16 * 16];
        for row in 0..8 {
            recon[row * 16 + 7] = 60;
        }
        assert_eq!(dc_predict(&recon, 16, 8, 0), 60);
    }
}
