//! Static order-0 rANS entropy coding for lossless tile payloads.
//!
//! The `Pred` tile codec (see [`crate::pred`]) turns frames into residual
//! bytes clustered around zero; this module squeezes those bytes with a
//! range asymmetric numeral system coder: per-buffer symbol frequencies are
//! normalized to a 4096 slot table, the encoder folds symbols into a 32-bit
//! state in reverse order, and the decoder replays them forward. A
//! frequency table and a plaintext checksum travel in the stream header, so
//! truncated or bit-flipped streams surface as typed [`EntropyError`]s —
//! never a panic and never silently wrong bytes.
//!
//! Buffers the coder cannot beat (incompressible payloads) are stored raw
//! behind a mode byte, bounding expansion to a few header bytes.

/// Log2 of the frequency-table denominator.
const SCALE_BITS: u32 = 12;
/// All normalized frequencies sum to this.
const SCALE: u32 = 1 << SCALE_BITS;
/// Lower bound of the rANS state during coding.
const RANS_L: u32 = 1 << 23;

/// Stream stored raw (entropy coding would have grown it).
const MODE_RAW: u8 = 0;
/// Stream stored rANS-coded.
const MODE_RANS: u8 = 1;

/// Errors surfaced while decoding an entropy-coded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntropyError {
    /// The stream ended before the declared content.
    Truncated,
    /// A header field held an impossible value.
    Malformed(&'static str),
    /// The declared payload length exceeds the caller's bound.
    Oversized { declared: u64, limit: u64 },
    /// The decoded bytes do not match the stored checksum.
    ChecksumMismatch,
}

impl std::fmt::Display for EntropyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntropyError::Truncated => write!(f, "entropy stream truncated"),
            EntropyError::Malformed(what) => write!(f, "malformed entropy stream: {what}"),
            EntropyError::Oversized { declared, limit } => {
                write!(f, "declared payload {declared} exceeds limit {limit}")
            }
            EntropyError::ChecksumMismatch => write!(f, "entropy payload checksum mismatch"),
        }
    }
}

impl std::error::Error for EntropyError {}

/// FNV-1a over the plaintext; cheap and order-sensitive, which is all the
/// corruption check needs.
fn checksum(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, EntropyError> {
    let mut v: u64 = 0;
    for shift in 0..10 {
        let &byte = data.get(*pos).ok_or(EntropyError::Truncated)?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << (shift * 7);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(EntropyError::Malformed("varint too long"))
}

/// Normalizes raw symbol counts to sum exactly [`SCALE`], keeping every
/// present symbol at frequency ≥ 1 (largest-remainder apportionment).
fn normalize(counts: &[u64; 256], total: u64) -> [u32; 256] {
    let mut freqs = [0u32; 256];
    let mut assigned: u32 = 0;
    // First pass: floor shares, minimum 1 for any present symbol.
    let mut remainders: Vec<(u64, usize)> = Vec::new();
    for s in 0..256 {
        if counts[s] == 0 {
            continue;
        }
        let exact = counts[s] as u128 * SCALE as u128;
        let share = (exact / total as u128) as u32;
        let f = share.max(1);
        freqs[s] = f;
        assigned += f;
        remainders.push(((exact % total as u128) as u64, s));
    }
    // Trim overshoot from the largest frequencies, grow undershoot by
    // largest remainder — deterministic in both directions.
    while assigned > SCALE {
        let s = (0..256)
            .filter(|&s| freqs[s] > 1)
            .max_by_key(|&s| freqs[s])
            .expect("a symbol above 1 must exist while oversubscribed");
        freqs[s] -= 1;
        assigned -= 1;
    }
    if assigned < SCALE {
        remainders.sort_by(|a, b| b.cmp(a));
        let mut i = 0;
        while assigned < SCALE {
            let (_, s) = remainders[i % remainders.len()];
            freqs[s] += 1;
            assigned += 1;
            i += 1;
        }
    }
    freqs
}

/// Compresses `data`. The output always round-trips through
/// [`decompress`]; incompressible inputs fall back to raw storage.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut header = Vec::with_capacity(16);
    header.push(MODE_RANS);
    put_varint(&mut header, data.len() as u64);
    header.extend_from_slice(&checksum(data).to_le_bytes());

    let raw_fallback = |header: &mut Vec<u8>| {
        header[0] = MODE_RAW;
        header.extend_from_slice(data);
    };
    if data.is_empty() {
        let mut out = header;
        raw_fallback(&mut out);
        return out;
    }

    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let freqs = normalize(&counts, data.len() as u64);
    let mut cum = [0u32; 257];
    for s in 0..256 {
        cum[s + 1] = cum[s] + freqs[s];
    }

    // Frequency table: count, then (symbol, freq) pairs for present symbols.
    let present: Vec<usize> = (0..256).filter(|&s| freqs[s] > 0).collect();
    let mut body = Vec::with_capacity(data.len() / 2 + 16);
    put_varint(&mut body, present.len() as u64);
    for &s in &present {
        body.push(s as u8);
        put_varint(&mut body, freqs[s] as u64);
    }

    // rANS: fold symbols in reverse; emitted bytes are reversed so the
    // decoder reads forward.
    let mut stream: Vec<u8> = Vec::with_capacity(data.len() / 2 + 8);
    let mut state: u32 = RANS_L;
    for &b in data.iter().rev() {
        let f = freqs[b as usize];
        let x_max = ((RANS_L >> SCALE_BITS) << 8) * f;
        while state >= x_max {
            stream.push((state & 0xff) as u8);
            state >>= 8;
        }
        state = ((state / f) << SCALE_BITS) + (state % f) + cum[b as usize];
    }
    stream.extend_from_slice(&state.to_le_bytes());
    stream.reverse();
    body.extend_from_slice(&stream);

    if header.len() + body.len() >= header.len() + data.len() {
        let mut out = header;
        raw_fallback(&mut out);
        return out;
    }
    let mut out = header;
    out.extend_from_slice(&body);
    out
}

/// Decompresses a [`compress`]ed stream. `max_len` bounds the declared
/// payload length so corrupt headers cannot demand absurd allocations;
/// callers know the plaintext size they expect (e.g. a frame's plane bytes).
pub fn decompress(data: &[u8], max_len: usize) -> Result<Vec<u8>, EntropyError> {
    let mut pos = 0usize;
    let &mode = data.get(pos).ok_or(EntropyError::Truncated)?;
    pos += 1;
    let raw_len = get_varint(data, &mut pos)? as usize;
    if raw_len as u64 > max_len as u64 {
        return Err(EntropyError::Oversized {
            declared: raw_len as u64,
            limit: max_len as u64,
        });
    }
    let want = data
        .get(pos..pos + 4)
        .ok_or(EntropyError::Truncated)?
        .try_into()
        .expect("4-byte slice");
    let want = u32::from_le_bytes(want);
    pos += 4;

    let out = match mode {
        MODE_RAW => {
            let payload = data
                .get(pos..pos + raw_len)
                .ok_or(EntropyError::Truncated)?;
            if data.len() > pos + raw_len {
                return Err(EntropyError::Malformed("trailing bytes after raw payload"));
            }
            payload.to_vec()
        }
        MODE_RANS => decode_rans(data, pos, raw_len)?,
        _ => return Err(EntropyError::Malformed("unknown stream mode")),
    };
    if checksum(&out) != want {
        return Err(EntropyError::ChecksumMismatch);
    }
    Ok(out)
}

fn decode_rans(data: &[u8], mut pos: usize, raw_len: usize) -> Result<Vec<u8>, EntropyError> {
    if raw_len == 0 {
        return Err(EntropyError::Malformed("rANS stream with empty payload"));
    }
    let nsyms = get_varint(data, &mut pos)? as usize;
    if nsyms == 0 || nsyms > 256 {
        return Err(EntropyError::Malformed("frequency table size out of range"));
    }
    let mut freqs = [0u32; 256];
    let mut total: u32 = 0;
    for _ in 0..nsyms {
        let &sym = data.get(pos).ok_or(EntropyError::Truncated)?;
        pos += 1;
        let f = get_varint(data, &mut pos)?;
        if f == 0 || f > SCALE as u64 {
            return Err(EntropyError::Malformed("frequency out of range"));
        }
        if freqs[sym as usize] != 0 {
            return Err(EntropyError::Malformed("duplicate frequency entry"));
        }
        freqs[sym as usize] = f as u32;
        total = total
            .checked_add(f as u32)
            .ok_or(EntropyError::Malformed("frequency overflow"))?;
    }
    if total != SCALE {
        return Err(EntropyError::Malformed("frequencies do not sum to scale"));
    }
    // One packed entry per slot — symbol (8 bits), freq - 1 (12 bits, a
    // frequency is 1..=SCALE), cumulative start (12 bits) — so the hot loop
    // makes a single table load per symbol.
    let mut table = vec![0u32; SCALE as usize];
    let mut cum = 0u32;
    for (s, &f) in freqs.iter().enumerate() {
        if f == 0 {
            continue;
        }
        let entry = s as u32 | (f - 1) << 8 | cum << 20;
        for slot in cum..cum + f {
            table[slot as usize] = entry;
        }
        cum += f;
    }

    let state_bytes = data.get(pos..pos + 4).ok_or(EntropyError::Truncated)?;
    pos += 4;
    // The encoder's final little-endian state was byte-reversed with the
    // rest of the stream.
    let mut state = u32::from_le_bytes([
        state_bytes[3],
        state_bytes[2],
        state_bytes[1],
        state_bytes[0],
    ]);
    if state < RANS_L {
        return Err(EntropyError::Malformed("initial state below range"));
    }

    let mut out = Vec::with_capacity(raw_len);
    for _ in 0..raw_len {
        let slot = state & (SCALE - 1);
        let entry = table[slot as usize];
        let f = (entry >> 8 & 0xFFF) + 1;
        state = f * (state >> SCALE_BITS) + slot - (entry >> 20);
        while state < RANS_L {
            let &byte = data.get(pos).ok_or(EntropyError::Truncated)?;
            pos += 1;
            state = (state << 8) | byte as u32;
        }
        out.push(entry as u8);
    }
    if state != RANS_L {
        return Err(EntropyError::Malformed("final state mismatch"));
    }
    if pos != data.len() {
        return Err(EntropyError::Malformed("trailing bytes after rANS payload"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        let back = decompress(&packed, data.len()).expect("decompress");
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrips_structured_payloads() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(&[0u8; 10_000]);
        roundtrip(&vec![7u8; 4096]);
        roundtrip(&(0..=255u8).collect::<Vec<_>>());
        let skewed: Vec<u8> = (0..20_000)
            .map(|i| if i % 17 == 0 { 3 } else { 0 })
            .collect();
        roundtrip(&skewed);
        let texture: Vec<u8> = (0..10_000u32)
            .map(|i| ((i * 31 + i / 97) % 11) as u8)
            .collect();
        roundtrip(&texture);
    }

    #[test]
    fn skewed_data_actually_compresses() {
        let data: Vec<u8> = (0..50_000)
            .map(|i| if i % 13 == 0 { 9 } else { 0 })
            .collect();
        let packed = compress(&data);
        assert!(
            (packed.len() as f64) < data.len() as f64 / 4.0,
            "near-constant data must compress well: {} -> {}",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn incompressible_data_bounded_by_raw_fallback() {
        // A pseudo-random byte soup; rANS cannot win, raw mode caps growth.
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let packed = compress(&data);
        assert!(packed.len() <= data.len() + 16, "expansion must be bounded");
        assert_eq!(decompress(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let data: Vec<u8> = (0..5000).map(|i| (i % 7) as u8).collect();
        let packed = compress(&data);
        for cut in 0..packed.len() {
            let r = decompress(&packed[..cut], data.len());
            assert!(r.is_err(), "cut at {cut} must fail, got {r:?}");
        }
    }

    #[test]
    fn bit_flips_are_typed_errors_never_wrong_bytes() {
        let data: Vec<u8> = (0..3000).map(|i| ((i * 3) % 11) as u8).collect();
        let packed = compress(&data);
        for byte in 0..packed.len() {
            for bit in [0, 3, 7] {
                let mut bad = packed.clone();
                bad[byte] ^= 1 << bit;
                // A typed error is acceptable; a silent wrong decode is not.
                if let Ok(out) = decompress(&bad, data.len()) {
                    assert_eq!(
                        out, data,
                        "flip {byte}.{bit} decoded successfully, bytes must match"
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_declaration_rejected_before_allocation() {
        let packed = compress(&[1, 2, 3]);
        assert!(matches!(
            decompress(&packed, 2),
            Err(EntropyError::Oversized {
                declared: 3,
                limit: 2
            })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_roundtrip_bit_identical(data in proptest::collection::vec(0u8..=255u8, 0..4096)) {
            let packed = compress(&data);
            let back = decompress(&packed, data.len());
            prop_assert_eq!(back.as_deref().ok(), Some(&data[..]));
        }

        #[test]
        fn prop_truncated_streams_are_typed_errors(
            data in proptest::collection::vec(0u8..=255u8, 1..1024),
            cut_seed in 0u16..=u16::MAX,
        ) {
            let packed = compress(&data);
            let cut = cut_seed as usize % packed.len();
            // Never panics; a short stream may only fail with a typed error.
            let _ = decompress(&packed[..cut], data.len());
        }

        #[test]
        fn prop_corrupt_streams_never_panic_or_lie(
            data in proptest::collection::vec(0u8..=255u8, 1..1024),
            byte_seed in any::<u32>(),
            bit in 0u8..8,
        ) {
            let packed = compress(&data);
            let mut bad = packed.clone();
            let byte = byte_seed as usize % bad.len();
            bad[byte] ^= 1 << bit;
            if let Ok(out) = decompress(&bad, data.len()) {
                // The checksum let it through: the bytes must be right.
                prop_assert_eq!(out, data);
            }
        }

        #[test]
        fn prop_arbitrary_bytes_as_stream_never_panic(
            junk in proptest::collection::vec(0u8..=255u8, 0..512),
        ) {
            let _ = decompress(&junk, 1 << 16);
        }
    }
}
