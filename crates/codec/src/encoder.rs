//! The tile encoder.
//!
//! Each tile of a video is encoded as an independent bitstream by a
//! [`TileEncoder`]: intra prediction, motion estimation, and the in-loop
//! deblocking filter are all confined to the tile rectangle, so any tile can
//! later be decoded without touching its neighbours. This is the property
//! TASM exploits for spatial random access (§2 of the paper).
//!
//! Frames are grouped into GOPs: the first frame of each GOP is a keyframe
//! (all-intra), subsequent frames are P-frames predicted from the previous
//! reconstruction. Keyframes compress several times worse than P-frames,
//! which is what makes short GOPs (and therefore short tile-layout
//! durations) expensive in storage — the trade-off of Figure 9.

use crate::bitstream::BitWriter;
use crate::blockops::{dc_predict, load_block, sad, store_block, ZIGZAG};
use crate::dct::{forward, inverse, BLOCK, BLOCK_AREA};
use crate::deblock::deblock_frame;
use crate::quant::{dequantize_block, qstep, quantize_block};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use tasm_video::{Frame, Plane, Rect};

/// Block coding modes for P-frames. Keyframe blocks are implicitly `Intra`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Copy the co-located block from the previous reconstruction.
    Skip = 0,
    /// Motion-compensated prediction plus optional residual.
    Inter = 1,
    /// DC intra prediction plus residual (fallback for new content).
    Intra = 2,
}

/// Rate-control mode.
///
/// Constant-QP holds quality fixed and lets the stream size float (the mode
/// most experiments use, since TASM's storage trade-offs are easiest to see
/// at fixed quality). Target-rate mode emulates a hardware encoder's leaky
/// bucket: the per-frame QP adapts so the stream hits a bits-per-sample
/// budget — under a shared budget, layouts that compress worse (many tile
/// boundaries severing prediction) are forced to coarser quantization and
/// lose PSNR, the Figure 6(b) mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RateControl {
    /// Fixed QP for every frame.
    ConstantQp,
    /// Leaky-bucket rate control toward a target compressed size of
    /// `millibits_per_sample / 1000` bits per source sample.
    TargetRate {
        /// Thousandths of a bit per source sample (e.g. 300 = 0.3 bpp).
        millibits_per_sample: u32,
    },
}

/// Which codec [`crate::encode_video`] uses for each tile.
///
/// `Auto` runs a cheap size trial per tile — encode with both codecs and
/// keep the smaller stream — so flat or low-texture tiles (where the
/// lossless predictor + rANS coder wins) are stored losslessly while busy
/// tiles keep the lossy DCT path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CodecChoice {
    /// Always the lossy DCT codec (the pre-codec-id behaviour).
    #[default]
    Dct,
    /// Always the lossless prediction + rANS entropy codec.
    Pred,
    /// Per-tile size trial: whichever codec produces fewer bytes.
    Auto,
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderConfig {
    /// Frames per group of pictures. The first frame of every GOP is a
    /// keyframe. Paper default: one second of video.
    pub gop_len: u32,
    /// Quantization parameter (0–51). Higher = smaller + lower quality.
    /// Under [`RateControl::TargetRate`] this is the starting QP.
    pub qp: u8,
    /// Motion search range in pixels (luma). 0 restricts inter prediction to
    /// the zero vector.
    pub search_range: u8,
    /// Whether to run the in-loop deblocking filter.
    pub deblock: bool,
    /// Rate-control mode.
    pub rate: RateControl,
    /// Per-tile codec selection (defaults to DCT-only, the historical
    /// behaviour; absent in older serialized configs).
    pub codec: CodecChoice,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            gop_len: 30,
            qp: 28,
            search_range: 7,
            deblock: true,
            rate: RateControl::ConstantQp,
            codec: CodecChoice::Dct,
        }
    }
}

// Hand-written serde impls: `codec` must default when absent so manifests
// written before the codec-id field existed still deserialize.
impl Serialize for EncoderConfig {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let obj: Vec<(String, serde::Value)> = vec![
            ("gop_len".to_string(), serde::to_value(&self.gop_len)?),
            ("qp".to_string(), serde::to_value(&self.qp)?),
            (
                "search_range".to_string(),
                serde::to_value(&self.search_range)?,
            ),
            ("deblock".to_string(), serde::to_value(&self.deblock)?),
            ("rate".to_string(), serde::to_value(&self.rate)?),
            ("codec".to_string(), serde::to_value(&self.codec)?),
        ];
        serializer.serialize_value(serde::Value::Object(obj))
    }
}

impl<'de> Deserialize<'de> for EncoderConfig {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let obj = match deserializer.take_value()? {
            serde::Value::Object(o) => o,
            other => {
                return Err(D::Error::from(serde::Error::msg(format!(
                    "expected object for EncoderConfig, got {other:?}"
                ))))
            }
        };
        Ok(EncoderConfig {
            gop_len: serde::from_value(serde::get_field(&obj, "gop_len")?)?,
            qp: serde::from_value(serde::get_field(&obj, "qp")?)?,
            search_range: serde::from_value(serde::get_field(&obj, "search_range")?)?,
            deblock: serde::from_value(serde::get_field(&obj, "deblock")?)?,
            rate: serde::from_value(serde::get_field(&obj, "rate")?)?,
            codec: match serde::get_field(&obj, "codec") {
                Ok(v) => serde::from_value(v)?,
                Err(_) => CodecChoice::default(),
            },
        })
    }
}

impl EncoderConfig {
    /// Per-block SAD threshold under which a P-block is coded as SKIP.
    /// Scales with the quantizer: coarser quantization tolerates more
    /// mismatch before a residual is worth coding.
    pub(crate) fn skip_threshold(&self) -> u32 {
        let q = qstep(self.qp) as u32;
        (BLOCK_AREA as u32) * (q / 4).max(2)
    }
}

/// One encoded frame of one tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFrame {
    /// True if this frame is a keyframe (starts a GOP).
    pub is_key: bool,
    /// QP this frame was coded with (varies under rate control).
    pub qp: u8,
    /// Entropy-coded payload.
    pub data: Bytes,
}

/// Streaming encoder for a single tile of a video.
///
/// Feed source frames in display order with [`TileEncoder::encode_next`];
/// the encoder extracts its tile rectangle from each frame and maintains the
/// reconstruction state needed for inter prediction.
pub struct TileEncoder {
    cfg: EncoderConfig,
    rect: Rect,
    /// QP of the next frame (adapted under rate control).
    current_qp: u8,
    qstep: i32,
    /// Leaky-bucket fullness in bits (rate control state).
    bucket: i64,
    /// Previous reconstructed tile (reference for P-frames).
    recon_prev: Option<Frame>,
    frame_idx: u32,
}

impl TileEncoder {
    /// Creates an encoder for the tile at `rect` (luma coordinates) of a
    /// video. The rectangle must be aligned to [`crate::grid::TILE_ALIGN`].
    ///
    /// # Panics
    /// Panics if the rectangle is empty or misaligned.
    pub fn new(cfg: EncoderConfig, rect: Rect) -> Self {
        assert!(!rect.is_empty(), "tile rectangle must be non-empty");
        assert!(
            rect.x.is_multiple_of(crate::grid::TILE_ALIGN)
                && rect.y.is_multiple_of(crate::grid::TILE_ALIGN)
                && rect.w.is_multiple_of(crate::grid::TILE_ALIGN)
                && rect.h.is_multiple_of(crate::grid::TILE_ALIGN),
            "tile rectangle {rect:?} must be {}-aligned",
            crate::grid::TILE_ALIGN
        );
        assert!(cfg.gop_len > 0, "GOP length must be positive");
        TileEncoder {
            current_qp: cfg.qp,
            qstep: qstep(cfg.qp),
            bucket: 0,
            cfg,
            rect,
            recon_prev: None,
            frame_idx: 0,
        }
    }

    /// The tile rectangle this encoder covers.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Number of frames encoded so far.
    pub fn frames_encoded(&self) -> u32 {
        self.frame_idx
    }

    /// Encodes the tile region of the next source frame.
    ///
    /// # Panics
    /// Panics if the frame does not contain the tile rectangle.
    pub fn encode_next(&mut self, src: &Frame) -> EncodedFrame {
        assert!(
            src.rect().contains(&self.rect),
            "source frame {}x{} does not contain tile {:?}",
            src.width(),
            src.height(),
            self.rect
        );
        let is_key = self.frame_idx.is_multiple_of(self.cfg.gop_len) || self.recon_prev.is_none();
        let mut recon = Frame::black(self.rect.w, self.rect.h);
        let mut writer = BitWriter::new();

        for plane in Plane::ALL {
            self.encode_plane(&mut writer, src, plane, &mut recon, is_key);
        }

        if self.cfg.deblock {
            deblock_frame(&mut recon, self.qstep);
        }
        self.recon_prev = Some(recon);
        self.frame_idx += 1;
        let frame_qp = self.current_qp;
        let data = writer.finish();
        self.update_rate_control(data.len() as i64 * 8, is_key);
        EncodedFrame {
            is_key,
            qp: frame_qp,
            data,
        }
    }

    /// Leaky-bucket rate control: after each frame, compare produced bits
    /// against the budget and nudge the next frame's QP. Keyframes get a 4×
    /// allowance (intra frames are inherently larger).
    fn update_rate_control(&mut self, bits: i64, was_key: bool) {
        let RateControl::TargetRate {
            millibits_per_sample,
        } = self.cfg.rate
        else {
            return;
        };
        let samples = (self.rect.w as i64 * self.rect.h as i64) * 3 / 2;
        let target = (samples * millibits_per_sample as i64 / 1000).max(64);
        let allowance = if was_key { target * 4 } else { target };
        self.bucket += bits - allowance;
        // Leak slowly toward zero so a single large keyframe does not keep
        // the quantizer coarse for the entire GOP.
        self.bucket -= self.bucket / 8;
        let step = if self.bucket > 4 * target {
            2
        } else if self.bucket > target {
            1
        } else if self.bucket < -4 * target {
            -2
        } else if self.bucket < -target {
            -1
        } else {
            0
        };
        let new_qp = (self.current_qp as i32 + step).clamp(8, 48) as u8;
        if new_qp != self.current_qp {
            self.current_qp = new_qp;
            self.qstep = qstep(new_qp);
        }
    }

    fn encode_plane(
        &self,
        w: &mut BitWriter,
        src: &Frame,
        plane: Plane,
        recon: &mut Frame,
        is_key: bool,
    ) {
        let shift = plane.subsample_shift();
        let src_stride = src.plane_width(plane) as usize;
        let off_x = (self.rect.x >> shift) as usize;
        let off_y = (self.rect.y >> shift) as usize;
        let pw = (self.rect.w >> shift) as usize;
        let ph = (self.rect.h >> shift) as usize;
        let src_plane = src.plane(plane);
        let prev_plane = self.recon_prev.as_ref().map(|f| f.plane(plane));
        // Motion search only on luma: chroma inter uses the zero vector,
        // which keeps the search cheap while chroma residuals stay codable.
        let range = if plane == Plane::Y {
            self.cfg.search_range as i32
        } else {
            0
        };
        let skip_thresh = self.skip_threshold_for(plane);

        let recon_stride = pw;
        let mut by = 0;
        while by < ph {
            let mut bx = 0;
            while bx < pw {
                self.encode_block(BlockCtx {
                    w,
                    src_plane,
                    src_stride,
                    src_x: off_x + bx,
                    src_y: off_y + by,
                    prev_plane,
                    recon_plane: recon.plane_mut(plane),
                    recon_stride,
                    x: bx,
                    y: by,
                    pw,
                    ph,
                    is_key,
                    range,
                    skip_thresh,
                });
                bx += BLOCK;
            }
            by += BLOCK;
        }
    }

    fn skip_threshold_for(&self, plane: Plane) -> u32 {
        // Chroma is smoother; a slightly tighter threshold avoids colour
        // smearing on moving objects.
        match plane {
            Plane::Y => self.cfg.skip_threshold(),
            Plane::U | Plane::V => self.cfg.skip_threshold() / 2,
        }
    }

    fn encode_block(&self, ctx: BlockCtx<'_, '_>) {
        let BlockCtx {
            w,
            src_plane,
            src_stride,
            src_x,
            src_y,
            prev_plane,
            recon_plane,
            recon_stride,
            x,
            y,
            pw,
            ph,
            is_key,
            range,
            skip_thresh,
        } = ctx;

        if is_key {
            // Keyframe: always intra; no mode symbol.
            let pred = dc_predict(recon_plane, recon_stride, x, y);
            let cur = load_block(src_plane, src_stride, src_x, src_y);
            self.code_residual_and_reconstruct(w, &cur, pred, recon_plane, recon_stride, x, y);
            return;
        }

        let prev = prev_plane.expect("P-frame requires a previous reconstruction");

        // 1. SKIP probe at the zero vector.
        let sad0 = sad(
            src_plane,
            src_stride,
            src_x,
            src_y,
            prev,
            recon_stride,
            x,
            y,
        );
        if sad0 <= skip_thresh {
            w.put_ue(Mode::Skip as u32);
            crate::blockops::copy_block(recon_plane, recon_stride, x, y, prev, recon_stride, x, y);
            return;
        }

        // 2. Motion search (clamped inside the tile).
        let (mv, best_sad) = if range > 0 {
            three_step_search(
                src_plane,
                src_stride,
                src_x,
                src_y,
                prev,
                recon_stride,
                x,
                y,
                pw,
                ph,
                range,
            )
        } else {
            ((0, 0), sad0)
        };

        // 3. Intra alternative.
        let pred_dc = dc_predict(recon_plane, recon_stride, x, y);
        let cur = load_block(src_plane, src_stride, src_x, src_y);
        let intra_sad: u32 = cur.iter().map(|&v| (v - pred_dc).unsigned_abs()).sum();

        // Bias inter slightly because motion vectors cost bits.
        let mv_bits_bias = 32;
        if best_sad + mv_bits_bias <= intra_sad {
            w.put_ue(Mode::Inter as u32);
            w.put_se(mv.0);
            w.put_se(mv.1);
            let rx = (x as i32 + mv.0) as usize;
            let ry = (y as i32 + mv.1) as usize;
            let mut residual = [0i32; BLOCK_AREA];
            for row in 0..BLOCK {
                for col in 0..BLOCK {
                    let s = cur[row * BLOCK + col];
                    let p = prev[(ry + row) * recon_stride + rx + col] as i32;
                    residual[row * BLOCK + col] = s - p;
                }
            }
            let recon_vals = self.code_coefficients(w, &residual, |i| {
                prev[(ry + i / BLOCK) * recon_stride + rx + i % BLOCK] as i32
            });
            store_block(recon_plane, recon_stride, x, y, &recon_vals);
        } else {
            w.put_ue(Mode::Intra as u32);
            self.code_residual_and_reconstruct(w, &cur, pred_dc, recon_plane, recon_stride, x, y);
        }
    }

    /// Intra path: subtract the DC prediction, transform-code the residual,
    /// and write the reconstruction into `recon`.
    #[allow(clippy::too_many_arguments)]
    fn code_residual_and_reconstruct(
        &self,
        w: &mut BitWriter,
        cur: &[i32; BLOCK_AREA],
        pred: i32,
        recon: &mut [u8],
        stride: usize,
        x: usize,
        y: usize,
    ) {
        let mut residual = [0i32; BLOCK_AREA];
        for i in 0..BLOCK_AREA {
            residual[i] = cur[i] - pred;
        }
        let recon_vals = self.code_coefficients(w, &residual, |_| pred);
        store_block(recon, stride, x, y, &recon_vals);
    }

    /// Transforms, quantizes, entropy-codes a residual block, and returns the
    /// reconstructed sample values (prediction + dequantized residual) so the
    /// encoder's reference matches the decoder's bit-exactly.
    fn code_coefficients(
        &self,
        w: &mut BitWriter,
        residual: &[i32; BLOCK_AREA],
        pred_at: impl Fn(usize) -> i32,
    ) -> [i32; BLOCK_AREA] {
        let mut coefs = forward(residual);
        let nnz = quantize_block(&mut coefs, self.qstep);
        if nnz == 0 {
            w.put_bit(false); // coded-block flag
            let mut out = [0i32; BLOCK_AREA];
            for (i, o) in out.iter_mut().enumerate() {
                *o = pred_at(i);
            }
            return out;
        }
        w.put_bit(true);
        w.put_ue(nnz as u32 - 1);
        let mut run = 0u32;
        for &zz in ZIGZAG.iter() {
            let level = coefs[zz];
            if level == 0 {
                run += 1;
            } else {
                w.put_ue(run);
                w.put_se(level);
                run = 0;
            }
        }
        // Reconstruct exactly as the decoder will.
        dequantize_block(&mut coefs, self.qstep);
        let res = inverse(&coefs);
        let mut out = [0i32; BLOCK_AREA];
        for (i, o) in out.iter_mut().enumerate() {
            *o = pred_at(i) + res[i];
        }
        out
    }
}

/// Per-block encoding context (bundles the many plane-local parameters).
struct BlockCtx<'a, 'b> {
    w: &'a mut BitWriter,
    src_plane: &'b [u8],
    src_stride: usize,
    src_x: usize,
    src_y: usize,
    prev_plane: Option<&'b [u8]>,
    recon_plane: &'b mut [u8],
    recon_stride: usize,
    x: usize,
    y: usize,
    pw: usize,
    ph: usize,
    is_key: bool,
    range: i32,
    skip_thresh: u32,
}

/// Three-step logarithmic motion search around the zero vector, with every
/// candidate clamped so the reference block stays inside the tile plane.
#[allow(clippy::too_many_arguments)]
fn three_step_search(
    src: &[u8],
    src_stride: usize,
    sx: usize,
    sy: usize,
    prev: &[u8],
    prev_stride: usize,
    x: usize,
    y: usize,
    pw: usize,
    ph: usize,
    range: i32,
) -> ((i32, i32), u32) {
    let eval = |mvx: i32, mvy: i32| -> Option<u32> {
        let rx = x as i32 + mvx;
        let ry = y as i32 + mvy;
        if rx < 0 || ry < 0 || rx + BLOCK as i32 > pw as i32 || ry + BLOCK as i32 > ph as i32 {
            return None;
        }
        Some(sad(
            src,
            src_stride,
            sx,
            sy,
            prev,
            prev_stride,
            rx as usize,
            ry as usize,
        ))
    };

    let mut best_mv = (0i32, 0i32);
    let mut best = eval(0, 0).expect("zero vector is always valid");
    let mut step = ((range as u32).next_power_of_two() / 2).max(1) as i32;
    while step >= 1 {
        let center = best_mv;
        for dy in [-step, 0, step] {
            for dx in [-step, 0, step] {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let mv = (center.0 + dx, center.1 + dy);
                if mv.0.abs() > range || mv.1.abs() > range {
                    continue;
                }
                if let Some(s) = eval(mv.0, mv.1) {
                    if s < best {
                        best = s;
                        best_mv = mv;
                    }
                }
            }
        }
        step /= 2;
    }
    (best_mv, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_frame_is_keyframe() {
        let mut enc = TileEncoder::new(EncoderConfig::default(), Rect::new(0, 0, 32, 32));
        let f = Frame::filled(32, 32, 120, 128, 128);
        let e0 = enc.encode_next(&f);
        assert!(e0.is_key);
        let e1 = enc.encode_next(&f);
        assert!(!e1.is_key);
        assert_eq!(enc.frames_encoded(), 2);
    }

    #[test]
    fn gop_boundaries_are_keyframes() {
        let cfg = EncoderConfig {
            gop_len: 3,
            ..Default::default()
        };
        let mut enc = TileEncoder::new(cfg, Rect::new(0, 0, 32, 32));
        let f = Frame::filled(32, 32, 120, 128, 128);
        let keys: Vec<bool> = (0..7).map(|_| enc.encode_next(&f).is_key).collect();
        assert_eq!(keys, vec![true, false, false, true, false, false, true]);
    }

    #[test]
    fn static_p_frames_are_tiny() {
        let mut enc = TileEncoder::new(EncoderConfig::default(), Rect::new(0, 0, 64, 64));
        // Textured content: the keyframe must code every block, while the
        // static P-frame collapses to all-SKIP.
        let mut f = Frame::filled(64, 64, 120, 100, 150);
        for y in 0..64 {
            for x in 0..64 {
                f.set_sample(Plane::Y, x, y, ((x * 7 + y * 13) % 220 + 10) as u8);
            }
        }
        let key = enc.encode_next(&f);
        let p = enc.encode_next(&f);
        assert!(
            p.data.len() * 4 < key.data.len(),
            "static P-frame ({}) should be much smaller than keyframe ({})",
            p.data.len(),
            key.data.len()
        );
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_tile_rejected() {
        let _ = TileEncoder::new(EncoderConfig::default(), Rect::new(8, 0, 32, 32));
    }

    #[test]
    #[should_panic(expected = "does not contain tile")]
    fn frame_must_contain_tile() {
        let mut enc = TileEncoder::new(EncoderConfig::default(), Rect::new(32, 0, 32, 32));
        let f = Frame::filled(32, 32, 120, 128, 128);
        let _ = enc.encode_next(&f);
    }

    #[test]
    fn three_step_search_finds_shift() {
        // Previous frame: bright square at (16,16). Current: same square at
        // (20,18). The search from the co-located block should find ~(-4,-2)
        // when encoding the block at (20,18)... we test the primitive
        // directly: block at (16,16) in prev equals block at (20,18) in src.
        let mut prev = vec![0u8; 64 * 64];
        let mut src = vec![0u8; 64 * 64];
        for r in 0..8 {
            for c in 0..8 {
                prev[(16 + r) * 64 + 16 + c] = 200;
                src[(18 + r) * 64 + 20 + c] = 200;
            }
        }
        let ((mvx, mvy), sad) = three_step_search(&src, 64, 20, 18, &prev, 64, 20, 18, 64, 64, 7);
        assert_eq!((mvx, mvy), (-4, -2));
        assert_eq!(sad, 0);
    }

    fn textured(i: u32) -> Frame {
        let mut f = Frame::filled(64, 64, 100, 120, 140);
        for y in 0..64 {
            for x in 0..64 {
                f.set_sample(Plane::Y, x, y, ((x * 7 + y * 13 + i * 5) % 200 + 20) as u8);
            }
        }
        f
    }

    #[test]
    fn rate_control_raises_qp_under_tight_budget() {
        let cfg = EncoderConfig {
            gop_len: 4,
            qp: 20,
            rate: RateControl::TargetRate {
                millibits_per_sample: 50,
            }, // 0.05 bpp: very tight
            ..Default::default()
        };
        let mut enc = TileEncoder::new(cfg, Rect::new(0, 0, 64, 64));
        let frames: Vec<EncodedFrame> = (0..16).map(|i| enc.encode_next(&textured(i))).collect();
        assert_eq!(frames[0].qp, 20, "first frame uses the starting QP");
        let last_qp = frames.last().unwrap().qp;
        assert!(
            last_qp > 20,
            "noisy content at 0.05 bpp must push QP up (got {last_qp})"
        );
    }

    #[test]
    fn rate_control_hits_smaller_size_than_constant_qp() {
        let run = |rate: RateControl| -> u64 {
            let cfg = EncoderConfig {
                gop_len: 8,
                qp: 20,
                rate,
                ..Default::default()
            };
            let mut enc = TileEncoder::new(cfg, Rect::new(0, 0, 64, 64));
            (0..24)
                .map(|i| enc.encode_next(&textured(i)).data.len() as u64)
                .sum()
        };
        let cqp = run(RateControl::ConstantQp);
        let rc = run(RateControl::TargetRate {
            millibits_per_sample: 100,
        });
        assert!(
            rc < cqp,
            "0.1 bpp target ({rc} B) should undercut constant QP 20 ({cqp} B)"
        );
    }

    #[test]
    fn rate_controlled_stream_decodes_correctly() {
        use crate::decoder::TileDecoder;
        let cfg = EncoderConfig {
            gop_len: 4,
            qp: 24,
            rate: RateControl::TargetRate {
                millibits_per_sample: 200,
            },
            ..Default::default()
        };
        let mut enc = TileEncoder::new(cfg, Rect::new(0, 0, 64, 64));
        let mut dec = TileDecoder::new(64, 64, cfg.qp, cfg.deblock);
        for i in 0..12 {
            let src = textured(i);
            let chunk = enc.encode_next(&src);
            let out = dec
                .decode_next_qp(&chunk.data, chunk.is_key, chunk.qp)
                .unwrap();
            let r = tasm_video::psnr_frames(&src, &out);
            assert!(r.y > 20.0, "frame {i} PSNR {:.1} (qp {})", r.y, chunk.qp);
        }
    }

    #[test]
    fn search_never_leaves_tile() {
        // Block at the tile corner: all negative vectors are invalid.
        let src = vec![50u8; 32 * 32];
        let prev = vec![60u8; 32 * 32];
        let ((mvx, mvy), _) = three_step_search(&src, 32, 0, 0, &prev, 32, 0, 0, 32, 32, 7);
        assert!(mvx >= 0 && mvy >= 0);
    }
}
