//! Tile-aware video codec substrate for the TASM reproduction.
//!
//! The paper's prototype delegates encoding to NVENC/NVDEC HEVC; this crate
//! implements the codec features TASM depends on from scratch, in Rust:
//!
//! * **GOP structure** — frames are grouped into GOPs; each begins with an
//!   intra-coded keyframe (temporal random access, expensive to store) and
//!   continues with motion-compensated P-frames.
//! * **Tiles** — a frame can be partitioned along a regular grid
//!   ([`TileLayout`]); every tile is an *independently decodable* bitstream
//!   because intra prediction, motion vectors, and the in-loop deblocking
//!   filter are confined to the tile rectangle (spatial random access).
//! * **Homomorphic stitching** — encoded tiles are recombined into a
//!   full-frame stream without re-encoding ([`StitchedVideo`]).
//! * **Exact work accounting** — decoders report pixels, tiles, bytes, and
//!   blocks processed ([`DecodeStats`]), the quantities TASM's cost model
//!   `C = β·P + γ·T` is built on.
//!
//! The pipeline is a classic block codec: 8×8 integer DCT, scalar
//! quantization (QP with the HEVC step-doubling rule), DC intra prediction,
//! three-step motion search, zigzag run-level coding with exp-Golomb codes,
//! and an H.264-style weak deblocking filter.

pub mod bitstream;
pub mod blockops;
pub mod container;
pub mod dct;
pub mod deblock;
pub mod decoder;
pub mod encode;
pub mod encoder;
pub mod entropy;
pub mod grid;
pub mod pred;
pub mod quant;
pub mod stats;
pub mod stitch;

pub use container::{ContainerError, ContainerHeader, TileCodec, TileVideo};
pub use decoder::{DecodeError, TileDecoder};
pub use encode::encode_video;
pub use encoder::{CodecChoice, EncodedFrame, EncoderConfig, RateControl, TileEncoder};
pub use entropy::EntropyError;
pub use grid::{LayoutError, TileLayout, TILE_ALIGN};
pub use pred::PredError;
pub use stats::{DecodeStats, EncodeStats};
pub use stitch::{StitchError, StitchedVideo};
