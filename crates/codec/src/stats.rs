//! Decode-work accounting.
//!
//! TASM's cost model (§4.1 of the paper) is `C = β·P + γ·T`, where `P` is the
//! number of pixels decoded and `T` the number of tiles decoded. Decoders in
//! this crate report both exactly, along with bytes and blocks, so the cost
//! model can be fit and validated against real measurements rather than
//! assumed.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};
use std::time::Duration;

/// Exact accounting of work performed by a decode operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DecodeStats {
    /// Number of frame-sized units reconstructed (per tile, per frame).
    pub frames_decoded: u64,
    /// Total samples reconstructed across all planes (the paper's `P`,
    /// counting luma + chroma).
    pub samples_decoded: u64,
    /// Tile-chunk decode units processed (the paper's `T`): one per tile per
    /// frame, capturing per-tile bitstream/context overhead.
    pub tile_chunks_decoded: u64,
    /// Compressed bytes consumed.
    pub bytes_read: u64,
    /// 8×8 blocks reconstructed.
    pub blocks_decoded: u64,
    /// Wall-clock time spent decoding (zero if not measured).
    #[serde(with = "duration_micros")]
    pub decode_time: Duration,
}

impl DecodeStats {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decode time in seconds as a float (for model fitting).
    pub fn seconds(&self) -> f64 {
        self.decode_time.as_secs_f64()
    }
}

impl Add for DecodeStats {
    type Output = DecodeStats;

    fn add(self, rhs: DecodeStats) -> DecodeStats {
        DecodeStats {
            frames_decoded: self.frames_decoded + rhs.frames_decoded,
            samples_decoded: self.samples_decoded + rhs.samples_decoded,
            tile_chunks_decoded: self.tile_chunks_decoded + rhs.tile_chunks_decoded,
            bytes_read: self.bytes_read + rhs.bytes_read,
            blocks_decoded: self.blocks_decoded + rhs.blocks_decoded,
            decode_time: self.decode_time + rhs.decode_time,
        }
    }
}

impl AddAssign for DecodeStats {
    fn add_assign(&mut self, rhs: DecodeStats) {
        *self = *self + rhs;
    }
}

/// Accounting of work performed by an encode operation. Re-encoding a
/// sequence of tiles is the `R(s, L)` cost in the paper's incremental tiling
/// policy (§4.4): re-tiling only pays off once accumulated regret exceeds it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EncodeStats {
    /// Tile-frames encoded (frames × tiles).
    pub frames_encoded: u64,
    /// Source samples consumed across all planes.
    pub samples_encoded: u64,
    /// Compressed bytes produced, container headers included.
    pub bytes_produced: u64,
    /// Wall-clock encode time.
    #[serde(with = "duration_micros")]
    pub encode_time: Duration,
}

impl EncodeStats {
    /// Encode time in seconds as a float (for model fitting).
    pub fn seconds(&self) -> f64 {
        self.encode_time.as_secs_f64()
    }
}

impl Add for EncodeStats {
    type Output = EncodeStats;

    fn add(self, rhs: EncodeStats) -> EncodeStats {
        EncodeStats {
            frames_encoded: self.frames_encoded + rhs.frames_encoded,
            samples_encoded: self.samples_encoded + rhs.samples_encoded,
            bytes_produced: self.bytes_produced + rhs.bytes_produced,
            encode_time: self.encode_time + rhs.encode_time,
        }
    }
}

impl AddAssign for EncodeStats {
    fn add_assign(&mut self, rhs: EncodeStats) {
        *self = *self + rhs;
    }
}

/// Serialize `Duration` as integer microseconds so stats files stay compact
/// and language-agnostic.
mod duration_micros {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        (d.as_micros() as u64).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        Ok(Duration::from_micros(u64::deserialize(d)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_all_fields() {
        let a = DecodeStats {
            frames_decoded: 1,
            samples_decoded: 100,
            tile_chunks_decoded: 2,
            bytes_read: 50,
            blocks_decoded: 4,
            decode_time: Duration::from_millis(3),
        };
        let b = DecodeStats {
            frames_decoded: 2,
            samples_decoded: 200,
            tile_chunks_decoded: 3,
            bytes_read: 60,
            blocks_decoded: 8,
            decode_time: Duration::from_millis(7),
        };
        let c = a + b;
        assert_eq!(c.frames_decoded, 3);
        assert_eq!(c.samples_decoded, 300);
        assert_eq!(c.tile_chunks_decoded, 5);
        assert_eq!(c.bytes_read, 110);
        assert_eq!(c.blocks_decoded, 12);
        assert_eq!(c.decode_time, Duration::from_millis(10));

        let mut acc = DecodeStats::new();
        acc += a;
        acc += b;
        assert_eq!(acc, c);
    }

    #[test]
    fn serde_roundtrip_preserves_duration() {
        let s = DecodeStats {
            decode_time: Duration::from_micros(12345),
            ..DecodeStats::new()
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: DecodeStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.decode_time, Duration::from_micros(12345));
    }
}
