//! The tile decoder, mirroring [`crate::encoder`] bit-exactly.

use crate::bitstream::{BitReader, BitstreamError};
use crate::blockops::{copy_block, dc_predict, store_block, ZIGZAG};
use crate::dct::{inverse, BLOCK, BLOCK_AREA};
use crate::deblock::deblock_frame;
use crate::quant::{dequantize_block, qstep};
use tasm_video::{Frame, Plane};

/// Errors surfaced while decoding a tile bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The entropy layer failed (truncated or corrupt stream).
    Bitstream(BitstreamError),
    /// A syntax element held an impossible value.
    InvalidSyntax(&'static str),
    /// A P-frame arrived before any keyframe.
    MissingReference,
    /// The lossless (predict + entropy-code) codec path failed.
    Lossless(String),
}

impl From<BitstreamError> for DecodeError {
    fn from(e: BitstreamError) -> Self {
        DecodeError::Bitstream(e)
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Bitstream(e) => write!(f, "bitstream error: {e}"),
            DecodeError::InvalidSyntax(what) => write!(f, "invalid syntax: {what}"),
            DecodeError::MissingReference => {
                write!(f, "P-frame encountered with no prior keyframe")
            }
            DecodeError::Lossless(what) => write!(f, "lossless codec error: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Streaming decoder for one tile's bitstream.
pub struct TileDecoder {
    width: u32,
    height: u32,
    default_qp: u8,
    deblock: bool,
    recon_prev: Option<Frame>,
}

impl TileDecoder {
    /// Creates a decoder for a tile of the given dimensions, QP, and deblock
    /// setting (all recorded in the container header).
    pub fn new(width: u32, height: u32, qp: u8, deblock: bool) -> Self {
        TileDecoder {
            width,
            height,
            default_qp: qp,
            deblock,
            recon_prev: None,
        }
    }

    /// Creates a decoder primed with a reference reconstruction, so decoding
    /// can *resume* mid-GOP: `reference` must be the decoder's output for
    /// the frame immediately preceding the next chunk fed in. Because the
    /// decode loop is deterministic and closed (each P-frame depends only on
    /// the previous reconstruction), resuming this way is bit-exact with a
    /// decode that started from the keyframe.
    pub fn with_reference(
        width: u32,
        height: u32,
        qp: u8,
        deblock: bool,
        reference: Frame,
    ) -> Self {
        assert_eq!(reference.width(), width, "reference width mismatch");
        assert_eq!(reference.height(), height, "reference height mismatch");
        TileDecoder {
            width,
            height,
            default_qp: qp,
            deblock,
            recon_prev: Some(reference),
        }
    }

    /// Decodes the next frame chunk at the stream's base QP.
    pub fn decode_next(&mut self, data: &[u8], is_key: bool) -> Result<Frame, DecodeError> {
        self.decode_next_qp(data, is_key, self.default_qp)
    }

    /// Decodes the next frame chunk with an explicit per-frame QP (frames
    /// vary in QP under rate control; the container records each frame's).
    pub fn decode_next_qp(
        &mut self,
        data: &[u8],
        is_key: bool,
        qp: u8,
    ) -> Result<Frame, DecodeError> {
        if !is_key && self.recon_prev.is_none() {
            return Err(DecodeError::MissingReference);
        }
        let mut r = BitReader::new(data);
        let qs = qstep(qp);
        let mut recon = Frame::black(self.width, self.height);
        for plane in Plane::ALL {
            self.decode_plane(&mut r, plane, &mut recon, is_key, qs)?;
        }
        if self.deblock {
            deblock_frame(&mut recon, qs);
        }
        self.recon_prev = Some(recon.clone());
        Ok(recon)
    }

    /// Number of 8×8 blocks in one frame of this tile across all planes
    /// (used for decode accounting).
    pub fn blocks_per_frame(&self) -> u64 {
        let luma = (self.width as u64 / BLOCK as u64) * (self.height as u64 / BLOCK as u64);
        // Chroma planes are quarter size, so together they add half.
        luma + luma / 2
    }

    fn decode_plane(
        &mut self,
        r: &mut BitReader<'_>,
        plane: Plane,
        recon: &mut Frame,
        is_key: bool,
        qs: i32,
    ) -> Result<(), DecodeError> {
        let pw = recon.plane_width(plane) as usize;
        let ph = recon.plane_height(plane) as usize;
        // Split borrows: the previous frame is immutable, current is mutable.
        let prev_frame = self.recon_prev.take();
        let prev_plane = prev_frame.as_ref().map(|f| f.plane(plane));
        let stride = pw;
        let result = (|| {
            let recon_plane = recon.plane_mut(plane);
            let mut y = 0;
            while y < ph {
                let mut x = 0;
                while x < pw {
                    decode_block(r, recon_plane, prev_plane, stride, x, y, pw, ph, qs, is_key)?;
                    x += BLOCK;
                }
                y += BLOCK;
            }
            Ok(())
        })();
        self.recon_prev = prev_frame;
        result
    }
}

#[allow(clippy::too_many_arguments)]
fn decode_block(
    r: &mut BitReader<'_>,
    recon: &mut [u8],
    prev: Option<&[u8]>,
    stride: usize,
    x: usize,
    y: usize,
    pw: usize,
    ph: usize,
    qs: i32,
    is_key: bool,
) -> Result<(), DecodeError> {
    if is_key {
        let pred = dc_predict(recon, stride, x, y);
        let vals = read_residual(r, qs, |_| pred)?;
        store_block(recon, stride, x, y, &vals);
        return Ok(());
    }
    let prev = prev.ok_or(DecodeError::MissingReference)?;
    match r.get_ue()? {
        0 => {
            // SKIP: copy co-located block.
            copy_block(recon, stride, x, y, prev, stride, x, y);
            Ok(())
        }
        1 => {
            // INTER: motion vector + optional residual.
            let mvx = r.get_se()?;
            let mvy = r.get_se()?;
            let rx = x as i32 + mvx;
            let ry = y as i32 + mvy;
            if rx < 0 || ry < 0 || rx + BLOCK as i32 > pw as i32 || ry + BLOCK as i32 > ph as i32 {
                return Err(DecodeError::InvalidSyntax("motion vector outside tile"));
            }
            let (rx, ry) = (rx as usize, ry as usize);
            let vals = read_residual(r, qs, |i| {
                prev[(ry + i / BLOCK) * stride + rx + i % BLOCK] as i32
            })?;
            store_block(recon, stride, x, y, &vals);
            Ok(())
        }
        2 => {
            // INTRA fallback inside a P-frame.
            let pred = dc_predict(recon, stride, x, y);
            let vals = read_residual(r, qs, |_| pred)?;
            store_block(recon, stride, x, y, &vals);
            Ok(())
        }
        _ => Err(DecodeError::InvalidSyntax("unknown block mode")),
    }
}

/// Reads a coded-block flag plus coefficients, dequantizes, inverse
/// transforms, and returns prediction + residual per sample.
fn read_residual(
    r: &mut BitReader<'_>,
    qs: i32,
    pred_at: impl Fn(usize) -> i32,
) -> Result<[i32; BLOCK_AREA], DecodeError> {
    let mut out = [0i32; BLOCK_AREA];
    if !r.get_bit()? {
        for (i, o) in out.iter_mut().enumerate() {
            *o = pred_at(i);
        }
        return Ok(out);
    }
    let nnz = r.get_ue()? as usize + 1;
    if nnz > BLOCK_AREA {
        return Err(DecodeError::InvalidSyntax("too many coefficients"));
    }
    let mut coefs = [0i32; BLOCK_AREA];
    let mut pos = 0usize;
    for _ in 0..nnz {
        let run = r.get_ue()? as usize;
        pos += run;
        if pos >= BLOCK_AREA {
            return Err(DecodeError::InvalidSyntax(
                "coefficient run overflows block",
            ));
        }
        let level = r.get_se()?;
        if level == 0 {
            return Err(DecodeError::InvalidSyntax("zero level coded as nonzero"));
        }
        coefs[ZIGZAG[pos]] = level;
        pos += 1;
    }
    dequantize_block(&mut coefs, qs);
    let res = inverse(&coefs);
    for (i, o) in out.iter_mut().enumerate() {
        *o = pred_at(i) + res[i];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncoderConfig, TileEncoder};
    use tasm_video::Rect;

    fn textured_frame(w: u32, h: u32, seed: u32) -> Frame {
        let mut f = Frame::black(w, h);
        for y in 0..h {
            for x in 0..w {
                let v = ((x * 3 + y * 7 + seed * 13) % 200 + 20) as u8;
                f.set_sample(Plane::Y, x, y, v);
            }
        }
        for y in 0..h / 2 {
            for x in 0..w / 2 {
                f.set_sample(Plane::U, x, y, ((x + y + seed) % 128 + 64) as u8);
                f.set_sample(Plane::V, x, y, ((x * 2 + seed) % 128 + 64) as u8);
            }
        }
        f
    }

    /// Encoder and decoder must produce the same reconstruction — this is
    /// the fundamental closed-loop property of the codec.
    #[test]
    fn encode_decode_reconstruction_matches() {
        let cfg = EncoderConfig {
            gop_len: 4,
            qp: 28,
            ..Default::default()
        };
        let mut enc = TileEncoder::new(cfg, Rect::new(0, 0, 48, 32));
        let mut dec = TileDecoder::new(48, 32, cfg.qp, cfg.deblock);
        for i in 0..10 {
            let frame = textured_frame(48, 32, i);
            let chunk = enc.encode_next(&frame);
            let out = dec.decode_next(&chunk.data, chunk.is_key).unwrap();
            assert_eq!(out.width(), 48);
            assert_eq!(out.height(), 32);
            // Reconstruction should be within quantization error of source.
            let report = tasm_video::psnr_frames(&frame, &out);
            assert!(
                report.y > 28.0,
                "frame {i}: luma PSNR {:.1} too low",
                report.y
            );
        }
    }

    #[test]
    fn near_lossless_at_low_qp() {
        let cfg = EncoderConfig {
            gop_len: 2,
            qp: 4,
            deblock: false,
            ..Default::default()
        };
        let mut enc = TileEncoder::new(cfg, Rect::new(0, 0, 32, 32));
        let mut dec = TileDecoder::new(32, 32, cfg.qp, false);
        for i in 0..4 {
            let frame = textured_frame(32, 32, i);
            let chunk = enc.encode_next(&frame);
            let out = dec.decode_next(&chunk.data, chunk.is_key).unwrap();
            // qstep == 1 plus DCT rounding: every sample within ±2.
            for plane in Plane::ALL {
                for (a, b) in frame.plane(plane).iter().zip(out.plane(plane)) {
                    assert!(
                        (*a as i32 - *b as i32).abs() <= 2,
                        "plane {plane:?}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn tile_region_decodes_same_as_full_frame_region() {
        // Independence: encoding a sub-rectangle as its own tile must decode
        // to the same pixels regardless of the rest of the frame.
        let cfg = EncoderConfig::default();
        let frame = textured_frame(64, 64, 3);
        let mut enc = TileEncoder::new(cfg, Rect::new(16, 16, 32, 32));
        let chunk = enc.encode_next(&frame);
        let mut dec = TileDecoder::new(32, 32, cfg.qp, cfg.deblock);
        let out = dec.decode_next(&chunk.data, chunk.is_key).unwrap();
        let reference = frame.crop(Rect::new(16, 16, 32, 32));
        let report = tasm_video::psnr_frames(&reference, &out);
        assert!(report.y > 28.0, "tile PSNR {:.1}", report.y);
    }

    #[test]
    fn p_frame_without_keyframe_is_error() {
        let mut dec = TileDecoder::new(32, 32, 28, true);
        assert_eq!(
            dec.decode_next(&[0u8; 4], false),
            Err(DecodeError::MissingReference)
        );
    }

    #[test]
    fn truncated_stream_is_error_not_panic() {
        let cfg = EncoderConfig::default();
        let mut enc = TileEncoder::new(cfg, Rect::new(0, 0, 32, 32));
        let frame = textured_frame(32, 32, 0);
        let chunk = enc.encode_next(&frame);
        let mut dec = TileDecoder::new(32, 32, cfg.qp, cfg.deblock);
        let truncated = &chunk.data[..chunk.data.len() / 2];
        assert!(dec.decode_next(truncated, true).is_err());
    }

    #[test]
    fn garbage_stream_is_error_not_panic() {
        let mut dec = TileDecoder::new(32, 32, 28, true);
        let garbage: Vec<u8> = (0..64u16).map(|i| (i * 37 % 251) as u8).collect();
        // Must not panic; may error or produce nonsense pixels.
        let _ = dec.decode_next(&garbage, true);
    }

    #[test]
    fn blocks_per_frame_accounting() {
        let dec = TileDecoder::new(64, 32, 28, true);
        // Luma: 8x4 = 32 blocks; chroma adds half: 48.
        assert_eq!(dec.blocks_per_frame(), 48);
    }
}
