//! Whole-video encoding with a tile layout.
//!
//! [`encode_video`] is the entry point TASM's storage manager uses: given a
//! frame source, a [`TileLayout`], and an [`EncoderConfig`], it produces one
//! [`TileVideo`] per tile. Tiles are encoded independently (the paper's
//! prototype encodes them sequentially; we optionally parallelize across
//! tiles since the streams share nothing).

use crate::container::TileVideo;
use crate::encoder::{EncodedFrame, EncoderConfig, TileEncoder};
use crate::grid::{LayoutError, TileLayout};
use crate::stats::EncodeStats;
use std::time::Instant;
use tasm_video::FrameSource;

/// Encodes all frames of `src` under `layout`, returning one stream per tile
/// (raster order) plus encode-work accounting.
///
/// Set `parallel` to encode tiles on separate threads; the output is
/// bit-identical either way.
pub fn encode_video(
    src: &dyn FrameSource,
    layout: &TileLayout,
    cfg: &EncoderConfig,
    parallel: bool,
) -> Result<(Vec<TileVideo>, EncodeStats), LayoutError> {
    layout.check_covers(src.width(), src.height())?;
    assert!(!src.is_empty(), "cannot encode an empty source");
    let t0 = Instant::now();

    let rects: Vec<_> = layout.tiles().map(|(_, r)| r).collect();
    let tile_frames: Vec<Vec<EncodedFrame>> = if parallel && rects.len() > 1 {
        encode_tiles_parallel(src, &rects, cfg)
    } else {
        rects
            .iter()
            .map(|&rect| encode_one_tile(src, rect, cfg))
            .collect()
    };

    let videos: Vec<TileVideo> = rects
        .iter()
        .zip(tile_frames)
        .map(|(rect, frames)| TileVideo {
            width: rect.w,
            height: rect.h,
            gop_len: cfg.gop_len,
            qp: cfg.qp,
            deblock: cfg.deblock,
            frames,
        })
        .collect();

    let stats = EncodeStats {
        frames_encoded: src.len() as u64 * videos.len() as u64,
        samples_encoded: src.len() as u64 * (src.width() as u64 * src.height() as u64 * 3 / 2),
        bytes_produced: videos.iter().map(|v| v.size_bytes()).sum(),
        encode_time: t0.elapsed(),
    };
    Ok((videos, stats))
}

fn encode_one_tile(
    src: &dyn FrameSource,
    rect: tasm_video::Rect,
    cfg: &EncoderConfig,
) -> Vec<EncodedFrame> {
    let mut enc = TileEncoder::new(*cfg, rect);
    (0..src.len())
        .map(|i| enc.encode_next(&src.frame(i)))
        .collect()
}

/// Parallel path: each worker owns a subset of tiles and pulls frames from
/// the (Sync) source independently.
fn encode_tiles_parallel(
    src: &dyn FrameSource,
    rects: &[tasm_video::Rect],
    cfg: &EncoderConfig,
) -> Vec<Vec<EncodedFrame>> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(rects.len());
    let mut out: Vec<Vec<EncodedFrame>> = vec![Vec::new(); rects.len()];
    std::thread::scope(|scope| {
        let chunk = rects.len().div_ceil(threads);
        for (slot_chunk, rect_chunk) in out.chunks_mut(chunk).zip(rects.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, &rect) in slot_chunk.iter_mut().zip(rect_chunk) {
                    *slot = encode_one_tile(src, rect, cfg);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_video::{Frame, FrameSource, Plane, Rect, VecFrameSource};

    fn moving_source(n: u32, w: u32, h: u32) -> VecFrameSource {
        let frames = (0..n)
            .map(|i| {
                let mut f = Frame::filled(w, h, 80, 128, 128);
                f.fill_rect(Rect::new((i * 4) % (w - 16), h / 4, 16, 16), 210, 100, 150);
                f
            })
            .collect();
        VecFrameSource::new(frames)
    }

    #[test]
    fn untiled_encode_produces_single_stream() {
        let src = moving_source(6, 64, 48);
        let layout = TileLayout::untiled(64, 48);
        let (videos, stats) =
            encode_video(&src, &layout, &EncoderConfig::default(), false).unwrap();
        assert_eq!(videos.len(), 1);
        assert_eq!(videos[0].frame_count(), 6);
        assert!(stats.bytes_produced > 0);
        assert!(stats.encode_time.as_nanos() > 0);
    }

    #[test]
    fn tiled_encode_matches_layout() {
        let src = moving_source(4, 64, 48);
        let layout = TileLayout::new(vec![32, 32], vec![16, 32]).unwrap();
        let (videos, _) = encode_video(&src, &layout, &EncoderConfig::default(), false).unwrap();
        assert_eq!(videos.len(), 4);
        assert_eq!(videos[0].width, 32);
        assert_eq!(videos[0].height, 16);
        assert_eq!(videos[3].width, 32);
        assert_eq!(videos[3].height, 32);
    }

    #[test]
    fn layout_mismatch_rejected() {
        let src = moving_source(2, 64, 48);
        let layout = TileLayout::untiled(32, 48);
        assert!(encode_video(&src, &layout, &EncoderConfig::default(), false).is_err());
    }

    #[test]
    fn parallel_output_is_bit_identical() {
        let src = moving_source(8, 96, 64);
        let layout = TileLayout::uniform(96, 64, 2, 3).unwrap();
        let cfg = EncoderConfig::default();
        let (seq, _) = encode_video(&src, &layout, &cfg, false).unwrap();
        let (par, _) = encode_video(&src, &layout, &cfg, true).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn tiles_reassemble_into_full_frame() {
        let src = moving_source(5, 64, 64);
        let layout = TileLayout::uniform(64, 64, 2, 2).unwrap();
        let cfg = EncoderConfig::default();
        let (videos, _) = encode_video(&src, &layout, &cfg, false).unwrap();

        // Decode every tile and composite; compare against the source.
        let mut composite = Frame::black(64, 64);
        for (i, rect) in layout.tiles() {
            let (frames, _) = videos[i as usize].decode_range(2..3).unwrap();
            composite.blit(&frames[0], frames[0].rect(), rect.x, rect.y);
        }
        let original = src.frame(2);
        let report = tasm_video::psnr_frames(&original, &composite);
        assert!(report.y > 28.0, "composite PSNR {:.1}", report.y);
        assert!(composite.plane(Plane::Y).iter().any(|&v| v > 150));
    }
}
