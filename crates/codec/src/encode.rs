//! Whole-video encoding with a tile layout.
//!
//! [`encode_video`] is the entry point TASM's storage manager uses: given a
//! frame source, a [`TileLayout`], and an [`EncoderConfig`], it produces one
//! [`TileVideo`] per tile. Tiles are encoded independently (the paper's
//! prototype encodes them sequentially; we optionally parallelize across
//! tiles since the streams share nothing).

use crate::container::{TileCodec, TileVideo};
use crate::encoder::{CodecChoice, EncodedFrame, EncoderConfig, TileEncoder};
use crate::grid::{LayoutError, TileLayout};
use crate::pred;
use crate::stats::EncodeStats;
use bytes::Bytes;
use std::time::Instant;
use tasm_video::{Frame, FrameSource};

/// Encodes all frames of `src` under `layout`, returning one stream per tile
/// (raster order) plus encode-work accounting.
///
/// Set `parallel` to encode tiles on separate threads; the output is
/// bit-identical either way.
pub fn encode_video(
    src: &dyn FrameSource,
    layout: &TileLayout,
    cfg: &EncoderConfig,
    parallel: bool,
) -> Result<(Vec<TileVideo>, EncodeStats), LayoutError> {
    layout.check_covers(src.width(), src.height())?;
    assert!(!src.is_empty(), "cannot encode an empty source");
    let t0 = Instant::now();

    let rects: Vec<_> = layout.tiles().map(|(_, r)| r).collect();
    let tile_frames: Vec<(TileCodec, Vec<EncodedFrame>)> = if parallel && rects.len() > 1 {
        encode_tiles_parallel(src, &rects, cfg)
    } else {
        rects
            .iter()
            .map(|&rect| encode_one_tile(src, rect, cfg))
            .collect()
    };

    let videos: Vec<TileVideo> = rects
        .iter()
        .zip(tile_frames)
        .map(|(rect, (codec, frames))| TileVideo {
            width: rect.w,
            height: rect.h,
            gop_len: cfg.gop_len,
            qp: cfg.qp,
            deblock: cfg.deblock,
            codec,
            frames,
        })
        .collect();

    let stats = EncodeStats {
        frames_encoded: src.len() as u64 * videos.len() as u64,
        samples_encoded: src.len() as u64 * (src.width() as u64 * src.height() as u64 * 3 / 2),
        bytes_produced: videos.iter().map(|v| v.size_bytes()).sum(),
        encode_time: t0.elapsed(),
    };
    Ok((videos, stats))
}

fn encode_one_tile(
    src: &dyn FrameSource,
    rect: tasm_video::Rect,
    cfg: &EncoderConfig,
) -> (TileCodec, Vec<EncodedFrame>) {
    match cfg.codec {
        CodecChoice::Dct => (TileCodec::Dct, encode_dct_tile(src, rect, cfg)),
        CodecChoice::Pred => (TileCodec::Pred, encode_pred_tile(src, rect, cfg)),
        CodecChoice::Auto => {
            // Cheap size trial: encode with both codecs, keep the smaller
            // stream. Payload bytes dominate, so compare those (header size
            // differs by one byte).
            let dct = encode_dct_tile(src, rect, cfg);
            let lossless = encode_pred_tile(src, rect, cfg);
            let dct_bytes: u64 = dct.iter().map(|f| f.data.len() as u64).sum();
            let pred_bytes: u64 = lossless.iter().map(|f| f.data.len() as u64).sum();
            if pred_bytes < dct_bytes {
                (TileCodec::Pred, lossless)
            } else {
                (TileCodec::Dct, dct)
            }
        }
    }
}

fn encode_dct_tile(
    src: &dyn FrameSource,
    rect: tasm_video::Rect,
    cfg: &EncoderConfig,
) -> Vec<EncodedFrame> {
    let mut enc = TileEncoder::new(*cfg, rect);
    (0..src.len())
        .map(|i| enc.encode_next(&src.frame(i)))
        .collect()
}

/// Lossless path: crop each frame to the tile rectangle, then per GOP encode
/// the keyframe intra and P-frames as temporal deltas against the previous
/// *source* tile (the codec is lossless, so source and reconstruction are
/// identical — no drift).
fn encode_pred_tile(
    src: &dyn FrameSource,
    rect: tasm_video::Rect,
    cfg: &EncoderConfig,
) -> Vec<EncodedFrame> {
    let mut prev: Option<Frame> = None;
    (0..src.len())
        .map(|i| {
            let full = src.frame(i);
            let mut tile = Frame::black(rect.w, rect.h);
            tile.blit(&full, rect, 0, 0);
            let is_key = i.is_multiple_of(cfg.gop_len);
            let data = if is_key {
                pred::encode_intra(&tile)
            } else {
                pred::encode_inter(&tile, prev.as_ref().expect("P-frame follows a keyframe"))
            };
            prev = Some(tile);
            EncodedFrame {
                is_key,
                qp: 0,
                data: Bytes::from(data),
            }
        })
        .collect()
}

/// Parallel path: each worker owns a subset of tiles and pulls frames from
/// the (Sync) source independently.
fn encode_tiles_parallel(
    src: &dyn FrameSource,
    rects: &[tasm_video::Rect],
    cfg: &EncoderConfig,
) -> Vec<(TileCodec, Vec<EncodedFrame>)> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(rects.len());
    let mut out: Vec<(TileCodec, Vec<EncodedFrame>)> =
        vec![(TileCodec::Dct, Vec::new()); rects.len()];
    std::thread::scope(|scope| {
        let chunk = rects.len().div_ceil(threads);
        for (slot_chunk, rect_chunk) in out.chunks_mut(chunk).zip(rects.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, &rect) in slot_chunk.iter_mut().zip(rect_chunk) {
                    *slot = encode_one_tile(src, rect, cfg);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_video::{Frame, FrameSource, Plane, Rect, VecFrameSource};

    fn moving_source(n: u32, w: u32, h: u32) -> VecFrameSource {
        let frames = (0..n)
            .map(|i| {
                let mut f = Frame::filled(w, h, 80, 128, 128);
                f.fill_rect(Rect::new((i * 4) % (w - 16), h / 4, 16, 16), 210, 100, 150);
                f
            })
            .collect();
        VecFrameSource::new(frames)
    }

    #[test]
    fn untiled_encode_produces_single_stream() {
        let src = moving_source(6, 64, 48);
        let layout = TileLayout::untiled(64, 48);
        let (videos, stats) =
            encode_video(&src, &layout, &EncoderConfig::default(), false).unwrap();
        assert_eq!(videos.len(), 1);
        assert_eq!(videos[0].frame_count(), 6);
        assert!(stats.bytes_produced > 0);
        assert!(stats.encode_time.as_nanos() > 0);
    }

    #[test]
    fn tiled_encode_matches_layout() {
        let src = moving_source(4, 64, 48);
        let layout = TileLayout::new(vec![32, 32], vec![16, 32]).unwrap();
        let (videos, _) = encode_video(&src, &layout, &EncoderConfig::default(), false).unwrap();
        assert_eq!(videos.len(), 4);
        assert_eq!(videos[0].width, 32);
        assert_eq!(videos[0].height, 16);
        assert_eq!(videos[3].width, 32);
        assert_eq!(videos[3].height, 32);
    }

    #[test]
    fn layout_mismatch_rejected() {
        let src = moving_source(2, 64, 48);
        let layout = TileLayout::untiled(32, 48);
        assert!(encode_video(&src, &layout, &EncoderConfig::default(), false).is_err());
    }

    #[test]
    fn parallel_output_is_bit_identical() {
        let src = moving_source(8, 96, 64);
        let layout = TileLayout::uniform(96, 64, 2, 3).unwrap();
        let cfg = EncoderConfig::default();
        let (seq, _) = encode_video(&src, &layout, &cfg, false).unwrap();
        let (par, _) = encode_video(&src, &layout, &cfg, true).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn pred_codec_roundtrips_losslessly_through_encode_video() {
        let src = moving_source(6, 64, 48);
        let layout = TileLayout::uniform(64, 48, 2, 2).unwrap();
        let cfg = EncoderConfig {
            codec: crate::encoder::CodecChoice::Pred,
            ..Default::default()
        };
        let (videos, _) = encode_video(&src, &layout, &cfg, false).unwrap();
        assert!(videos.iter().all(|v| v.codec == TileCodec::Pred));
        // Lossless: composite of decoded tiles equals the source exactly.
        let mut composite = Frame::black(64, 48);
        for (i, rect) in layout.tiles() {
            let (frames, _) = videos[i as usize].decode_range(3..4).unwrap();
            composite.blit(&frames[0], frames[0].rect(), rect.x, rect.y);
        }
        assert_eq!(composite, src.frame(3));
    }

    #[test]
    fn auto_codec_picks_smaller_stream_per_tile() {
        let src = moving_source(6, 64, 48);
        let layout = TileLayout::uniform(64, 48, 2, 2).unwrap();
        let auto_cfg = EncoderConfig {
            codec: crate::encoder::CodecChoice::Auto,
            ..Default::default()
        };
        let dct_cfg = EncoderConfig::default();
        let pred_cfg = EncoderConfig {
            codec: crate::encoder::CodecChoice::Pred,
            ..Default::default()
        };
        let (auto, _) = encode_video(&src, &layout, &auto_cfg, false).unwrap();
        let (dct, _) = encode_video(&src, &layout, &dct_cfg, false).unwrap();
        let (lossless, _) = encode_video(&src, &layout, &pred_cfg, false).unwrap();
        for ((a, d), p) in auto.iter().zip(&dct).zip(&lossless) {
            let expect = if p.payload_bytes() < d.payload_bytes() {
                TileCodec::Pred
            } else {
                TileCodec::Dct
            };
            assert_eq!(a.codec, expect);
            assert_eq!(a.payload_bytes(), d.payload_bytes().min(p.payload_bytes()));
        }
    }

    #[test]
    fn auto_parallel_output_is_bit_identical() {
        let src = moving_source(8, 96, 64);
        let layout = TileLayout::uniform(96, 64, 2, 3).unwrap();
        let cfg = EncoderConfig {
            codec: crate::encoder::CodecChoice::Auto,
            ..Default::default()
        };
        let (seq, _) = encode_video(&src, &layout, &cfg, false).unwrap();
        let (par, _) = encode_video(&src, &layout, &cfg, true).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn tiles_reassemble_into_full_frame() {
        let src = moving_source(5, 64, 64);
        let layout = TileLayout::uniform(64, 64, 2, 2).unwrap();
        let cfg = EncoderConfig::default();
        let (videos, _) = encode_video(&src, &layout, &cfg, false).unwrap();

        // Decode every tile and composite; compare against the source.
        let mut composite = Frame::black(64, 64);
        for (i, rect) in layout.tiles() {
            let (frames, _) = videos[i as usize].decode_range(2..3).unwrap();
            composite.blit(&frames[0], frames[0].rect(), rect.x, rect.y);
        }
        let original = src.frame(2);
        let report = tasm_video::psnr_frames(&original, &composite);
        assert!(report.y > 28.0, "composite PSNR {:.1}", report.y);
        assert!(composite.plane(Plane::Y).iter().any(|&v| v > 150));
    }
}
