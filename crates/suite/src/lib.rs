//! Workspace glue crate: hosts the repository-level examples (`/examples`) and cross-crate integration tests (`/tests`). See the `tasm-core` crate for the library itself.
