//! Workspace glue crate: hosts the repository-level examples (`/examples`)
//! and cross-crate integration tests (`/tests`), plus the small helpers
//! they share. See the `tasm-core` crate for the library itself.

use tasm_core::{Query, RegionPixels, ScanResult};
use tasm_video::Plane;

/// Applies a [`Query`]'s spatial and temporal predicates to the *output* of
/// an unpruned scan: keep regions whose rectangle intersects the ROI, whose
/// frame lies on the sampling stride (anchored at `window_start`), and that
/// belong to the first `limit` matching frames.
///
/// This is the reference semantics the planner must reproduce: for any
/// query, `Tasm::query` must return exactly these regions, bit for bit,
/// while decoding only the pruned plan. The integration tests compare the
/// two on every axis (worker count, cache state, concurrent re-tiling).
pub fn post_filter<'a>(
    scan: &'a ScanResult,
    query: &Query,
    window_start: u32,
) -> Vec<&'a RegionPixels> {
    let stride = query.stride_len();
    let mut out: Vec<&RegionPixels> = scan
        .regions
        .iter()
        .filter(|r| match query.roi_rect() {
            Some(roi) => r.rect.intersects(&roi),
            None => true,
        })
        .filter(|r| (r.frame - window_start).is_multiple_of(stride))
        .collect();
    if let Some(limit) = query.limit_count() {
        let mut frames: Vec<u32> = out.iter().map(|r| r.frame).collect();
        frames.dedup();
        if let Some(&cutoff) = frames.get(limit as usize) {
            out.retain(|r| r.frame < cutoff);
        }
    }
    out
}

/// True when two region lists are bit-identical: same length, and every
/// region agrees on frame, rectangle, and every pixel of every plane. The
/// single definition of region equality the integration tests build on.
pub fn regions_identical(expected: &[&RegionPixels], got: &[RegionPixels]) -> bool {
    expected.len() == got.len()
        && expected.iter().zip(got).all(|(e, g)| {
            e.frame == g.frame
                && e.rect == g.rect
                && Plane::ALL
                    .iter()
                    .all(|&p| e.pixels.plane(p) == g.pixels.plane(p))
        })
}

/// Asserts [`regions_identical`], reporting the first divergence (frame,
/// rect, or plane) with a context string for failures.
pub fn assert_regions_identical(expected: &[&RegionPixels], got: &[RegionPixels], what: &str) {
    assert_eq!(expected.len(), got.len(), "{what}: region count");
    for (e, g) in expected.iter().zip(got) {
        assert_eq!(e.frame, g.frame, "{what}: frame order");
        assert_eq!(e.rect, g.rect, "{what}: rects");
        for plane in Plane::ALL {
            assert_eq!(
                e.pixels.plane(plane),
                g.pixels.plane(plane),
                "{what}: pixels of frame {} plane {plane:?}",
                e.frame
            );
        }
    }
}
