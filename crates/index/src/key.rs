//! Composite keys for the semantic index.
//!
//! The paper's index is "a B-tree clustered on (video, label, time)" (§3.2).
//! [`RecordKey`] implements that clustering: keys compare first by video,
//! then label, then frame, with a sequence number to disambiguate multiple
//! detections of the same label on the same frame. Keys serialize to 16
//! big-endian bytes so that byte-wise comparison equals logical comparison.

use tasm_video::Rect;

/// Byte length of an encoded key.
pub const KEY_LEN: usize = 16;

/// Byte length of an encoded value (a bounding box).
pub const VALUE_LEN: usize = 16;

/// Composite key: `(video, label, frame, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordKey {
    /// Video identifier.
    pub video: u32,
    /// Label identifier (from the label dictionary).
    pub label: u32,
    /// Frame number within the video.
    pub frame: u32,
    /// Insertion sequence number (uniquifier).
    pub seq: u32,
}

impl RecordKey {
    /// Creates a key.
    pub fn new(video: u32, label: u32, frame: u32, seq: u32) -> Self {
        RecordKey {
            video,
            label,
            frame,
            seq,
        }
    }

    /// Smallest key for `(video, label)` — the start of a clustered range.
    pub fn range_start(video: u32, label: u32, frame: u32) -> Self {
        RecordKey::new(video, label, frame, 0)
    }

    /// Encodes as 16 big-endian bytes; byte order equals key order.
    pub fn encode(&self) -> [u8; KEY_LEN] {
        let mut out = [0u8; KEY_LEN];
        out[0..4].copy_from_slice(&self.video.to_be_bytes());
        out[4..8].copy_from_slice(&self.label.to_be_bytes());
        out[8..12].copy_from_slice(&self.frame.to_be_bytes());
        out[12..16].copy_from_slice(&self.seq.to_be_bytes());
        out
    }

    /// Decodes from 16 big-endian bytes.
    pub fn decode(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), KEY_LEN, "key must be {KEY_LEN} bytes");
        let be = |r: std::ops::Range<usize>| u32::from_be_bytes(bytes[r].try_into().unwrap());
        RecordKey {
            video: be(0..4),
            label: be(4..8),
            frame: be(8..12),
            seq: be(12..16),
        }
    }
}

/// Encodes a bounding box value as 16 little-endian bytes.
pub fn encode_value(rect: &Rect) -> [u8; VALUE_LEN] {
    let mut out = [0u8; VALUE_LEN];
    out[0..4].copy_from_slice(&rect.x.to_le_bytes());
    out[4..8].copy_from_slice(&rect.y.to_le_bytes());
    out[8..12].copy_from_slice(&rect.w.to_le_bytes());
    out[12..16].copy_from_slice(&rect.h.to_le_bytes());
    out
}

/// Decodes a bounding box value.
pub fn decode_value(bytes: &[u8]) -> Rect {
    assert_eq!(bytes.len(), VALUE_LEN, "value must be {VALUE_LEN} bytes");
    let le = |r: std::ops::Range<usize>| u32::from_le_bytes(bytes[r].try_into().unwrap());
    Rect::new(le(0..4), le(4..8), le(8..12), le(12..16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let k = RecordKey::new(7, 3, 1000, 42);
        assert_eq!(RecordKey::decode(&k.encode()), k);
    }

    #[test]
    fn byte_order_matches_logical_order() {
        let keys = [
            RecordKey::new(0, 0, 0, 0),
            RecordKey::new(0, 0, 0, 1),
            RecordKey::new(0, 0, 255, 0),
            RecordKey::new(0, 0, 256, 0),
            RecordKey::new(0, 1, 0, 0),
            RecordKey::new(1, 0, 0, 0),
            RecordKey::new(1, 0, u32::MAX, 0),
            RecordKey::new(u32::MAX, u32::MAX, u32::MAX, u32::MAX),
        ];
        for pair in keys.windows(2) {
            assert!(pair[0] < pair[1]);
            assert!(
                pair[0].encode() < pair[1].encode(),
                "byte order broken between {:?} and {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn clustering_groups_video_then_label_then_frame() {
        // All detections for (video=2, label=5) sort between the range
        // markers — the property range scans rely on.
        let lo = RecordKey::range_start(2, 5, 0);
        let hi = RecordKey::range_start(2, 6, 0);
        let inside = RecordKey::new(2, 5, 999, 7);
        let outside = RecordKey::new(2, 6, 0, 0);
        assert!(lo <= inside && inside < hi);
        assert!(outside >= hi);
    }

    #[test]
    fn value_roundtrip() {
        let r = Rect::new(10, 20, 30, 40);
        assert_eq!(decode_value(&encode_value(&r)), r);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_key_roundtrip(v in any::<u32>(), l in any::<u32>(), f in any::<u32>(), s in any::<u32>()) {
            let k = RecordKey::new(v, l, f, s);
            prop_assert_eq!(RecordKey::decode(&k.encode()), k);
        }

        #[test]
        fn prop_byte_order_total(a in any::<[u32; 4]>(), b in any::<[u32; 4]>()) {
            let ka = RecordKey::new(a[0], a[1], a[2], a[3]);
            let kb = RecordKey::new(b[0], b[1], b[2], b[3]);
            prop_assert_eq!(ka.cmp(&kb), ka.encode().cmp(&kb.encode()));
        }

        #[test]
        fn prop_value_roundtrip(x in any::<u32>(), y in any::<u32>(), w in any::<u32>(), h in any::<u32>()) {
            let r = Rect::new(x, y, w, h);
            prop_assert_eq!(decode_value(&encode_value(&r)), r);
        }
    }
}
