//! Spatial indexing of bounding boxes.
//!
//! §3.2 of the paper: "A spatial index could further accelerate queries
//! containing conjunctive predicates by efficiently computing the
//! intersection of bounding boxes before fetching tiles." This module
//! implements that extension: a uniform grid hash over boxes, so evaluating
//! `car ∧ red` probes only the grid cells a box overlaps instead of testing
//! every pair.
//!
//! A uniform grid beats tree structures here: boxes are small relative to
//! the frame, frame dimensions are fixed and known, and the index is
//! rebuilt per frame from a handful of boxes — insertion must be cheap.

use tasm_video::Rect;

/// A uniform-grid spatial index over rectangles.
///
/// Cells are `cell`×`cell` pixels; each box is registered in every cell it
/// overlaps. Query cost is proportional to the query box's cell footprint
/// plus candidates, not the total number of boxes.
#[derive(Debug)]
pub struct SpatialGrid {
    cell: u32,
    cols: u32,
    rows: u32,
    /// Box indices per cell.
    cells: Vec<Vec<u32>>,
    boxes: Vec<Rect>,
}

impl SpatialGrid {
    /// Creates an empty grid covering a `width`×`height` frame.
    ///
    /// # Panics
    /// Panics if any dimension or the cell size is zero.
    pub fn new(width: u32, height: u32, cell: u32) -> Self {
        assert!(width > 0 && height > 0, "frame must be non-empty");
        assert!(cell > 0, "cell size must be positive");
        let cols = width.div_ceil(cell);
        let rows = height.div_ceil(cell);
        SpatialGrid {
            cell,
            cols,
            rows,
            cells: vec![Vec::new(); (cols * rows) as usize],
            boxes: Vec::new(),
        }
    }

    /// Builds a grid from a set of boxes with a default cell size tuned for
    /// object queries (64 px).
    pub fn from_boxes(width: u32, height: u32, boxes: &[Rect]) -> Self {
        let mut g = SpatialGrid::new(width, height, 64);
        for b in boxes {
            g.insert(*b);
        }
        g
    }

    /// Number of indexed boxes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// True if no boxes are indexed.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Inserts a box (clamped to the frame; empty boxes are ignored).
    pub fn insert(&mut self, rect: Rect) {
        let clamped = rect.clamp_to(self.cols * self.cell, self.rows * self.cell);
        if clamped.is_empty() {
            return;
        }
        let id = self.boxes.len() as u32;
        self.boxes.push(rect);
        let (c0, c1, r0, r1) = self.cell_span(&clamped);
        for r in r0..=r1 {
            for c in c0..=c1 {
                self.cells[(r * self.cols + c) as usize].push(id);
            }
        }
    }

    /// All distinct boxes intersecting `query`, in insertion order.
    pub fn query_intersecting(&self, query: &Rect) -> Vec<Rect> {
        let mut ids = self.candidate_ids(query);
        ids.retain(|&id| self.boxes[id as usize].intersects(query));
        ids.into_iter().map(|id| self.boxes[id as usize]).collect()
    }

    /// Pairwise intersections between `query` and the indexed boxes —
    /// the conjunctive-predicate primitive ("pixels in the intersection of
    /// boxes associated with all cᵢ", §3.1).
    pub fn intersections(&self, query: &Rect) -> Vec<Rect> {
        self.candidate_ids(query)
            .into_iter()
            .filter_map(|id| self.boxes[id as usize].intersect(query))
            .collect()
    }

    /// Candidate box ids from the cells `query` overlaps, deduplicated.
    fn candidate_ids(&self, query: &Rect) -> Vec<u32> {
        let clamped = query.clamp_to(self.cols * self.cell, self.rows * self.cell);
        if clamped.is_empty() || self.boxes.is_empty() {
            return Vec::new();
        }
        let (c0, c1, r0, r1) = self.cell_span(&clamped);
        let mut seen = vec![false; self.boxes.len()];
        let mut out = Vec::new();
        for r in r0..=r1 {
            for c in c0..=c1 {
                for &id in &self.cells[(r * self.cols + c) as usize] {
                    if !seen[id as usize] {
                        seen[id as usize] = true;
                        out.push(id);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn cell_span(&self, rect: &Rect) -> (u32, u32, u32, u32) {
        let c0 = rect.x / self.cell;
        let c1 = ((rect.right() - 1) / self.cell).min(self.cols - 1);
        let r0 = rect.y / self.cell;
        let r1 = ((rect.bottom() - 1) / self.cell).min(self.rows - 1);
        (c0, c1, r0, r1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_returns_nothing() {
        let g = SpatialGrid::new(640, 352, 64);
        assert!(g.is_empty());
        assert!(g.query_intersecting(&Rect::new(0, 0, 640, 352)).is_empty());
    }

    #[test]
    fn finds_overlapping_boxes_only() {
        let mut g = SpatialGrid::new(640, 352, 64);
        g.insert(Rect::new(10, 10, 50, 50));
        g.insert(Rect::new(300, 200, 40, 40));
        g.insert(Rect::new(600, 300, 30, 30));
        let hits = g.query_intersecting(&Rect::new(0, 0, 100, 100));
        assert_eq!(hits, vec![Rect::new(10, 10, 50, 50)]);
        let hits = g.query_intersecting(&Rect::new(310, 210, 10, 10));
        assert_eq!(hits, vec![Rect::new(300, 200, 40, 40)]);
        assert!(g
            .query_intersecting(&Rect::new(100, 100, 20, 20))
            .is_empty());
    }

    #[test]
    fn boxes_spanning_cells_are_deduplicated() {
        let mut g = SpatialGrid::new(640, 352, 64);
        // Box spanning 4+ cells.
        g.insert(Rect::new(32, 32, 128, 128));
        let hits = g.query_intersecting(&Rect::new(0, 0, 640, 352));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn intersections_clip_to_overlap() {
        let mut g = SpatialGrid::new(640, 352, 64);
        g.insert(Rect::new(0, 0, 100, 100));
        g.insert(Rect::new(80, 80, 100, 100));
        let inter = g.intersections(&Rect::new(50, 50, 60, 60));
        assert!(inter.contains(&Rect::new(50, 50, 50, 50))); // ∩ first box
        assert!(inter.contains(&Rect::new(80, 80, 30, 30))); // ∩ second box
    }

    #[test]
    fn out_of_frame_queries_are_safe() {
        let mut g = SpatialGrid::new(640, 352, 64);
        g.insert(Rect::new(600, 320, 100, 100)); // extends past the frame
        let hits = g.query_intersecting(&Rect::new(630, 340, 500, 500));
        assert_eq!(hits.len(), 1);
        assert!(g
            .query_intersecting(&Rect::new(5000, 5000, 10, 10))
            .is_empty());
    }

    #[test]
    fn from_boxes_builder() {
        let boxes = [Rect::new(0, 0, 10, 10), Rect::new(100, 100, 10, 10)];
        let g = SpatialGrid::from_boxes(640, 352, &boxes);
        assert_eq!(g.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (0u32..640, 0u32..352, 1u32..200, 1u32..150).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
    }

    proptest! {
        /// The grid must agree exactly with brute force over the boxes that
        /// are at least partially inside the frame (boxes entirely outside
        /// are not indexed, mirroring the frame-bounded semantic index).
        #[test]
        fn prop_matches_brute_force(
            boxes in proptest::collection::vec(arb_rect(), 0..40),
            query in arb_rect(),
        ) {
            let g = SpatialGrid::from_boxes(640, 352, &boxes);
            let frame_w = g.cols * g.cell;
            let frame_h = g.rows * g.cell;
            let mut expected: Vec<Rect> = boxes
                .iter()
                .filter(|b| !b.clamp_to(frame_w, frame_h).is_empty() && b.intersects(&query))
                .copied()
                .collect();
            let mut got = g.query_intersecting(&query);
            expected.sort_by_key(|r| (r.x, r.y, r.w, r.h));
            got.sort_by_key(|r| (r.x, r.y, r.w, r.h));
            prop_assert_eq!(got, expected);
        }
    }
}
