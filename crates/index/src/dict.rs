//! Label dictionary: interns label strings ("car", "person", …) to the
//! `u32` identifiers used in index keys.
//!
//! Identifier 0 is reserved for the internal *processed-frame* marker (the
//! record TASM writes when a detector has run on a frame, so that "no boxes"
//! can be distinguished from "never looked"). Real labels start at 1.
//!
//! Persistence is a sidecar tab-separated file (`id\tname` per line),
//! append-only: label sets are tiny (object classes), so a human-readable
//! format beats embedding strings in pages.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Reserved label id marking frames a detector has processed.
pub const PROCESSED_LABEL: u32 = 0;

/// First id handed out to a real label.
pub const FIRST_LABEL: u32 = 1;

/// Bidirectional label-string ↔ id mapping.
pub struct LabelDict {
    /// `names[i]` is the label with id `i + FIRST_LABEL`.
    names: Vec<String>,
    ids: HashMap<String, u32>,
    backing: Option<PathBuf>,
}

impl LabelDict {
    /// An ephemeral in-memory dictionary.
    pub fn in_memory() -> Self {
        LabelDict {
            names: Vec::new(),
            ids: HashMap::new(),
            backing: None,
        }
    }

    /// Opens (or creates) a file-backed dictionary.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut dict = LabelDict {
            names: Vec::new(),
            ids: HashMap::new(),
            backing: Some(path.to_path_buf()),
        };
        if path.exists() {
            let reader = BufReader::new(File::open(path)?);
            for line in reader.lines() {
                let line = line?;
                if line.is_empty() {
                    continue;
                }
                let (id_str, name) = line.split_once('\t').ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "malformed dictionary line")
                })?;
                let id: u32 = id_str.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "malformed dictionary id")
                })?;
                let expected = dict.names.len() as u32 + FIRST_LABEL;
                if id != expected {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "dictionary ids must be dense and ordered",
                    ));
                }
                dict.ids.insert(name.to_string(), id);
                dict.names.push(name.to_string());
            }
        }
        Ok(dict)
    }

    /// Returns the id for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> io::Result<u32> {
        if let Some(&id) = self.ids.get(name) {
            return Ok(id);
        }
        assert!(
            !name.contains(['\t', '\n']),
            "label names may not contain tabs or newlines"
        );
        let id = self.names.len() as u32 + FIRST_LABEL;
        if let Some(path) = &self.backing {
            let mut f = OpenOptions::new().create(true).append(true).open(path)?;
            writeln!(f, "{id}\t{name}")?;
        }
        self.ids.insert(name.to_string(), id);
        self.names.push(name.to_string());
        Ok(id)
    }

    /// Looks up an existing label id.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// The label string for `id` (never the reserved marker).
    pub fn name(&self, id: u32) -> Option<&str> {
        if id < FIRST_LABEL {
            return None;
        }
        self.names
            .get((id - FIRST_LABEL) as usize)
            .map(|s| s.as_str())
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no labels are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = LabelDict::in_memory();
        let car = d.intern("car").unwrap();
        let person = d.intern("person").unwrap();
        assert_eq!(car, FIRST_LABEL);
        assert_eq!(person, FIRST_LABEL + 1);
        assert_eq!(d.intern("car").unwrap(), car);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn lookup_and_name() {
        let mut d = LabelDict::in_memory();
        let id = d.intern("bicycle").unwrap();
        assert_eq!(d.lookup("bicycle"), Some(id));
        assert_eq!(d.lookup("unknown"), None);
        assert_eq!(d.name(id), Some("bicycle"));
        assert_eq!(d.name(PROCESSED_LABEL), None);
        assert_eq!(d.name(999), None);
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("tasm-dict-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("labels.tsv");
        std::fs::remove_file(&path).ok();
        {
            let mut d = LabelDict::open(&path).unwrap();
            d.intern("car").unwrap();
            d.intern("person").unwrap();
        }
        {
            let mut d = LabelDict::open(&path).unwrap();
            assert_eq!(d.len(), 2);
            assert_eq!(d.lookup("car"), Some(FIRST_LABEL));
            assert_eq!(d.lookup("person"), Some(FIRST_LABEL + 1));
            // New labels continue after the persisted ones.
            assert_eq!(d.intern("boat").unwrap(), FIRST_LABEL + 2);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_file_rejected() {
        let dir = std::env::temp_dir().join(format!("tasm-dict-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("labels.tsv");
        std::fs::write(&path, "5\tcar\n").unwrap(); // ids must start at 1
        assert!(LabelDict::open(&path).is_err());
        std::fs::write(&path, "not a dictionary\n").unwrap();
        assert!(LabelDict::open(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "tabs or newlines")]
    fn tab_in_label_rejected() {
        let mut d = LabelDict::in_memory();
        let _ = d.intern("bad\tlabel");
    }
}
