//! A disk-backed B+tree with fixed-size keys and values.
//!
//! This is the storage engine under the semantic index: 16-byte composite
//! keys ([`crate::key::RecordKey`]) map to 16-byte bounding-box values.
//! Interior nodes hold separator keys; all records live in leaves, which are
//! chained left-to-right for range scans. The paper's prototype used SQLite
//! for this role; we implement the B-tree directly (see DESIGN.md).
//!
//! Deletion removes entries in place and may leave pages underfull; pages
//! are never merged or returned to a free list. The semantic index is
//! append-dominated (detections are added, essentially never removed), so
//! lazy deletion is the right trade-off and is documented behaviour.

use crate::key::{RecordKey, KEY_LEN, VALUE_LEN};
use crate::pager::{Page, PageId, PageStore, Pager, PAGE_SIZE};
use std::io;
use tasm_video::Rect;

const MAGIC: &[u8; 4] = b"TSIX";
const VERSION: u8 = 1;

const NODE_INTERNAL: u8 = 1;
const NODE_LEAF: u8 = 2;

/// Leaf header: type(1) + pad(1) + count(2) + next_leaf(4).
const LEAF_HDR: usize = 8;
/// Records per leaf.
pub const LEAF_CAP: usize = (PAGE_SIZE - LEAF_HDR) / (KEY_LEN + VALUE_LEN); // 127

/// Internal header: type(1) + pad(1) + count(2).
const INT_HDR: usize = 4;
/// Keys per internal node (children = keys + 1).
pub const INT_CAP: usize = (PAGE_SIZE - INT_HDR - 4) / (KEY_LEN + 4); // 204
const INT_CHILDREN_OFF: usize = INT_HDR;
const INT_KEYS_OFF: usize = INT_CHILDREN_OFF + 4 * (INT_CAP + 1);

/// Bytes reserved in the meta page for a higher layer (label dictionary
/// pointers, sequence counters, …).
pub const USER_META_LEN: usize = 32;

/// Errors from the tree.
#[derive(Debug)]
pub enum TreeError {
    /// Backend I/O failure.
    Io(io::Error),
    /// The file is not a valid index (bad magic/version) or a page is
    /// structurally inconsistent.
    Corrupt(&'static str),
}

impl From<io::Error> for TreeError {
    fn from(e: io::Error) -> Self {
        TreeError::Io(e)
    }
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Io(e) => write!(f, "index I/O error: {e}"),
            TreeError::Corrupt(what) => write!(f, "index corrupt: {what}"),
        }
    }
}

impl std::error::Error for TreeError {}

#[derive(Debug, Clone)]
struct Meta {
    root: PageId,
    next_page: PageId,
    entry_count: u64,
    user: [u8; USER_META_LEN],
}

impl Meta {
    fn to_page(&self) -> Page {
        let mut p = Page::zeroed();
        p.data[0..4].copy_from_slice(MAGIC);
        p.data[4] = VERSION;
        p.data[8..12].copy_from_slice(&self.root.to_le_bytes());
        p.data[12..16].copy_from_slice(&self.next_page.to_le_bytes());
        p.data[16..24].copy_from_slice(&self.entry_count.to_le_bytes());
        p.data[24..24 + USER_META_LEN].copy_from_slice(&self.user);
        p
    }

    fn from_page(p: &Page) -> Result<Option<Meta>, TreeError> {
        if p.data[0..4] == [0, 0, 0, 0] {
            return Ok(None); // fresh file
        }
        if &p.data[0..4] != MAGIC {
            return Err(TreeError::Corrupt("bad magic"));
        }
        if p.data[4] != VERSION {
            return Err(TreeError::Corrupt("unsupported version"));
        }
        let le32 = |o: usize| u32::from_le_bytes(p.data[o..o + 4].try_into().unwrap());
        let le64 = |o: usize| u64::from_le_bytes(p.data[o..o + 8].try_into().unwrap());
        let mut user = [0u8; USER_META_LEN];
        user.copy_from_slice(&p.data[24..24 + USER_META_LEN]);
        Ok(Some(Meta {
            root: le32(8),
            next_page: le32(12),
            entry_count: le64(16),
            user,
        }))
    }
}

/// A B+tree over a page store.
pub struct BTree<S: PageStore> {
    pager: Pager<S>,
    meta: Meta,
}

type EncodedKey = [u8; KEY_LEN];

impl<S: PageStore> BTree<S> {
    /// Opens a tree, initializing a fresh one if the store is empty.
    pub fn open(store: S, cache_pages: usize) -> Result<Self, TreeError> {
        let mut pager = Pager::new(store, cache_pages);
        let meta_page = pager.read(0)?;
        let meta = match Meta::from_page(&meta_page)? {
            Some(m) => m,
            None => {
                // Fresh: page 1 is an empty leaf root.
                let meta = Meta {
                    root: 1,
                    next_page: 2,
                    entry_count: 0,
                    user: [0u8; USER_META_LEN],
                };
                let mut leaf = Page::zeroed();
                leaf.data[0] = NODE_LEAF;
                pager.write(1, leaf)?;
                pager.write(0, meta.to_page())?;
                meta
            }
        };
        Ok(BTree { pager, meta })
    }

    /// Number of records in the tree.
    pub fn len(&self) -> u64 {
        self.meta.entry_count
    }

    /// True if the tree holds no records.
    pub fn is_empty(&self) -> bool {
        self.meta.entry_count == 0
    }

    /// The higher layer's reserved metadata bytes.
    pub fn user_meta(&self) -> &[u8; USER_META_LEN] {
        &self.meta.user
    }

    /// Overwrites the reserved metadata bytes (persisted on flush).
    pub fn set_user_meta(&mut self, user: [u8; USER_META_LEN]) {
        self.meta.user = user;
    }

    /// Allocates a fresh page for the higher layer (e.g. dictionary chains).
    pub fn alloc_page(&mut self) -> PageId {
        let id = self.meta.next_page;
        self.meta.next_page += 1;
        id
    }

    /// Raw page read for the higher layer.
    pub fn read_page(&mut self, id: PageId) -> Result<Page, TreeError> {
        Ok(self.pager.read(id)?)
    }

    /// Raw page write for the higher layer.
    pub fn write_page(&mut self, id: PageId, page: Page) -> Result<(), TreeError> {
        Ok(self.pager.write(id, page)?)
    }

    /// Inserts a record; returns the previous value if the key existed.
    pub fn insert(
        &mut self,
        key: RecordKey,
        value: [u8; VALUE_LEN],
    ) -> Result<Option<Rect>, TreeError> {
        let ek = key.encode();
        let (replaced, split) = self.insert_rec(self.meta.root, &ek, &value)?;
        if let Some((sep, right)) = split {
            // Grow the tree: new root with two children.
            let old_root = self.meta.root;
            let new_root = self.alloc_page();
            let mut page = Page::zeroed();
            page.data[0] = NODE_INTERNAL;
            int_set_count(&mut page, 1);
            int_set_child(&mut page, 0, old_root);
            int_set_child(&mut page, 1, right);
            int_set_key(&mut page, 0, &sep);
            self.pager.write(new_root, page)?;
            self.meta.root = new_root;
        }
        if replaced.is_none() {
            self.meta.entry_count += 1;
        }
        Ok(replaced)
    }

    /// Point lookup.
    pub fn get(&mut self, key: &RecordKey) -> Result<Option<Rect>, TreeError> {
        let ek = key.encode();
        let leaf_id = self.find_leaf(&ek)?;
        let page = self.pager.read(leaf_id)?;
        let count = leaf_count(&page);
        match leaf_search(&page, count, &ek) {
            Ok(i) => Ok(Some(crate::key::decode_value(leaf_value(&page, i)))),
            Err(_) => Ok(None),
        }
    }

    /// Removes a record, returning its value if present. Lazy: pages are
    /// never merged.
    pub fn delete(&mut self, key: &RecordKey) -> Result<Option<Rect>, TreeError> {
        let ek = key.encode();
        let leaf_id = self.find_leaf(&ek)?;
        let mut page = self.pager.read(leaf_id)?;
        let count = leaf_count(&page);
        match leaf_search(&page, count, &ek) {
            Ok(i) => {
                let value = crate::key::decode_value(leaf_value(&page, i));
                leaf_remove(&mut page, count, i);
                self.pager.write(leaf_id, page)?;
                self.meta.entry_count -= 1;
                Ok(Some(value))
            }
            Err(_) => Ok(None),
        }
    }

    /// Returns all records with `lo <= key < hi` in key order.
    pub fn range(
        &mut self,
        lo: &RecordKey,
        hi: &RecordKey,
    ) -> Result<Vec<(RecordKey, Rect)>, TreeError> {
        let mut out = Vec::new();
        self.range_for_each(lo, hi, |k, v| {
            out.push((k, v));
            true
        })?;
        Ok(out)
    }

    /// Streams records with `lo <= key < hi` to `visit`; stop early by
    /// returning `false`.
    pub fn range_for_each(
        &mut self,
        lo: &RecordKey,
        hi: &RecordKey,
        mut visit: impl FnMut(RecordKey, Rect) -> bool,
    ) -> Result<(), TreeError> {
        let elo = lo.encode();
        let ehi = hi.encode();
        if elo >= ehi {
            return Ok(());
        }
        let mut leaf_id = self.find_leaf(&elo)?;
        loop {
            let page = self.pager.read(leaf_id)?;
            let count = leaf_count(&page);
            let start = match leaf_search(&page, count, &elo) {
                Ok(i) | Err(i) => i,
            };
            for i in start..count {
                let k = leaf_key(&page, i);
                if k >= &ehi[..] {
                    return Ok(());
                }
                let key = RecordKey::decode(k);
                let value = crate::key::decode_value(leaf_value(&page, i));
                if !visit(key, value) {
                    return Ok(());
                }
            }
            let next = leaf_next(&page);
            if next == 0 {
                return Ok(());
            }
            leaf_id = next;
        }
    }

    /// First record with `key >= from`, if any. Used for skip-scans
    /// (e.g. enumerating the distinct labels of a video).
    pub fn seek(&mut self, from: &RecordKey) -> Result<Option<(RecordKey, Rect)>, TreeError> {
        let ek = from.encode();
        let mut leaf_id = self.find_leaf(&ek)?;
        loop {
            let page = self.pager.read(leaf_id)?;
            let count = leaf_count(&page);
            let start = match leaf_search(&page, count, &ek) {
                Ok(i) | Err(i) => i,
            };
            if start < count {
                let key = RecordKey::decode(leaf_key(&page, start));
                let value = crate::key::decode_value(leaf_value(&page, start));
                return Ok(Some((key, value)));
            }
            let next = leaf_next(&page);
            if next == 0 {
                return Ok(None);
            }
            leaf_id = next;
        }
    }

    /// Flushes dirty pages (including metadata) to the backend.
    pub fn flush(&mut self) -> Result<(), TreeError> {
        self.pager.write(0, self.meta.to_page())?;
        self.pager.flush()?;
        Ok(())
    }

    /// Tree height (1 = a single leaf); used by tests and diagnostics.
    pub fn height(&mut self) -> Result<u32, TreeError> {
        let mut h = 1;
        let mut id = self.meta.root;
        loop {
            let page = self.pager.read(id)?;
            match page.data[0] {
                NODE_LEAF => return Ok(h),
                NODE_INTERNAL => {
                    id = int_child(&page, 0);
                    h += 1;
                }
                _ => return Err(TreeError::Corrupt("unknown node type")),
            }
        }
    }

    // --- internals ---

    fn find_leaf(&mut self, key: &EncodedKey) -> Result<PageId, TreeError> {
        let mut id = self.meta.root;
        loop {
            let page = self.pager.read(id)?;
            match page.data[0] {
                NODE_LEAF => return Ok(id),
                NODE_INTERNAL => {
                    let count = int_count(&page);
                    let idx = int_descend_index(&page, count, key);
                    id = int_child(&page, idx);
                }
                _ => return Err(TreeError::Corrupt("unknown node type")),
            }
        }
    }

    /// Recursive insert; returns (replaced value, optional split (sep, right)).
    #[allow(clippy::type_complexity)]
    fn insert_rec(
        &mut self,
        id: PageId,
        key: &EncodedKey,
        value: &[u8; VALUE_LEN],
    ) -> Result<(Option<Rect>, Option<(EncodedKey, PageId)>), TreeError> {
        let mut page = self.pager.read(id)?;
        match page.data[0] {
            NODE_LEAF => {
                let count = leaf_count(&page);
                match leaf_search(&page, count, key) {
                    Ok(i) => {
                        // Overwrite existing value.
                        let old = crate::key::decode_value(leaf_value(&page, i));
                        leaf_set_value(&mut page, i, value);
                        self.pager.write(id, page)?;
                        Ok((Some(old), None))
                    }
                    Err(i) => {
                        if count < LEAF_CAP {
                            leaf_insert_at(&mut page, count, i, key, value);
                            self.pager.write(id, page)?;
                            Ok((None, None))
                        } else {
                            let (sep, right) = self.split_leaf(id, &mut page, i, key, value)?;
                            Ok((None, Some((sep, right))))
                        }
                    }
                }
            }
            NODE_INTERNAL => {
                let count = int_count(&page);
                let idx = int_descend_index(&page, count, key);
                let child = int_child(&page, idx);
                let (replaced, split) = self.insert_rec(child, key, value)?;
                if let Some((sep, right)) = split {
                    // Re-read: the recursive call may have evicted our copy.
                    let mut page = self.pager.read(id)?;
                    let count = int_count(&page);
                    if count < INT_CAP {
                        int_insert_at(&mut page, count, idx, &sep, right);
                        self.pager.write(id, page)?;
                        Ok((replaced, None))
                    } else {
                        let up = self.split_internal(id, &mut page, idx, &sep, right)?;
                        Ok((replaced, Some(up)))
                    }
                } else {
                    Ok((replaced, None))
                }
            }
            _ => Err(TreeError::Corrupt("unknown node type")),
        }
    }

    /// Splits a full leaf while inserting (key, value) at position `pos`.
    fn split_leaf(
        &mut self,
        id: PageId,
        page: &mut Page,
        pos: usize,
        key: &EncodedKey,
        value: &[u8; VALUE_LEN],
    ) -> Result<(EncodedKey, PageId), TreeError> {
        // Materialize all entries plus the new one, then redistribute.
        let count = leaf_count(page);
        let mut entries: Vec<(EncodedKey, [u8; VALUE_LEN])> = Vec::with_capacity(count + 1);
        for i in 0..count {
            let mut k = [0u8; KEY_LEN];
            k.copy_from_slice(leaf_key(page, i));
            let mut v = [0u8; VALUE_LEN];
            v.copy_from_slice(leaf_value(page, i));
            entries.push((k, v));
        }
        entries.insert(pos, (*key, *value));
        let mid = entries.len() / 2;

        let right_id = self.alloc_page();
        let mut right = Page::zeroed();
        right.data[0] = NODE_LEAF;
        leaf_set_next(&mut right, leaf_next(page));
        for (i, (k, v)) in entries[mid..].iter().enumerate() {
            leaf_insert_at(&mut right, i, i, k, v);
        }

        let mut left = Page::zeroed();
        left.data[0] = NODE_LEAF;
        leaf_set_next(&mut left, right_id);
        for (i, (k, v)) in entries[..mid].iter().enumerate() {
            leaf_insert_at(&mut left, i, i, k, v);
        }

        let sep = entries[mid].0;
        self.pager.write(id, left)?;
        self.pager.write(right_id, right)?;
        Ok((sep, right_id))
    }

    /// Splits a full internal node while inserting (sep, right_child) at
    /// child slot `pos`.
    fn split_internal(
        &mut self,
        id: PageId,
        page: &mut Page,
        pos: usize,
        sep: &EncodedKey,
        right_child: PageId,
    ) -> Result<(EncodedKey, PageId), TreeError> {
        let count = int_count(page);
        let mut keys: Vec<EncodedKey> = Vec::with_capacity(count + 1);
        let mut children: Vec<PageId> = Vec::with_capacity(count + 2);
        for i in 0..count {
            let mut k = [0u8; KEY_LEN];
            k.copy_from_slice(int_key(page, i));
            keys.push(k);
        }
        for i in 0..=count {
            children.push(int_child(page, i));
        }
        keys.insert(pos, *sep);
        children.insert(pos + 1, right_child);

        let mid = keys.len() / 2; // keys[mid] moves up
        let up = keys[mid];

        let right_id = self.alloc_page();
        let mut right = Page::zeroed();
        right.data[0] = NODE_INTERNAL;
        let right_keys = &keys[mid + 1..];
        int_set_count(&mut right, right_keys.len());
        for (i, k) in right_keys.iter().enumerate() {
            int_set_key(&mut right, i, k);
        }
        for (i, &c) in children[mid + 1..].iter().enumerate() {
            int_set_child(&mut right, i, c);
        }

        let mut left = Page::zeroed();
        left.data[0] = NODE_INTERNAL;
        int_set_count(&mut left, mid);
        for (i, k) in keys[..mid].iter().enumerate() {
            int_set_key(&mut left, i, k);
        }
        for (i, &c) in children[..=mid].iter().enumerate() {
            int_set_child(&mut left, i, c);
        }

        self.pager.write(id, left)?;
        self.pager.write(right_id, right)?;
        Ok((up, right_id))
    }
}

// --- leaf page accessors ---

fn leaf_count(p: &Page) -> usize {
    u16::from_le_bytes(p.data[2..4].try_into().unwrap()) as usize
}

fn leaf_set_count(p: &mut Page, c: usize) {
    p.data[2..4].copy_from_slice(&(c as u16).to_le_bytes());
}

fn leaf_next(p: &Page) -> PageId {
    u32::from_le_bytes(p.data[4..8].try_into().unwrap())
}

fn leaf_set_next(p: &mut Page, n: PageId) {
    p.data[4..8].copy_from_slice(&n.to_le_bytes());
}

fn leaf_entry_off(i: usize) -> usize {
    LEAF_HDR + i * (KEY_LEN + VALUE_LEN)
}

fn leaf_key(p: &Page, i: usize) -> &[u8] {
    &p.data[leaf_entry_off(i)..leaf_entry_off(i) + KEY_LEN]
}

fn leaf_value(p: &Page, i: usize) -> &[u8] {
    &p.data[leaf_entry_off(i) + KEY_LEN..leaf_entry_off(i) + KEY_LEN + VALUE_LEN]
}

fn leaf_set_value(p: &mut Page, i: usize, v: &[u8; VALUE_LEN]) {
    let off = leaf_entry_off(i) + KEY_LEN;
    p.data[off..off + VALUE_LEN].copy_from_slice(v);
}

/// Binary search by encoded key: Ok(position) if found, Err(insert position).
fn leaf_search(p: &Page, count: usize, key: &EncodedKey) -> Result<usize, usize> {
    let mut lo = 0usize;
    let mut hi = count;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match leaf_key(p, mid).cmp(&key[..]) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

fn leaf_insert_at(p: &mut Page, count: usize, i: usize, key: &EncodedKey, value: &[u8; VALUE_LEN]) {
    debug_assert!(count < LEAF_CAP && i <= count);
    let entry = KEY_LEN + VALUE_LEN;
    // Shift entries [i, count) right by one slot.
    let src = leaf_entry_off(i);
    let dst = src + entry;
    let end = leaf_entry_off(count);
    p.data.copy_within(src..end, dst);
    p.data[src..src + KEY_LEN].copy_from_slice(key);
    p.data[src + KEY_LEN..src + entry].copy_from_slice(value);
    leaf_set_count(p, count + 1);
}

fn leaf_remove(p: &mut Page, count: usize, i: usize) {
    debug_assert!(i < count);
    let entry = KEY_LEN + VALUE_LEN;
    let dst = leaf_entry_off(i);
    let src = dst + entry;
    let end = leaf_entry_off(count);
    p.data.copy_within(src..end, dst);
    leaf_set_count(p, count - 1);
}

// --- internal page accessors ---

fn int_count(p: &Page) -> usize {
    u16::from_le_bytes(p.data[2..4].try_into().unwrap()) as usize
}

fn int_set_count(p: &mut Page, c: usize) {
    p.data[2..4].copy_from_slice(&(c as u16).to_le_bytes());
}

fn int_child(p: &Page, i: usize) -> PageId {
    let off = INT_CHILDREN_OFF + i * 4;
    u32::from_le_bytes(p.data[off..off + 4].try_into().unwrap())
}

fn int_set_child(p: &mut Page, i: usize, c: PageId) {
    let off = INT_CHILDREN_OFF + i * 4;
    p.data[off..off + 4].copy_from_slice(&c.to_le_bytes());
}

fn int_key(p: &Page, i: usize) -> &[u8] {
    let off = INT_KEYS_OFF + i * KEY_LEN;
    &p.data[off..off + KEY_LEN]
}

fn int_set_key(p: &mut Page, i: usize, k: &EncodedKey) {
    let off = INT_KEYS_OFF + i * KEY_LEN;
    p.data[off..off + KEY_LEN].copy_from_slice(k);
}

/// Child index to descend into for `key`: the first child whose key range
/// can contain it (child i covers keys in [key[i-1], key[i])).
fn int_descend_index(p: &Page, count: usize, key: &EncodedKey) -> usize {
    let mut lo = 0usize;
    let mut hi = count;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if int_key(p, mid) <= &key[..] {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

fn int_insert_at(p: &mut Page, count: usize, child_idx: usize, sep: &EncodedKey, right: PageId) {
    debug_assert!(count < INT_CAP);
    // Shift keys [child_idx, count) and children [child_idx+1, count+1).
    let ko = INT_KEYS_OFF + child_idx * KEY_LEN;
    let kend = INT_KEYS_OFF + count * KEY_LEN;
    p.data.copy_within(ko..kend, ko + KEY_LEN);
    let co = INT_CHILDREN_OFF + (child_idx + 1) * 4;
    let cend = INT_CHILDREN_OFF + (count + 1) * 4;
    p.data.copy_within(co..cend, co + 4);
    p.data[ko..ko + KEY_LEN].copy_from_slice(sep);
    p.data[co..co + 4].copy_from_slice(&right.to_le_bytes());
    int_set_count(p, count + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::encode_value;
    use crate::pager::MemStore;

    fn mem_tree() -> BTree<MemStore> {
        BTree::open(MemStore::default(), 64).unwrap()
    }

    fn key(n: u32) -> RecordKey {
        RecordKey::new(n / 1000, (n / 100) % 10, n % 100, n)
    }

    fn value(n: u32) -> [u8; VALUE_LEN] {
        encode_value(&Rect::new(n, n + 1, n + 2, n + 3))
    }

    #[test]
    fn insert_get_single() {
        let mut t = mem_tree();
        assert!(t.is_empty());
        t.insert(key(5), value(5)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&key(5)).unwrap(), Some(Rect::new(5, 6, 7, 8)));
        assert_eq!(t.get(&key(6)).unwrap(), None);
    }

    #[test]
    fn insert_overwrites_duplicate_key() {
        let mut t = mem_tree();
        t.insert(key(1), value(1)).unwrap();
        let old = t.insert(key(1), value(99)).unwrap();
        assert_eq!(old, Some(Rect::new(1, 2, 3, 4)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&key(1)).unwrap(), Some(Rect::new(99, 100, 101, 102)));
    }

    #[test]
    fn many_inserts_split_leaves_and_internals() {
        let mut t = mem_tree();
        let n = 50_000u32;
        // Insert in a scrambled order to exercise splits everywhere.
        let mut keys: Vec<u32> = (0..n).collect();
        let mut state = 12345u64;
        for i in (1..keys.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            keys.swap(i, j);
        }
        for &k in &keys {
            t.insert(RecordKey::new(0, 0, k, 0), value(k)).unwrap();
        }
        assert_eq!(t.len(), n as u64);
        assert!(
            t.height().unwrap() >= 3,
            "tree should have grown: height {}",
            t.height().unwrap()
        );
        // Spot-check.
        for k in [0u32, 1, 127, 128, 4095, 4096, n - 1] {
            assert_eq!(
                t.get(&RecordKey::new(0, 0, k, 0)).unwrap(),
                Some(Rect::new(k, k + 1, k + 2, k + 3)),
                "key {k}"
            );
        }
        // Full ordered scan sees every key exactly once, in order.
        let all = t
            .range(&RecordKey::new(0, 0, 0, 0), &RecordKey::new(0, 1, 0, 0))
            .unwrap();
        assert_eq!(all.len(), n as usize);
        for (i, (k, _)) in all.iter().enumerate() {
            assert_eq!(k.frame, i as u32);
        }
    }

    #[test]
    fn range_scan_respects_bounds() {
        let mut t = mem_tree();
        for f in 0..100u32 {
            t.insert(RecordKey::new(1, 2, f, 0), value(f)).unwrap();
        }
        // Other (video, label) pairs must not leak into the range.
        t.insert(RecordKey::new(1, 1, 50, 0), value(999)).unwrap();
        t.insert(RecordKey::new(1, 3, 50, 0), value(999)).unwrap();
        t.insert(RecordKey::new(2, 2, 50, 0), value(999)).unwrap();

        let hits = t
            .range(
                &RecordKey::range_start(1, 2, 10),
                &RecordKey::range_start(1, 2, 20),
            )
            .unwrap();
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|(k, _)| k.video == 1 && k.label == 2));
        assert_eq!(hits[0].0.frame, 10);
        assert_eq!(hits[9].0.frame, 19);
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let mut t = mem_tree();
        t.insert(key(1), value(1)).unwrap();
        assert!(t
            .range(&RecordKey::new(5, 0, 0, 0), &RecordKey::new(4, 0, 0, 0))
            .unwrap()
            .is_empty());
        assert!(t
            .range(&RecordKey::new(3, 0, 0, 0), &RecordKey::new(3, 0, 0, 0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn seek_finds_next_record() {
        let mut t = mem_tree();
        t.insert(RecordKey::new(1, 5, 10, 0), value(1)).unwrap();
        t.insert(RecordKey::new(1, 9, 3, 0), value(2)).unwrap();
        let (k, _) = t.seek(&RecordKey::new(1, 6, 0, 0)).unwrap().unwrap();
        assert_eq!((k.video, k.label, k.frame), (1, 9, 3));
        assert!(t.seek(&RecordKey::new(2, 0, 0, 0)).unwrap().is_none());
        let (k, _) = t.seek(&RecordKey::new(0, 0, 0, 0)).unwrap().unwrap();
        assert_eq!((k.video, k.label), (1, 5));
    }

    #[test]
    fn delete_removes_records() {
        let mut t = mem_tree();
        for f in 0..300u32 {
            t.insert(RecordKey::new(0, 0, f, 0), value(f)).unwrap();
        }
        assert_eq!(
            t.delete(&RecordKey::new(0, 0, 150, 0)).unwrap(),
            Some(Rect::new(150, 151, 152, 153))
        );
        assert_eq!(t.delete(&RecordKey::new(0, 0, 150, 0)).unwrap(), None);
        assert_eq!(t.len(), 299);
        assert_eq!(t.get(&RecordKey::new(0, 0, 150, 0)).unwrap(), None);
        // Neighbours intact.
        assert!(t.get(&RecordKey::new(0, 0, 149, 0)).unwrap().is_some());
        assert!(t.get(&RecordKey::new(0, 0, 151, 0)).unwrap().is_some());
    }

    #[test]
    fn early_termination_of_streaming_scan() {
        let mut t = mem_tree();
        for f in 0..100u32 {
            t.insert(RecordKey::new(0, 0, f, 0), value(f)).unwrap();
        }
        let mut seen = 0;
        t.range_for_each(
            &RecordKey::new(0, 0, 0, 0),
            &RecordKey::new(0, 0, 100, 0),
            |_, _| {
                seen += 1;
                seen < 7
            },
        )
        .unwrap();
        assert_eq!(seen, 7);
    }

    #[test]
    fn persistence_across_reopen() {
        let mut store = MemStore::default();
        {
            let mut t = BTree::open(&mut store, 16).unwrap();
            for f in 0..1000u32 {
                t.insert(RecordKey::new(3, 1, f, 0), value(f)).unwrap();
            }
            let mut user = [0u8; USER_META_LEN];
            user[0] = 0xEE;
            t.set_user_meta(user);
            t.flush().unwrap();
        }
        {
            let mut t = BTree::open(&mut store, 16).unwrap();
            assert_eq!(t.len(), 1000);
            assert_eq!(t.user_meta()[0], 0xEE);
            assert_eq!(
                t.get(&RecordKey::new(3, 1, 567, 0)).unwrap(),
                Some(Rect::new(567, 568, 569, 570))
            );
        }
    }

    #[test]
    fn small_cache_still_correct() {
        // Force constant eviction with a tiny cache.
        let mut t = BTree::open(MemStore::default(), 8).unwrap();
        for f in 0..5000u32 {
            t.insert(RecordKey::new(0, 0, f, 0), value(f)).unwrap();
        }
        for f in (0..5000u32).step_by(371) {
            assert_eq!(
                t.get(&RecordKey::new(0, 0, f, 0)).unwrap(),
                Some(Rect::new(f, f + 1, f + 2, f + 3))
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::key::encode_value;
    use crate::pager::MemStore;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The tree must agree with a reference BTreeMap under arbitrary
        /// interleavings of inserts, deletes, and range queries.
        #[test]
        fn prop_matches_btreemap(ops in proptest::collection::vec(
            (0u8..3, 0u32..500, 0u32..500), 1..300
        )) {
            let mut tree = BTree::open(MemStore::default(), 16).unwrap();
            let mut model: BTreeMap<RecordKey, Rect> = BTreeMap::new();
            for (op, a, b) in ops {
                let k = RecordKey::new(0, a % 3, a, b % 4);
                match op {
                    0 => {
                        let r = Rect::new(a, b, a + 1, b + 1);
                        tree.insert(k, encode_value(&r)).unwrap();
                        model.insert(k, r);
                    }
                    1 => {
                        let got = tree.delete(&k).unwrap();
                        let expected = model.remove(&k);
                        prop_assert_eq!(got, expected);
                    }
                    _ => {
                        let lo = RecordKey::new(0, a % 3, a.min(b), 0);
                        let hi = RecordKey::new(0, a % 3, a.max(b), 4);
                        let got = tree.range(&lo, &hi).unwrap();
                        let expected: Vec<(RecordKey, Rect)> = model
                            .range(lo..hi)
                            .map(|(k, v)| (*k, *v))
                            .collect();
                        prop_assert_eq!(got, expected);
                    }
                }
                prop_assert_eq!(tree.len(), model.len() as u64);
            }
        }
    }
}
