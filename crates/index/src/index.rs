//! The semantic index: TASM's store of object metadata (§3.2–3.3).
//!
//! The index maps `(video, label, time)` to object bounding boxes. It is
//! populated incrementally through `AddMetadata` as the query processor (or
//! an edge camera) detects objects, and queried by the storage manager both
//! to answer `Scan` calls and to design tile layouts.
//!
//! Alongside detections, the index records which frames a detector has
//! *processed*: TASM's lazy strategies must distinguish "no objects found on
//! this frame" from "this frame was never analyzed" (§4.3).

use crate::btree::{BTree, TreeError, USER_META_LEN};
use crate::dict::{LabelDict, FIRST_LABEL, PROCESSED_LABEL};
use crate::key::{encode_value, RecordKey};
use crate::pager::{FileStore, MemStore, PageStore};
use std::ops::Range;
use std::path::Path;
use tasm_video::Rect;

/// Result alias for index operations.
pub type IndexResult<T> = Result<T, TreeError>;

/// A detection returned for a specific queried label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Frame the object appears on.
    pub frame: u32,
    /// Object bounding box in luma pixel coordinates.
    pub bbox: Rect,
}

/// A detection with its label, for whole-video queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledDetection {
    /// Object class.
    pub label: String,
    /// Frame the object appears on.
    pub frame: u32,
    /// Object bounding box in luma pixel coordinates.
    pub bbox: Rect,
}

/// Object-safe interface the storage manager programs against.
pub trait SemanticIndex {
    /// Records one bounding box for `label` on `frame` of `video`
    /// (the paper's `AddMetadata`).
    fn add_metadata(&mut self, video: u32, label: &str, frame: u32, bbox: Rect) -> IndexResult<()>;

    /// All detections of `label` in `frames`, ordered by frame.
    fn query(&mut self, video: u32, label: &str, frames: Range<u32>)
        -> IndexResult<Vec<Detection>>;

    /// All detections of any label in `frames`.
    fn query_all(&mut self, video: u32, frames: Range<u32>) -> IndexResult<Vec<LabeledDetection>>;

    /// Distinct labels with at least one detection in `video`.
    fn labels(&mut self, video: u32) -> IndexResult<Vec<String>>;

    /// Marks `frame` as processed by a detector.
    fn mark_processed(&mut self, video: u32, frame: u32) -> IndexResult<()>;

    /// Number of frames in `frames` already processed by a detector.
    fn processed_count(&mut self, video: u32, frames: Range<u32>) -> IndexResult<u32>;

    /// Total detections stored (all videos), excluding processed markers.
    fn detection_count(&self) -> u64;

    /// Persists buffered state.
    fn flush(&mut self) -> IndexResult<()>;
}

/// B+tree-backed semantic index, generic over the page backend.
pub struct Index<S: PageStore> {
    tree: BTree<S>,
    dict: LabelDict,
    /// Monotonic uniquifier for keys; persisted in the tree's user metadata.
    seq: u64,
    /// Detections stored (excludes processed markers); persisted likewise.
    detections: u64,
}

/// An ephemeral index for tests and benchmarks.
pub type MemoryIndex = Index<MemStore>;

/// A disk-backed index (page file + label dictionary side file).
pub type PersistentIndex = Index<FileStore>;

impl MemoryIndex {
    /// Creates an empty in-memory index.
    pub fn in_memory() -> Self {
        Index::from_parts(
            BTree::open(MemStore::default(), 256).expect("in-memory open cannot fail"),
            LabelDict::in_memory(),
        )
    }
}

impl Default for MemoryIndex {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl PersistentIndex {
    /// Opens (or creates) a persistent index inside `dir`.
    pub fn open(dir: &Path) -> IndexResult<Self> {
        std::fs::create_dir_all(dir).map_err(TreeError::Io)?;
        let store = FileStore::open(&dir.join("index.pages")).map_err(TreeError::Io)?;
        let tree = BTree::open(store, 1024)?;
        let dict = LabelDict::open(&dir.join("labels.tsv")).map_err(TreeError::Io)?;
        Ok(Index::from_parts(tree, dict))
    }
}

impl<S: PageStore> Index<S> {
    fn from_parts(tree: BTree<S>, dict: LabelDict) -> Self {
        let user = tree.user_meta();
        let seq = u64::from_le_bytes(user[0..8].try_into().unwrap());
        let detections = u64::from_le_bytes(user[8..16].try_into().unwrap());
        Index {
            tree,
            dict,
            seq,
            detections,
        }
    }

    fn next_seq(&mut self) -> u32 {
        self.seq += 1;
        (self.seq & 0xFFFF_FFFF) as u32
    }

    /// The underlying tree length, markers included (diagnostics).
    pub fn record_count(&self) -> u64 {
        self.tree.len()
    }
}

impl<S: PageStore> SemanticIndex for Index<S> {
    fn add_metadata(&mut self, video: u32, label: &str, frame: u32, bbox: Rect) -> IndexResult<()> {
        let label_id = self.dict.intern(label).map_err(TreeError::Io)?;
        let seq = self.next_seq();
        self.tree.insert(
            RecordKey::new(video, label_id, frame, seq),
            encode_value(&bbox),
        )?;
        self.detections += 1;
        Ok(())
    }

    fn query(
        &mut self,
        video: u32,
        label: &str,
        frames: Range<u32>,
    ) -> IndexResult<Vec<Detection>> {
        let Some(label_id) = self.dict.lookup(label) else {
            return Ok(Vec::new());
        };
        if frames.start >= frames.end {
            return Ok(Vec::new());
        }
        let lo = RecordKey::range_start(video, label_id, frames.start);
        let hi = RecordKey::range_start(video, label_id, frames.end);
        Ok(self
            .tree
            .range(&lo, &hi)?
            .into_iter()
            .map(|(k, bbox)| Detection {
                frame: k.frame,
                bbox,
            })
            .collect())
    }

    fn query_all(&mut self, video: u32, frames: Range<u32>) -> IndexResult<Vec<LabeledDetection>> {
        let mut out = Vec::new();
        for label in self.labels(video)? {
            let label_owned = label.clone();
            for d in self.query(video, &label, frames.clone())? {
                out.push(LabeledDetection {
                    label: label_owned.clone(),
                    frame: d.frame,
                    bbox: d.bbox,
                });
            }
        }
        Ok(out)
    }

    fn labels(&mut self, video: u32) -> IndexResult<Vec<String>> {
        // Skip-scan: jump from label to label instead of reading every record.
        let mut out = Vec::new();
        let mut probe = RecordKey::new(video, FIRST_LABEL, 0, 0);
        while let Some((k, _)) = self.tree.seek(&probe)? {
            if k.video != video {
                break;
            }
            if let Some(name) = self.dict.name(k.label) {
                out.push(name.to_string());
            }
            let Some(next_label) = k.label.checked_add(1) else {
                break;
            };
            probe = RecordKey::new(video, next_label, 0, 0);
        }
        Ok(out)
    }

    fn mark_processed(&mut self, video: u32, frame: u32) -> IndexResult<()> {
        // Idempotent: seq 0, so re-marking overwrites the same record.
        self.tree.insert(
            RecordKey::new(video, PROCESSED_LABEL, frame, 0),
            encode_value(&Rect::new(0, 0, 0, 0)),
        )?;
        Ok(())
    }

    fn processed_count(&mut self, video: u32, frames: Range<u32>) -> IndexResult<u32> {
        if frames.start >= frames.end {
            return Ok(0);
        }
        let lo = RecordKey::range_start(video, PROCESSED_LABEL, frames.start);
        let hi = RecordKey::range_start(video, PROCESSED_LABEL, frames.end);
        let mut count = 0u32;
        self.tree.range_for_each(&lo, &hi, |_, _| {
            count += 1;
            true
        })?;
        Ok(count)
    }

    fn detection_count(&self) -> u64 {
        self.detections
    }

    fn flush(&mut self) -> IndexResult<()> {
        let mut user = [0u8; USER_META_LEN];
        user[0..8].copy_from_slice(&self.seq.to_le_bytes());
        user[8..16].copy_from_slice(&self.detections.to_le_bytes());
        self.tree.set_user_meta(user);
        self.tree.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbox(n: u32) -> Rect {
        Rect::new(n * 10, n * 10, 32, 32)
    }

    #[test]
    fn add_and_query_single_label() {
        let mut idx = MemoryIndex::in_memory();
        idx.add_metadata(1, "car", 10, bbox(1)).unwrap();
        idx.add_metadata(1, "car", 12, bbox(2)).unwrap();
        idx.add_metadata(1, "car", 30, bbox(3)).unwrap();
        let hits = idx.query(1, "car", 0..20).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(
            hits[0],
            Detection {
                frame: 10,
                bbox: bbox(1)
            }
        );
        assert_eq!(
            hits[1],
            Detection {
                frame: 12,
                bbox: bbox(2)
            }
        );
    }

    #[test]
    fn multiple_boxes_same_frame_kept() {
        let mut idx = MemoryIndex::in_memory();
        idx.add_metadata(0, "person", 5, bbox(1)).unwrap();
        idx.add_metadata(0, "person", 5, bbox(2)).unwrap();
        idx.add_metadata(0, "person", 5, bbox(3)).unwrap();
        assert_eq!(idx.query(0, "person", 5..6).unwrap().len(), 3);
        assert_eq!(idx.detection_count(), 3);
    }

    #[test]
    fn unknown_label_and_video_return_empty() {
        let mut idx = MemoryIndex::in_memory();
        idx.add_metadata(0, "car", 1, bbox(1)).unwrap();
        assert!(idx.query(0, "giraffe", 0..100).unwrap().is_empty());
        assert!(idx.query(7, "car", 0..100).unwrap().is_empty());
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 50..10;
        assert!(idx.query(0, "car", inverted).unwrap().is_empty());
    }

    #[test]
    fn labels_are_per_video() {
        let mut idx = MemoryIndex::in_memory();
        idx.add_metadata(0, "car", 1, bbox(1)).unwrap();
        idx.add_metadata(0, "person", 2, bbox(2)).unwrap();
        idx.add_metadata(1, "bird", 3, bbox(3)).unwrap();
        let mut l0 = idx.labels(0).unwrap();
        l0.sort();
        assert_eq!(l0, vec!["car", "person"]);
        assert_eq!(idx.labels(1).unwrap(), vec!["bird"]);
        assert!(idx.labels(2).unwrap().is_empty());
    }

    #[test]
    fn query_all_includes_every_label() {
        let mut idx = MemoryIndex::in_memory();
        idx.add_metadata(0, "car", 1, bbox(1)).unwrap();
        idx.add_metadata(0, "person", 1, bbox(2)).unwrap();
        idx.add_metadata(0, "person", 50, bbox(3)).unwrap();
        let all = idx.query_all(0, 0..10).unwrap();
        assert_eq!(all.len(), 2);
        assert!(all.iter().any(|d| d.label == "car" && d.frame == 1));
        assert!(all.iter().any(|d| d.label == "person" && d.frame == 1));
    }

    #[test]
    fn processed_markers_do_not_pollute_labels_or_counts() {
        let mut idx = MemoryIndex::in_memory();
        idx.mark_processed(0, 1).unwrap();
        idx.mark_processed(0, 2).unwrap();
        idx.mark_processed(0, 2).unwrap(); // idempotent
        idx.add_metadata(0, "car", 1, bbox(1)).unwrap();
        assert_eq!(idx.labels(0).unwrap(), vec!["car"]);
        assert_eq!(idx.detection_count(), 1);
        assert_eq!(idx.processed_count(0, 0..10).unwrap(), 2);
        assert_eq!(idx.processed_count(0, 3..10).unwrap(), 0);
        assert_eq!(idx.processed_count(1, 0..10).unwrap(), 0);
    }

    #[test]
    fn persistent_index_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("tasm-idx-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut idx = PersistentIndex::open(&dir).unwrap();
            for f in 0..500u32 {
                idx.add_metadata(3, "car", f, bbox(f)).unwrap();
                if f % 2 == 0 {
                    idx.mark_processed(3, f).unwrap();
                }
            }
            idx.add_metadata(3, "person", 7, bbox(7)).unwrap();
            idx.flush().unwrap();
        }
        {
            let mut idx = PersistentIndex::open(&dir).unwrap();
            assert_eq!(idx.detection_count(), 501);
            assert_eq!(idx.query(3, "car", 100..110).unwrap().len(), 10);
            let mut labels = idx.labels(3).unwrap();
            labels.sort();
            assert_eq!(labels, vec!["car", "person"]);
            assert_eq!(idx.processed_count(3, 0..500).unwrap(), 250);
            // Sequence counter restored: new inserts do not collide.
            idx.add_metadata(3, "car", 7, bbox(1000)).unwrap();
            assert_eq!(idx.detection_count(), 502);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn large_volume_query_window() {
        let mut idx = MemoryIndex::in_memory();
        // 20k detections across two labels and 2000 frames.
        for f in 0..2000u32 {
            for i in 0..5 {
                idx.add_metadata(0, if i % 2 == 0 { "car" } else { "person" }, f, bbox(i))
                    .unwrap();
            }
        }
        let cars = idx.query(0, "car", 500..600).unwrap();
        assert_eq!(cars.len(), 3 * 100);
        assert!(cars.windows(2).all(|w| w[0].frame <= w[1].frame));
    }
}
