//! Semantic index substrate for the TASM reproduction.
//!
//! TASM maintains metadata about video contents — object labels and bounding
//! boxes — in a *semantic index* implemented as "a B-tree clustered on
//! (video, label, time)" (§3.2 of the paper). The paper's prototype stores
//! this in SQLite; here the index is built from scratch:
//!
//! * [`pager`] — 4 KiB pages over a file (or memory) with a bounded
//!   write-back cache;
//! * [`btree`] — a B+tree with fixed-size composite keys, chained leaves for
//!   range scans, and skip-scan `seek`;
//! * [`dict`] — the label dictionary interning class names to key ids;
//! * [`index`] — the [`SemanticIndex`] trait plus its persistent and
//!   in-memory implementations, including processed-frame tracking used by
//!   TASM's lazy detection strategies (§4.3);
//! * [`spatial`] — the grid spatial index the paper proposes for
//!   accelerating conjunctive predicates (§3.2);
//! * [`tiered`] — the disk-resident SSTable tier: a WAL'd memtable flushed
//!   to immutable prefix-compressed sorted runs with resident bloom and
//!   frame-range filters, plus size-tiered compaction.

pub mod btree;
pub mod dict;
pub mod index;
pub mod key;
pub mod pager;
pub mod spatial;
pub mod tiered;

pub use btree::{BTree, TreeError};
pub use dict::LabelDict;
pub use index::{
    Detection, Index, IndexResult, LabeledDetection, MemoryIndex, PersistentIndex, SemanticIndex,
};
pub use key::RecordKey;
pub use spatial::SpatialGrid;
pub use tiered::{RealTierIo, TierIo, TierIssue, TierStats, TieredIndex};
