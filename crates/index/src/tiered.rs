//! The disk-resident tier of the semantic index: an LSM/SSTable design.
//!
//! At production scale the semantic index is billions of labeled boxes — far
//! too large for the resident B-tree page cache, and dominated by *append*
//! traffic (detectors emit boxes in frame order). [`TieredIndex`] stores the
//! index the way log-structured storage engines do:
//!
//! * a **memtable** (ordered map) absorbs writes; every mutation is also
//!   buffered for the **write-ahead log**, appended durably at [`flush`]
//!   time so a crash never loses acknowledged state;
//! * when the memtable exceeds its limit it is written as an **immutable
//!   sorted run** with prefix-compressed `(video, label, frame)` keys
//!   (restart points every [`RESTART_INTERVAL`] entries keep random seeks
//!   cheap);
//! * each run carries a **bloom filter** over `(video, label)` pairs and a
//!   **frame-range table**, both resident, so planner lookups skip runs
//!   without touching disk;
//! * **size-tiered compaction** merges the smallest runs when the run count
//!   exceeds [`MAX_RUNS`], bounding read amplification.
//!
//! Every byte written goes through the [`TierIo`] trait so the crash-point
//! sweep in `tests/` can inject faults at any WAL append, run publish, or
//! compaction step; recovery (run roll-forward + WAL replay with an
//! operation-sequence watermark) always lands in exactly one of the states
//! that existed at a `flush` boundary.
//!
//! [`flush`]: SemanticIndex::flush

use crate::btree::TreeError;
use crate::dict::{FIRST_LABEL, PROCESSED_LABEL};
use crate::index::{Detection, IndexResult, LabeledDetection, SemanticIndex};
use crate::key::{decode_value, encode_value, RecordKey, KEY_LEN, VALUE_LEN};
use std::collections::BTreeMap;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tasm_video::Rect;

/// Entries between full-key restart points in a run's data region.
pub const RESTART_INTERVAL: usize = 16;

/// Memtable entries that trigger a flush to a sorted run.
pub const DEFAULT_MEMTABLE_LIMIT: usize = 32_768;

/// Maximum runs before size-tiered compaction merges the smallest
/// [`COMPACTION_FANIN`] of them.
pub const MAX_RUNS: usize = 4;

/// Runs merged per compaction.
pub const COMPACTION_FANIN: usize = 4;

/// Bloom filter bits per `(video, label)` pair.
const BLOOM_BITS_PER_KEY: u32 = 10;

/// Bloom filter hash count.
const BLOOM_HASHES: u32 = 4;

/// Magic at the head of a run file.
const RUN_MAGIC: [u8; 4] = *b"TSR1";

/// Magic at the tail of a run footer.
const FOOTER_MAGIC: [u8; 4] = *b"TSRF";

/// Fixed footer length: 8 × u64 + crc32 + magic.
const FOOTER_LEN: usize = 8 * 8 + 4 + 4;

/// The write-ahead log file name.
const WAL_NAME: &str = "wal.log";

/// Suffix of in-flight run files (removed on recovery).
const TMP_SUFFIX: &str = ".tmp";

// ---------------------------------------------------------------------
// CRC32 (IEEE), table built at compile time
// ---------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// The injectable I/O surface
// ---------------------------------------------------------------------

/// The filesystem surface the tiered index writes through. Mirrors the
/// storage layer's `StorageIo` shim (this crate sits below `tasm-core`, so
/// it declares its own narrow trait; core adapts its `StorageIo` to this),
/// which is what lets one fault injector cover tile commits *and* index
/// WAL/run/compaction writes in the same sweep.
pub trait TierIo: Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Durably writes a whole file (create/truncate + fsync).
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Durably appends to a file, creating it if absent.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` to `to` and makes the rename durable.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a single file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Directory entry durability barrier.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Directory entries, sorted (deterministic recovery order).
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Whether a path exists.
    fn exists(&self, path: &Path) -> bool;
}

/// Production [`TierIo`]: fsynced writes and appends, renames made durable
/// by fsyncing the destination's parent directory.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealTierIo;

impl RealTierIo {
    fn fsync_dir(dir: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            let handle = std::fs::File::open(dir)?;
            if let Err(e) = handle.sync_all() {
                if !matches!(
                    e.kind(),
                    io::ErrorKind::Unsupported | io::ErrorKind::InvalidInput
                ) {
                    return Err(e);
                }
            }
        }
        #[cfg(not(unix))]
        let _ = dir;
        Ok(())
    }
}

impl TierIo for RealTierIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::File::create(path)?;
        f.write_all(data)?;
        f.sync_all()
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(data)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)?;
        match to.parent() {
            Some(parent) if !parent.as_os_str().is_empty() => Self::fsync_dir(parent),
            _ => Self::fsync_dir(Path::new(".")),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        Self::fsync_dir(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        Ok(entries)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ---------------------------------------------------------------------
// Bloom filter over (video, label)
// ---------------------------------------------------------------------

fn fnv64(data: &[u8], mut hash: u64) -> u64 {
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn bloom_hashes(video: u32, label: u32) -> (u64, u64) {
    let mut key = [0u8; 8];
    key[0..4].copy_from_slice(&video.to_be_bytes());
    key[4..8].copy_from_slice(&label.to_be_bytes());
    let h1 = fnv64(&key, 0xCBF2_9CE4_8422_2325);
    let h2 = fnv64(&key, 0x9AE1_6A3B_2F90_404F) | 1; // odd: full cycle
    (h1, h2)
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Bloom {
    bits: u32,
    hashes: u32,
    data: Vec<u8>,
}

impl Bloom {
    fn build(pairs: &[(u32, u32)]) -> Bloom {
        let bits = (pairs.len() as u32 * BLOOM_BITS_PER_KEY).max(64);
        let mut bloom = Bloom {
            bits,
            hashes: BLOOM_HASHES,
            data: vec![0u8; bits.div_ceil(8) as usize],
        };
        for &(video, label) in pairs {
            let (h1, h2) = bloom_hashes(video, label);
            for i in 0..bloom.hashes as u64 {
                let bit = (h1.wrapping_add(i.wrapping_mul(h2)) % bloom.bits as u64) as usize;
                bloom.data[bit / 8] |= 1 << (bit % 8);
            }
        }
        bloom
    }

    fn may_contain(&self, video: u32, label: u32) -> bool {
        if self.bits == 0 {
            return false;
        }
        let (h1, h2) = bloom_hashes(video, label);
        (0..self.hashes as u64).all(|i| {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2)) % self.bits as u64) as usize;
            self.data[bit / 8] & (1 << (bit % 8)) != 0
        })
    }
}

// ---------------------------------------------------------------------
// Run files
// ---------------------------------------------------------------------

/// Resident per-`(video, label)` summary: frame bounds and entry count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RangeFilter {
    video: u32,
    label: u32,
    min_frame: u32,
    max_frame: u32,
    count: u64,
}

/// The resident part of one immutable sorted run: everything needed to
/// decide whether a lookup must read the file, plus the restart index that
/// turns a read into a bounded scan. The prefix-compressed data region
/// itself stays on disk.
struct Run {
    id: u64,
    path: PathBuf,
    file_len: u64,
    data_len: u64,
    entry_count: u64,
    max_opseq: u64,
    detections_cum: u64,
    restarts: Vec<(RecordKey, u32)>,
    ranges: Vec<RangeFilter>,
    bloom: Bloom,
    /// Run ids this run was compacted from (roll-forward deletes them).
    inputs: Vec<u64>,
    /// Cumulative label-dictionary snapshot at flush time, in id order.
    dict: Vec<String>,
}

fn run_file_name(id: u64) -> String {
    format!("run_{id:08}.sst")
}

fn parse_run_name(name: &str) -> Option<u64> {
    let body = name.strip_prefix("run_")?.strip_suffix(".sst")?;
    if body.len() != 8 {
        return None;
    }
    body.parse().ok()
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TreeError> {
        if self.data.len() - self.pos < n {
            return Err(TreeError::Corrupt("run region truncated"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, TreeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, TreeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, TreeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Serializes a sorted set of records into run-file bytes.
#[allow(clippy::too_many_arguments)]
fn encode_run(
    entries: &BTreeMap<RecordKey, Rect>,
    max_opseq: u64,
    detections_cum: u64,
    inputs: &[u64],
    dict: &[String],
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&RUN_MAGIC);

    // Data region: prefix-compressed keys, fixed 16-byte values.
    let data_start = out.len();
    let mut restarts: Vec<([u8; KEY_LEN], u32)> = Vec::new();
    let mut prev = [0u8; KEY_LEN];
    for (i, (key, rect)) in entries.iter().enumerate() {
        let enc = key.encode();
        let offset = (out.len() - data_start) as u32;
        let shared = if i % RESTART_INTERVAL == 0 {
            restarts.push((enc, offset));
            0
        } else {
            enc.iter()
                .zip(prev.iter())
                .take_while(|(a, b)| a == b)
                .count()
        };
        out.push(shared as u8);
        out.push((KEY_LEN - shared) as u8);
        out.extend_from_slice(&enc[shared..]);
        out.extend_from_slice(&encode_value(rect));
        prev = enc;
    }
    let data_len = (out.len() - data_start) as u64;

    // Restart index.
    let index_off = out.len() as u64;
    put_u32(&mut out, restarts.len() as u32);
    for (key, offset) in &restarts {
        out.extend_from_slice(key);
        put_u32(&mut out, *offset);
    }

    // Filters: frame-range table + bloom over (video, label).
    let filter_off = out.len() as u64;
    let mut ranges: Vec<RangeFilter> = Vec::new();
    for (key, _) in entries.iter() {
        match ranges.last_mut() {
            Some(r) if r.video == key.video && r.label == key.label => {
                r.min_frame = r.min_frame.min(key.frame);
                r.max_frame = r.max_frame.max(key.frame);
                r.count += 1;
            }
            _ => ranges.push(RangeFilter {
                video: key.video,
                label: key.label,
                min_frame: key.frame,
                max_frame: key.frame,
                count: 1,
            }),
        }
    }
    put_u32(&mut out, ranges.len() as u32);
    for r in &ranges {
        put_u32(&mut out, r.video);
        put_u32(&mut out, r.label);
        put_u32(&mut out, r.min_frame);
        put_u32(&mut out, r.max_frame);
        put_u64(&mut out, r.count);
    }
    let pairs: Vec<(u32, u32)> = ranges.iter().map(|r| (r.video, r.label)).collect();
    let bloom = Bloom::build(&pairs);
    put_u32(&mut out, bloom.bits);
    put_u32(&mut out, bloom.hashes);
    out.extend_from_slice(&bloom.data);

    // Cumulative label dictionary snapshot.
    let dict_off = out.len() as u64;
    put_u32(&mut out, dict.len() as u32);
    for name in dict {
        let bytes = name.as_bytes();
        out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
        out.extend_from_slice(bytes);
    }

    // Compaction provenance.
    let inputs_off = out.len() as u64;
    put_u32(&mut out, inputs.len() as u32);
    for &id in inputs {
        put_u64(&mut out, id);
    }

    // Footer.
    put_u64(&mut out, data_len);
    put_u64(&mut out, index_off);
    put_u64(&mut out, filter_off);
    put_u64(&mut out, dict_off);
    put_u64(&mut out, inputs_off);
    put_u64(&mut out, entries.len() as u64);
    put_u64(&mut out, max_opseq);
    put_u64(&mut out, detections_cum);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out.extend_from_slice(&FOOTER_MAGIC);
    out
}

impl Run {
    /// Parses a run file's resident metadata (restart index, filters, dict,
    /// footer) — everything except the data region, which is re-read on
    /// demand by lookups that pass the filters.
    fn parse(id: u64, path: PathBuf, bytes: &[u8]) -> Result<Run, TreeError> {
        if bytes.len() < 4 + FOOTER_LEN || bytes[0..4] != RUN_MAGIC {
            return Err(TreeError::Corrupt("run file too short or bad magic"));
        }
        if bytes[bytes.len() - 4..] != FOOTER_MAGIC {
            return Err(TreeError::Corrupt("run footer magic missing"));
        }
        let crc_field = bytes.len() - FOOTER_LEN + 8 * 8;
        let declared = u32::from_le_bytes(bytes[crc_field..crc_field + 4].try_into().unwrap());
        if crc32(&bytes[..crc_field]) != declared {
            return Err(TreeError::Corrupt("run checksum mismatch"));
        }
        let mut f = Cursor::new(&bytes[bytes.len() - FOOTER_LEN..crc_field]);
        let data_len = f.u64()?;
        let index_off = f.u64()? as usize;
        let filter_off = f.u64()? as usize;
        let dict_off = f.u64()? as usize;
        let inputs_off = f.u64()? as usize;
        let entry_count = f.u64()?;
        let max_opseq = f.u64()?;
        let detections_cum = f.u64()?;
        if data_len as usize != index_off - 4
            || index_off > filter_off
            || filter_off > dict_off
            || dict_off > inputs_off
            || inputs_off > bytes.len() - FOOTER_LEN
        {
            return Err(TreeError::Corrupt("run regions out of order"));
        }

        let mut c = Cursor::new(&bytes[index_off..filter_off]);
        let n = c.u32()? as usize;
        let mut restarts = Vec::with_capacity(n);
        for _ in 0..n {
            let key = RecordKey::decode(c.take(KEY_LEN)?);
            let off = c.u32()?;
            if off as u64 >= data_len.max(1) {
                return Err(TreeError::Corrupt("restart offset out of range"));
            }
            restarts.push((key, off));
        }

        let mut c = Cursor::new(&bytes[filter_off..dict_off]);
        let n = c.u32()? as usize;
        let mut ranges = Vec::with_capacity(n);
        for _ in 0..n {
            ranges.push(RangeFilter {
                video: c.u32()?,
                label: c.u32()?,
                min_frame: c.u32()?,
                max_frame: c.u32()?,
                count: c.u64()?,
            });
        }
        let bits = c.u32()?;
        let hashes = c.u32()?;
        let bloom_bytes = c.take(bits.div_ceil(8) as usize)?.to_vec();
        let bloom = Bloom {
            bits,
            hashes,
            data: bloom_bytes,
        };

        let mut c = Cursor::new(&bytes[dict_off..inputs_off]);
        let n = c.u32()? as usize;
        let mut dict = Vec::with_capacity(n);
        for _ in 0..n {
            let len = c.u16()? as usize;
            let name = std::str::from_utf8(c.take(len)?)
                .map_err(|_| TreeError::Corrupt("run dict name not UTF-8"))?;
            dict.push(name.to_string());
        }

        let mut c = Cursor::new(&bytes[inputs_off..bytes.len() - FOOTER_LEN]);
        let n = c.u32()? as usize;
        let mut inputs = Vec::with_capacity(n);
        for _ in 0..n {
            inputs.push(c.u64()?);
        }

        Ok(Run {
            id,
            path,
            file_len: bytes.len() as u64,
            data_len,
            entry_count,
            max_opseq,
            detections_cum,
            restarts,
            ranges,
            bloom,
            inputs,
            dict,
        })
    }

    /// Whether a lookup for `(video, label)` over `frames` can skip this
    /// run entirely. Checks the bloom filter first, then the exact
    /// frame-range table.
    fn may_overlap(&self, video: u32, label: u32, frames: &Range<u32>) -> bool {
        if !self.bloom.may_contain(video, label) {
            return false;
        }
        self.ranges.iter().any(|r| {
            r.video == video
                && r.label == label
                && r.min_frame < frames.end
                && r.max_frame >= frames.start
        })
    }

    /// Bytes this run keeps resident (restart index + filters + dict).
    fn resident_bytes(&self) -> u64 {
        (self.restarts.len() * (KEY_LEN + 4)) as u64
            + (self.ranges.len() * 24) as u64
            + self.bloom.data.len() as u64
            + self.dict.iter().map(|s| s.len() as u64 + 2).sum::<u64>()
    }

    /// Scans the data region for keys in `[lo, hi)` (`hi = None` means
    /// unbounded), appending to `out`. `data` is the full file contents
    /// (read on demand by the caller).
    fn scan_range(
        &self,
        data: &[u8],
        lo: &RecordKey,
        hi: Option<&RecordKey>,
        out: &mut BTreeMap<RecordKey, Rect>,
    ) -> Result<(), TreeError> {
        if data.len() < 4 + self.data_len as usize {
            return Err(TreeError::Corrupt("run data region truncated"));
        }
        let region = &data[4..4 + self.data_len as usize];
        // Start at the last restart whose key is <= lo.
        let start = match self.restarts.partition_point(|(k, _)| k <= lo) {
            0 => 0usize,
            n => self.restarts[n - 1].1 as usize,
        };
        let mut pos = start;
        let mut cur = [0u8; KEY_LEN];
        let mut first = true;
        while pos < region.len() {
            if region.len() - pos < 2 {
                return Err(TreeError::Corrupt("run entry header truncated"));
            }
            let shared = region[pos] as usize;
            let unshared = region[pos + 1] as usize;
            pos += 2;
            if shared + unshared != KEY_LEN || (first && shared != 0) {
                return Err(TreeError::Corrupt("run entry key lengths invalid"));
            }
            if region.len() - pos < unshared + VALUE_LEN {
                return Err(TreeError::Corrupt("run entry body truncated"));
            }
            cur[shared..].copy_from_slice(&region[pos..pos + unshared]);
            pos += unshared;
            let key = RecordKey::decode(&cur);
            if hi.is_some_and(|hi| key >= *hi) {
                break;
            }
            if key >= *lo {
                out.insert(key, decode_value(&region[pos..pos + VALUE_LEN]));
            }
            pos += VALUE_LEN;
            first = false;
        }
        Ok(())
    }

    /// Decodes every entry of the data region (compaction, verification).
    fn scan_all(&self, data: &[u8]) -> Result<BTreeMap<RecordKey, Rect>, TreeError> {
        let mut out = BTreeMap::new();
        self.scan_range(data, &RecordKey::new(0, 0, 0, 0), None, &mut out)?;
        if out.len() as u64 != self.entry_count {
            return Err(TreeError::Corrupt("run entry count disagrees with footer"));
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------

const WAL_TAG_INSERT: u8 = 0;
const WAL_TAG_LABEL: u8 = 1;

/// One logical WAL record, buffered until the next durable append.
enum WalRecord {
    Insert {
        opseq: u64,
        key: RecordKey,
        value: Rect,
    },
    Label {
        opseq: u64,
        id: u32,
        name: String,
    },
}

fn encode_wal_frame(records: &[WalRecord]) -> Vec<u8> {
    let mut payload = Vec::new();
    for r in records {
        match r {
            WalRecord::Insert { opseq, key, value } => {
                payload.push(WAL_TAG_INSERT);
                put_u64(&mut payload, *opseq);
                payload.extend_from_slice(&key.encode());
                payload.extend_from_slice(&encode_value(value));
            }
            WalRecord::Label { opseq, id, name } => {
                payload.push(WAL_TAG_LABEL);
                put_u64(&mut payload, *opseq);
                put_u32(&mut payload, *id);
                payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
                payload.extend_from_slice(name.as_bytes());
            }
        }
    }
    let mut frame = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// Parses WAL bytes into frames of records, returning the records and the
/// byte length of the valid prefix. A torn or corrupt tail (the expected
/// residue of a crash mid-append) simply ends the log there.
fn parse_wal(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if bytes.len() - pos - 8 < len {
            break; // torn frame
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // corrupt frame
        }
        let Some(frame_records) = parse_wal_payload(payload) else {
            break;
        };
        records.extend(frame_records);
        pos += 8 + len;
    }
    (records, pos)
}

fn parse_wal_payload(payload: &[u8]) -> Option<Vec<WalRecord>> {
    let mut out = Vec::new();
    let mut c = Cursor::new(payload);
    while c.pos < payload.len() {
        let tag = *c.take(1).ok()?.first()?;
        match tag {
            WAL_TAG_INSERT => {
                let opseq = c.u64().ok()?;
                let key = RecordKey::decode(c.take(KEY_LEN).ok()?);
                let value = decode_value(c.take(VALUE_LEN).ok()?);
                out.push(WalRecord::Insert { opseq, key, value });
            }
            WAL_TAG_LABEL => {
                let opseq = c.u64().ok()?;
                let id = c.u32().ok()?;
                let len = c.u16().ok()? as usize;
                let name = std::str::from_utf8(c.take(len).ok()?).ok()?.to_string();
                out.push(WalRecord::Label { opseq, id, name });
            }
            _ => return None,
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------
// The tiered index
// ---------------------------------------------------------------------

/// Counters and sizes the `tasm stats --storage` report and benches read.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Immutable sorted runs on disk.
    pub run_count: usize,
    /// Entries across all runs.
    pub run_entries: u64,
    /// Entries currently in the memtable.
    pub memtable_entries: usize,
    /// On-disk bytes across run files and the WAL.
    pub disk_bytes: u64,
    /// Bytes kept resident (memtable + per-run filters and restart index).
    pub resident_bytes: u64,
    /// Per-run filter probes made by queries.
    pub filter_probes: u64,
    /// Probes the bloom + range filters answered without touching disk.
    pub filter_skips: u64,
    /// Run files actually read by queries.
    pub runs_read: u64,
}

impl TierStats {
    /// Fraction of filter probes that skipped a disk read.
    pub fn filter_hit_rate(&self) -> f64 {
        if self.filter_probes == 0 {
            0.0
        } else {
            self.filter_skips as f64 / self.filter_probes as f64
        }
    }
}

/// One problem [`TieredIndex::verify`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierIssue {
    /// The affected file (store-relative name).
    pub file: String,
    /// What is wrong.
    pub detail: String,
}

/// The disk-resident [`SemanticIndex`]: WAL'd memtable over immutable
/// prefix-compressed sorted runs with resident bloom + frame-range filters
/// and size-tiered compaction. See the module docs for the design.
pub struct TieredIndex {
    io: Arc<dyn TierIo>,
    dir: PathBuf,
    /// The memtable: every record not yet in a run.
    mem: BTreeMap<RecordKey, Rect>,
    /// Records acknowledged but not yet appended to the WAL.
    wal_buf: Vec<WalRecord>,
    /// Bytes of valid WAL on disk.
    wal_len: u64,
    /// Immutable runs, oldest first by id.
    runs: Vec<Run>,
    next_run_id: u64,
    /// Global operation sequence (watermark for WAL replay).
    opseq: u64,
    /// Detections persisted into runs (cumulative).
    detections_flushed: u64,
    /// Detections currently only in the memtable/WAL.
    detections_mem: u64,
    /// Label dictionary: id = FIRST_LABEL + position.
    label_names: Vec<String>,
    label_ids: BTreeMap<String, u32>,
    /// Memtable entries that trigger a run flush.
    memtable_limit: usize,
    filter_probes: u64,
    filter_skips: u64,
    runs_read: u64,
}

impl TieredIndex {
    /// Opens (or creates) a tiered index in `dir` with production I/O.
    pub fn open(dir: &Path) -> IndexResult<Self> {
        Self::open_with_io(dir, Arc::new(RealTierIo))
    }

    /// Opens (or creates) a tiered index with an injectable I/O shim —
    /// recovery (temp-file removal, compaction roll-forward, WAL replay)
    /// runs before this returns.
    pub fn open_with_io(dir: &Path, io: Arc<dyn TierIo>) -> IndexResult<Self> {
        io.create_dir_all(dir)?;
        let mut idx = TieredIndex {
            io,
            dir: dir.to_path_buf(),
            mem: BTreeMap::new(),
            wal_buf: Vec::new(),
            wal_len: 0,
            runs: Vec::new(),
            next_run_id: 0,
            opseq: 0,
            detections_flushed: 0,
            detections_mem: 0,
            label_names: Vec::new(),
            label_ids: BTreeMap::new(),
            memtable_limit: DEFAULT_MEMTABLE_LIMIT,
            filter_probes: 0,
            filter_skips: 0,
            runs_read: 0,
        };
        idx.recover()?;
        Ok(idx)
    }

    /// Overrides the memtable flush threshold (tests and benches force
    /// small runs to exercise flush and compaction).
    pub fn set_memtable_limit(&mut self, limit: usize) {
        self.memtable_limit = limit.max(1);
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_NAME)
    }

    /// Startup recovery: remove in-flight temp files, roll compactions
    /// forward (delete inputs a published merged run supersedes), load run
    /// metadata, replay the WAL above the run watermark, and rewrite the
    /// WAL if a torn tail is found — leaving exactly the state of the last
    /// completed `flush`.
    fn recover(&mut self) -> IndexResult<()> {
        let entries = self.io.list_dir(&self.dir)?;
        // 1. Temp files are in-flight run writes that never published.
        for path in &entries {
            if path.to_string_lossy().ends_with(TMP_SUFFIX) {
                self.io.remove_file(path)?;
            }
        }
        // 2. Load every published run's resident metadata.
        let mut runs = Vec::new();
        for path in &entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(id) = parse_run_name(name) else {
                continue;
            };
            let bytes = self.io.read(path)?;
            let run = Run::parse(id, path.clone(), &bytes)?;
            runs.push(run);
        }
        runs.sort_by_key(|r| r.id);
        // 3. Compaction roll-forward: a published merged run supersedes its
        //    inputs; delete any that survived the crash.
        let superseded: Vec<u64> = runs.iter().flat_map(|r| r.inputs.iter().copied()).collect();
        if !superseded.is_empty() {
            let mut kept = Vec::new();
            for run in runs {
                if superseded.contains(&run.id) {
                    self.io.remove_file(&run.path)?;
                } else {
                    kept.push(run);
                }
            }
            runs = kept;
        }
        self.next_run_id = runs.iter().map(|r| r.id + 1).max().unwrap_or(0);
        // 4. Restore cumulative state from the newest run.
        if let Some(newest) = runs.iter().max_by_key(|r| r.max_opseq) {
            self.opseq = newest.max_opseq;
            self.label_names = newest.dict.clone();
        }
        self.detections_flushed = runs.iter().map(|r| r.detections_cum).max().unwrap_or(0);
        self.label_ids = self
            .label_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), FIRST_LABEL + i as u32))
            .collect();
        let watermark = runs.iter().map(|r| r.max_opseq).max().unwrap_or(0);
        self.runs = runs;
        // 5. Replay the WAL above the watermark; drop any torn tail.
        let wal_path = self.wal_path();
        if self.io.exists(&wal_path) {
            let bytes = self.io.read(&wal_path)?;
            let (records, valid_len) = parse_wal(&bytes);
            for r in records {
                match r {
                    WalRecord::Insert { opseq, key, value } => {
                        if opseq > watermark {
                            self.mem.insert(key, value);
                            if key.label != PROCESSED_LABEL {
                                self.detections_mem += 1;
                            }
                            self.opseq = self.opseq.max(opseq);
                        }
                    }
                    WalRecord::Label { opseq, id, name } => {
                        if opseq > watermark {
                            let slot = (id - FIRST_LABEL) as usize;
                            if slot >= self.label_names.len() {
                                self.label_names.resize(slot + 1, String::new());
                            }
                            self.label_names[slot] = name.clone();
                            self.label_ids.insert(name, id);
                            self.opseq = self.opseq.max(opseq);
                        }
                    }
                }
            }
            if valid_len < bytes.len() {
                // Rewrite without the torn tail so the log is clean again.
                self.io.write(&wal_path, &bytes[..valid_len])?;
            }
            self.wal_len = valid_len as u64;
        }
        Ok(())
    }

    fn next_opseq(&mut self) -> u64 {
        self.opseq += 1;
        self.opseq
    }

    fn intern(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.label_ids.get(label) {
            return id;
        }
        let id = FIRST_LABEL + self.label_names.len() as u32;
        self.label_names.push(label.to_string());
        self.label_ids.insert(label.to_string(), id);
        let opseq = self.next_opseq();
        self.wal_buf.push(WalRecord::Label {
            opseq,
            id,
            name: label.to_string(),
        });
        id
    }

    /// Appends buffered records to the WAL — the durability point for
    /// everything acknowledged since the previous append.
    fn append_wal(&mut self) -> IndexResult<()> {
        if self.wal_buf.is_empty() {
            return Ok(());
        }
        let frame = encode_wal_frame(&self.wal_buf);
        self.io.append(&self.wal_path(), &frame)?;
        self.wal_len += frame.len() as u64;
        self.wal_buf.clear();
        Ok(())
    }

    /// Writes the memtable as a new immutable run (publish by atomic
    /// rename), then truncates the WAL it supersedes.
    fn flush_memtable_to_run(&mut self) -> IndexResult<()> {
        if self.mem.is_empty() {
            return Ok(());
        }
        let detections_cum = self.detections_flushed + self.detections_mem;
        let bytes = encode_run(
            &self.mem,
            self.opseq,
            detections_cum,
            &[],
            &self.label_names,
        );
        let id = self.next_run_id;
        let final_path = self.dir.join(run_file_name(id));
        let tmp_path = self
            .dir
            .join(format!("{}{}", run_file_name(id), TMP_SUFFIX));
        self.io.write(&tmp_path, &bytes)?;
        self.io.rename(&tmp_path, &final_path)?;
        self.io.sync_dir(&self.dir)?;
        let run = Run::parse(id, final_path, &bytes)?;
        self.next_run_id += 1;
        self.runs.push(run);
        self.mem.clear();
        self.detections_flushed = detections_cum;
        self.detections_mem = 0;
        // The WAL only covered records now durable in the run.
        self.io.write(&self.wal_path(), &[])?;
        self.wal_len = 0;
        tasm_obs::counter(
            "tasm_wal_flushes_total",
            "Semantic-index memtable flushes: WAL truncations after a run was made durable.",
        )
        .inc();
        Ok(())
    }

    /// Size-tiered compaction: while too many runs exist, merge the
    /// smallest [`COMPACTION_FANIN`] into one (recording their ids so a
    /// crash between publish and input deletion rolls forward).
    fn maybe_compact(&mut self) -> IndexResult<()> {
        while self.runs.len() > MAX_RUNS {
            let mut order: Vec<usize> = (0..self.runs.len()).collect();
            order.sort_by_key(|&i| (self.runs[i].file_len, self.runs[i].id));
            let mut victims: Vec<usize> = order.into_iter().take(COMPACTION_FANIN).collect();
            victims.sort_unstable();
            // Merge oldest-to-newest so newer values win on duplicate keys.
            let mut merged = BTreeMap::new();
            let mut max_opseq = 0u64;
            let mut detections_cum = 0u64;
            let mut inputs = Vec::new();
            let mut dict: &[String] = &[];
            let mut ordered: Vec<usize> = victims.clone();
            ordered.sort_by_key(|&i| self.runs[i].max_opseq);
            for &i in &ordered {
                let run = &self.runs[i];
                let data = self.io.read(&run.path)?;
                merged.extend(run.scan_all(&data)?);
                max_opseq = max_opseq.max(run.max_opseq);
                detections_cum = detections_cum.max(run.detections_cum);
                inputs.push(run.id);
                if run.dict.len() >= dict.len() {
                    dict = &run.dict;
                }
            }
            let dict = dict.to_vec();
            let bytes = encode_run(&merged, max_opseq, detections_cum, &inputs, &dict);
            let id = self.next_run_id;
            let final_path = self.dir.join(run_file_name(id));
            let tmp_path = self
                .dir
                .join(format!("{}{}", run_file_name(id), TMP_SUFFIX));
            self.io.write(&tmp_path, &bytes)?;
            self.io.rename(&tmp_path, &final_path)?; // commit point
            self.io.sync_dir(&self.dir)?;
            let run = Run::parse(id, final_path, &bytes)?;
            self.next_run_id += 1;
            // Delete superseded inputs (recovery redoes this if we crash).
            for i in victims.iter().rev() {
                let victim = self.runs.remove(*i);
                self.io.remove_file(&victim.path)?;
            }
            self.runs.push(run);
        }
        Ok(())
    }

    /// Merges every source (runs oldest-first, memtable last) for keys in
    /// `[lo, hi)`. Exact-key duplicates collapse newest-wins, matching the
    /// B-tree's insert-overwrites semantics.
    fn merged_range(
        &mut self,
        lo: RecordKey,
        hi: RecordKey,
    ) -> IndexResult<BTreeMap<RecordKey, Rect>> {
        let frames = lo.frame..hi.frame.max(lo.frame);
        let mut out = BTreeMap::new();
        let mut hits: Vec<usize> = Vec::new();
        for (i, run) in self.runs.iter().enumerate() {
            self.filter_probes += 1;
            let overlap = if lo.video == hi.video && lo.label == hi.label {
                run.may_overlap(lo.video, lo.label, &frames)
            } else {
                // Multi-label scans give the filters a video-only chance.
                run.ranges.iter().any(|r| r.video == lo.video)
            };
            if overlap {
                hits.push(i);
            } else {
                self.filter_skips += 1;
            }
        }
        for i in hits {
            let run = &self.runs[i];
            let data = self.io.read(&run.path)?;
            run.scan_range(&data, &lo, Some(&hi), &mut out)?;
            self.runs_read += 1;
        }
        for (k, v) in self.mem.range(lo..hi) {
            out.insert(*k, *v);
        }
        Ok(out)
    }

    /// Storage statistics for the CLI report and benches.
    pub fn stats(&self) -> TierStats {
        TierStats {
            run_count: self.runs.len(),
            run_entries: self.runs.iter().map(|r| r.entry_count).sum(),
            memtable_entries: self.mem.len(),
            disk_bytes: self.runs.iter().map(|r| r.file_len).sum::<u64>() + self.wal_len,
            resident_bytes: self.resident_bytes(),
            filter_probes: self.filter_probes,
            filter_skips: self.filter_skips,
            runs_read: self.runs_read,
        }
    }

    /// Bytes held in memory: memtable records plus each run's resident
    /// restart index, filters, and dictionary snapshot. Comparable with
    /// `entries × (KEY_LEN + VALUE_LEN)` for a fully resident map.
    pub fn resident_bytes(&self) -> u64 {
        self.mem.len() as u64 * (KEY_LEN + VALUE_LEN) as u64
            + self.runs.iter().map(|r| r.resident_bytes()).sum::<u64>()
    }

    /// Per-run `(id, entries, file bytes)` in id order (the CLI's level
    /// listing).
    pub fn run_summaries(&self) -> Vec<(u64, u64, u64)> {
        self.runs
            .iter()
            .map(|r| (r.id, r.entry_count, r.file_len))
            .collect()
    }

    /// Structural integrity check: every run re-reads, checksums, and
    /// re-counts cleanly; the WAL parses without residue. The tier-level
    /// analogue of the store's fsck.
    pub fn verify(&self) -> IndexResult<Vec<TierIssue>> {
        let mut issues = Vec::new();
        for run in &self.runs {
            let name = run
                .path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            match self.io.read(&run.path) {
                Err(e) => issues.push(TierIssue {
                    file: name,
                    detail: format!("unreadable: {e}"),
                }),
                Ok(bytes) => match Run::parse(run.id, run.path.clone(), &bytes) {
                    Err(e) => issues.push(TierIssue {
                        file: name,
                        detail: e.to_string(),
                    }),
                    Ok(parsed) => {
                        if let Err(e) = parsed.scan_all(&bytes) {
                            issues.push(TierIssue {
                                file: name,
                                detail: e.to_string(),
                            });
                        }
                    }
                },
            }
        }
        let wal_path = self.wal_path();
        if self.io.exists(&wal_path) {
            let bytes = self.io.read(&wal_path)?;
            let (_, valid_len) = parse_wal(&bytes);
            if valid_len != bytes.len() {
                issues.push(TierIssue {
                    file: WAL_NAME.to_string(),
                    detail: format!("torn tail: {} of {} bytes valid", valid_len, bytes.len()),
                });
            }
        }
        Ok(issues)
    }

    /// Total records across memtable and runs (diagnostics; duplicate keys
    /// across tiers are counted per tier).
    pub fn record_count(&self) -> u64 {
        self.mem.len() as u64 + self.runs.iter().map(|r| r.entry_count).sum::<u64>()
    }
}

impl SemanticIndex for TieredIndex {
    fn add_metadata(&mut self, video: u32, label: &str, frame: u32, bbox: Rect) -> IndexResult<()> {
        let label_id = self.intern(label);
        let opseq = self.next_opseq();
        let key = RecordKey::new(video, label_id, frame, (opseq & 0xFFFF_FFFF) as u32);
        self.mem.insert(key, bbox);
        self.detections_mem += 1;
        self.wal_buf.push(WalRecord::Insert {
            opseq,
            key,
            value: bbox,
        });
        if self.mem.len() >= self.memtable_limit {
            self.append_wal()?;
            self.flush_memtable_to_run()?;
            self.maybe_compact()?;
        }
        Ok(())
    }

    fn query(
        &mut self,
        video: u32,
        label: &str,
        frames: Range<u32>,
    ) -> IndexResult<Vec<Detection>> {
        let Some(&label_id) = self.label_ids.get(label) else {
            return Ok(Vec::new());
        };
        if frames.start >= frames.end {
            return Ok(Vec::new());
        }
        let lo = RecordKey::range_start(video, label_id, frames.start);
        let hi = RecordKey::range_start(video, label_id, frames.end);
        Ok(self
            .merged_range(lo, hi)?
            .into_iter()
            .map(|(k, bbox)| Detection {
                frame: k.frame,
                bbox,
            })
            .collect())
    }

    fn query_all(&mut self, video: u32, frames: Range<u32>) -> IndexResult<Vec<LabeledDetection>> {
        let mut out = Vec::new();
        for label in self.labels(video)? {
            for d in self.query(video, &label, frames.clone())? {
                out.push(LabeledDetection {
                    label: label.clone(),
                    frame: d.frame,
                    bbox: d.bbox,
                });
            }
        }
        Ok(out)
    }

    fn labels(&mut self, video: u32) -> IndexResult<Vec<String>> {
        // Label presence is resident: run range tables + a memtable scan.
        let mut ids: Vec<u32> = Vec::new();
        for run in &self.runs {
            for r in &run.ranges {
                if r.video == video && r.label != PROCESSED_LABEL {
                    ids.push(r.label);
                }
            }
        }
        let lo = RecordKey::new(video, 0, 0, 0);
        let hi = RecordKey::new(video.saturating_add(1), 0, 0, 0);
        let mem_range: Box<dyn Iterator<Item = (&RecordKey, &Rect)>> = if video == u32::MAX {
            Box::new(self.mem.range(lo..))
        } else {
            Box::new(self.mem.range(lo..hi))
        };
        for (k, _) in mem_range {
            if k.label != PROCESSED_LABEL {
                ids.push(k.label);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        Ok(ids
            .into_iter()
            .filter_map(|id| self.label_names.get((id - FIRST_LABEL) as usize).cloned())
            .collect())
    }

    fn mark_processed(&mut self, video: u32, frame: u32) -> IndexResult<()> {
        // Idempotent: seq 0 means re-marking overwrites the same key.
        let opseq = self.next_opseq();
        let key = RecordKey::new(video, PROCESSED_LABEL, frame, 0);
        let value = Rect::new(0, 0, 0, 0);
        self.mem.insert(key, value);
        self.wal_buf.push(WalRecord::Insert { opseq, key, value });
        if self.mem.len() >= self.memtable_limit {
            self.append_wal()?;
            self.flush_memtable_to_run()?;
            self.maybe_compact()?;
        }
        Ok(())
    }

    fn processed_count(&mut self, video: u32, frames: Range<u32>) -> IndexResult<u32> {
        if frames.start >= frames.end {
            return Ok(0);
        }
        let lo = RecordKey::range_start(video, PROCESSED_LABEL, frames.start);
        let hi = RecordKey::range_start(video, PROCESSED_LABEL, frames.end);
        Ok(self.merged_range(lo, hi)?.len() as u32)
    }

    fn detection_count(&self) -> u64 {
        self.detections_flushed + self.detections_mem
    }

    fn flush(&mut self) -> IndexResult<()> {
        self.append_wal()?;
        if self.mem.len() >= self.memtable_limit {
            self.flush_memtable_to_run()?;
            self.maybe_compact()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tasm-tiered-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn bbox(n: u32) -> Rect {
        Rect::new(n * 10, n * 7, 32, 32)
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn bloom_no_false_negatives() {
        let pairs: Vec<(u32, u32)> = (0..200).map(|i| (i % 7, i)).collect();
        let bloom = Bloom::build(&pairs);
        for &(v, l) in &pairs {
            assert!(bloom.may_contain(v, l));
        }
        let misses = (1000..2000).filter(|&l| bloom.may_contain(9, l)).count();
        assert!(misses < 100, "false positive rate too high: {misses}/1000");
    }

    #[test]
    fn run_roundtrip_and_scan() {
        let mut entries = BTreeMap::new();
        for f in 0..1000u32 {
            entries.insert(RecordKey::new(1, 2, f, f), bbox(f));
        }
        let dict = vec!["car".to_string()];
        let bytes = encode_run(&entries, 42, 1000, &[], &dict);
        let run = Run::parse(0, PathBuf::from("run_00000000.sst"), &bytes).unwrap();
        assert_eq!(run.entry_count, 1000);
        assert_eq!(run.max_opseq, 42);
        assert_eq!(run.detections_cum, 1000);
        assert_eq!(run.dict, dict);
        assert_eq!(run.ranges.len(), 1);
        assert_eq!(run.ranges[0].min_frame, 0);
        assert_eq!(run.ranges[0].max_frame, 999);
        // Prefix compression must beat the raw encoding substantially.
        assert!(
            (bytes.len() as u64) < 1000 * (KEY_LEN + VALUE_LEN) as u64,
            "run not compressed: {} bytes",
            bytes.len()
        );
        let mut out = BTreeMap::new();
        run.scan_range(
            &bytes,
            &RecordKey::range_start(1, 2, 100),
            Some(&RecordKey::range_start(1, 2, 200)),
            &mut out,
        )
        .unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(out.values().next(), Some(&bbox(100)));
        assert_eq!(run.scan_all(&bytes).unwrap(), entries);
    }

    #[test]
    fn run_rejects_corruption() {
        let mut entries = BTreeMap::new();
        for f in 0..100u32 {
            entries.insert(RecordKey::new(0, 1, f, f), bbox(f));
        }
        let bytes = encode_run(&entries, 1, 100, &[], &[]);
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(Run::parse(0, PathBuf::new(), &bytes[..cut]).is_err());
        }
        let mut bad = bytes.clone();
        bad[10] ^= 0xFF;
        assert!(matches!(
            Run::parse(0, PathBuf::new(), &bad),
            Err(TreeError::Corrupt(_))
        ));
    }

    #[test]
    fn filters_skip_non_overlapping_runs() {
        let mut entries = BTreeMap::new();
        for f in 500..600u32 {
            entries.insert(RecordKey::new(3, 1, f, f), bbox(f));
        }
        let bytes = encode_run(&entries, 1, 100, &[], &[]);
        let run = Run::parse(0, PathBuf::new(), &bytes).unwrap();
        assert!(run.may_overlap(3, 1, &(550..560)));
        assert!(run.may_overlap(3, 1, &(0..501)));
        assert!(!run.may_overlap(3, 1, &(0..500)), "range filter must skip");
        assert!(!run.may_overlap(3, 1, &(600..700)));
        assert!(!run.may_overlap(4, 1, &(550..560)), "bloom must skip");
        assert!(!run.may_overlap(3, 2, &(550..560)));
    }

    #[test]
    fn basic_semantics_match_memory_index() {
        use crate::index::MemoryIndex;
        let dir = temp_dir("semantics");
        let mut tiered = TieredIndex::open(&dir).unwrap();
        tiered.set_memtable_limit(16); // force runs + compactions
        let mut shadow = MemoryIndex::in_memory();
        for f in 0..300u32 {
            let label = ["car", "person", "bird"][(f % 3) as usize];
            tiered.add_metadata(1, label, f, bbox(f)).unwrap();
            shadow.add_metadata(1, label, f, bbox(f)).unwrap();
            if f % 2 == 0 {
                tiered.mark_processed(1, f).unwrap();
                shadow.mark_processed(1, f).unwrap();
            }
        }
        tiered.flush().unwrap();
        assert!(tiered.stats().run_count >= 1, "must have flushed runs");
        for range in [0..300u32, 50..60, 299..300, 0..1, 250..1000] {
            assert_eq!(
                tiered.query(1, "car", range.clone()).unwrap(),
                shadow.query(1, "car", range.clone()).unwrap()
            );
            assert_eq!(
                tiered.processed_count(1, range.clone()).unwrap(),
                shadow.processed_count(1, range.clone()).unwrap()
            );
            assert_eq!(
                tiered.query_all(1, range.clone()).unwrap(),
                shadow.query_all(1, range).unwrap()
            );
        }
        assert_eq!(tiered.labels(1).unwrap(), shadow.labels(1).unwrap());
        assert_eq!(tiered.detection_count(), shadow.detection_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn state_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let mut idx = TieredIndex::open(&dir).unwrap();
            idx.set_memtable_limit(32);
            for f in 0..100u32 {
                idx.add_metadata(7, "car", f, bbox(f)).unwrap();
            }
            idx.add_metadata(7, "person", 5, bbox(5)).unwrap();
            idx.mark_processed(7, 5).unwrap();
            idx.flush().unwrap();
        }
        {
            let mut idx = TieredIndex::open(&dir).unwrap();
            assert_eq!(idx.detection_count(), 101);
            assert_eq!(idx.query(7, "car", 0..100).unwrap().len(), 100);
            assert_eq!(idx.query(7, "person", 0..10).unwrap().len(), 1);
            assert_eq!(idx.processed_count(7, 0..10).unwrap(), 1);
            assert_eq!(idx.labels(7).unwrap(), vec!["car", "person"]);
            // The sequence watermark restored: new inserts keep unique keys.
            idx.add_metadata(7, "car", 5, bbox(999)).unwrap();
            assert_eq!(idx.detection_count(), 102);
            assert!(idx.verify().unwrap().is_empty());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unflushed_records_are_lost_but_flushed_survive() {
        let dir = temp_dir("durability");
        {
            let mut idx = TieredIndex::open(&dir).unwrap();
            idx.add_metadata(0, "car", 1, bbox(1)).unwrap();
            idx.flush().unwrap();
            idx.add_metadata(0, "car", 2, bbox(2)).unwrap();
            // No flush: record 2 is only in the memtable + wal_buf.
        }
        {
            let mut idx = TieredIndex::open(&dir).unwrap();
            assert_eq!(idx.query(0, "car", 0..10).unwrap().len(), 1);
            assert_eq!(idx.detection_count(), 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_dropped_and_rewritten() {
        let dir = temp_dir("torn");
        {
            let mut idx = TieredIndex::open(&dir).unwrap();
            idx.add_metadata(0, "car", 1, bbox(1)).unwrap();
            idx.flush().unwrap();
            idx.add_metadata(0, "car", 2, bbox(2)).unwrap();
            idx.flush().unwrap();
        }
        // Tear the last frame.
        let wal = dir.join(WAL_NAME);
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();
        {
            let mut idx = TieredIndex::open(&dir).unwrap();
            // First frame replayed; torn second frame dropped.
            assert_eq!(idx.query(0, "car", 0..10).unwrap().len(), 1);
            assert!(idx.verify().unwrap().is_empty(), "WAL rewritten clean");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_bounds_run_count_and_preserves_data() {
        let dir = temp_dir("compact");
        let mut idx = TieredIndex::open(&dir).unwrap();
        idx.set_memtable_limit(10);
        for f in 0..400u32 {
            idx.add_metadata(2, "car", f, bbox(f)).unwrap();
        }
        idx.flush().unwrap();
        let stats = idx.stats();
        assert!(
            stats.run_count <= MAX_RUNS,
            "compaction must bound runs, got {}",
            stats.run_count
        );
        assert_eq!(idx.query(2, "car", 0..400).unwrap().len(), 400);
        assert_eq!(idx.detection_count(), 400);
        assert!(idx.verify().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn filter_hit_rate_counts_skips() {
        let dir = temp_dir("filters");
        let mut idx = TieredIndex::open(&dir).unwrap();
        idx.set_memtable_limit(50);
        for f in 0..100u32 {
            idx.add_metadata(0, "car", f, bbox(f)).unwrap();
        }
        for f in 0..100u32 {
            idx.add_metadata(1, "person", f, bbox(f)).unwrap();
        }
        idx.flush().unwrap();
        assert!(idx.stats().run_count >= 2);
        // Query a (video, label) that only one run's tier can hold.
        idx.query(0, "car", 0..100).unwrap();
        let stats = idx.stats();
        assert!(stats.filter_probes > 0);
        assert!(
            stats.filter_skips > 0,
            "bloom/range filters should skip the person-only runs"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resident_bytes_fraction_of_full_map() {
        let dir = temp_dir("resident");
        let mut idx = TieredIndex::open(&dir).unwrap();
        idx.set_memtable_limit(1000);
        let n = 20_000u32;
        for f in 0..n {
            idx.add_metadata(0, "car", f, bbox(f)).unwrap();
        }
        idx.flush().unwrap();
        let full_map = n as u64 * (KEY_LEN + VALUE_LEN) as u64;
        let resident = idx.resident_bytes();
        assert!(
            resident * 4 <= full_map,
            "resident {resident} should be <= 1/4 of {full_map}"
        );
        // And the data still answers correctly.
        assert_eq!(idx.query(0, "car", 0..n).unwrap().len(), n as usize);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::index::MemoryIndex;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The tiered index must answer exactly like the in-memory B-tree
        /// on random workloads, across memtable, runs, and compactions.
        #[test]
        fn prop_equivalent_to_memory_index(
            ops in proptest::collection::vec(
                (0u32..3, 0u32..4, 0u32..200, 0u32..50),
                1..250
            ),
            limit in 4usize..40,
        ) {
            let dir = std::env::temp_dir().join(format!(
                "tasm-tiered-prop-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            let mut tiered = TieredIndex::open(&dir).unwrap();
            tiered.set_memtable_limit(limit);
            let mut shadow = MemoryIndex::in_memory();
            let labels = ["car", "person", "bird", "bus"];
            for (op, label, frame, video_seed) in ops {
                let video = video_seed % 3;
                match op {
                    0 | 1 => {
                        let label = labels[label as usize];
                        let bbox = Rect::new(frame, frame * 2, 8 + label.len() as u32, 8);
                        tiered.add_metadata(video, label, frame, bbox).unwrap();
                        shadow.add_metadata(video, label, frame, bbox).unwrap();
                    }
                    _ => {
                        tiered.mark_processed(video, frame).unwrap();
                        shadow.mark_processed(video, frame).unwrap();
                    }
                }
            }
            tiered.flush().unwrap();
            for video in 0..3u32 {
                prop_assert_eq!(
                    tiered.labels(video).unwrap(),
                    shadow.labels(video).unwrap()
                );
                for range in [0u32..200, 50..120, 0..1, 190..400] {
                    for label in labels {
                        prop_assert_eq!(
                            tiered.query(video, label, range.clone()).unwrap(),
                            shadow.query(video, label, range.clone()).unwrap()
                        );
                    }
                    prop_assert_eq!(
                        tiered.processed_count(video, range.clone()).unwrap(),
                        shadow.processed_count(video, range.clone()).unwrap()
                    );
                    prop_assert_eq!(
                        tiered.query_all(video, range.clone()).unwrap(),
                        shadow.query_all(video, range).unwrap()
                    );
                }
            }
            prop_assert_eq!(tiered.detection_count(), shadow.detection_count());
            prop_assert!(tiered.verify().unwrap().is_empty());
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
