//! Page-oriented storage with a write-back cache.
//!
//! The semantic index stores fixed 4 KiB pages through a [`Pager`], which
//! fronts a [`PageStore`] backend (a file on disk, or memory for tests) with
//! a bounded write-back cache. Pages are copied in and out of the cache;
//! at index scale (thousands of detections per video) the copies are far
//! cheaper than the borrow gymnastics they avoid.

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifies a page within a store. Page 0 is reserved for metadata.
pub type PageId = u32;

/// A fixed-size page buffer.
#[derive(Clone)]
pub struct Page {
    /// Raw page contents.
    pub data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        }
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

/// Backend capable of storing numbered pages.
pub trait PageStore {
    /// Reads page `id` into `buf`. Reading a page that was never written
    /// returns zeroes (sparse semantics).
    fn read(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> io::Result<()>;
    /// Writes page `id`.
    fn write(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> io::Result<()>;
    /// Flushes to durable storage.
    fn sync(&mut self) -> io::Result<()>;
}

impl<S: PageStore + ?Sized> PageStore for &mut S {
    fn read(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        (**self).read(id, buf)
    }

    fn write(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> io::Result<()> {
        (**self).write(id, buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }
}

/// In-memory page store (tests and ephemeral indexes).
#[derive(Default)]
pub struct MemStore {
    pages: HashMap<PageId, Box<[u8; PAGE_SIZE]>>,
}

impl PageStore for MemStore {
    fn read(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        match self.pages.get(&id) {
            Some(p) => buf.copy_from_slice(&p[..]),
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> io::Result<()> {
        self.pages.insert(id, Box::new(*buf));
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// File-backed page store.
pub struct FileStore {
    file: File,
}

impl FileStore {
    /// Opens (creating if necessary) a page file at `path`.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileStore { file })
    }
}

impl PageStore for FileStore {
    fn read(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        let offset = id as u64 * PAGE_SIZE as u64;
        let len = self.file.metadata()?.len();
        if offset >= len {
            buf.fill(0);
            return Ok(());
        }
        self.file.seek(SeekFrom::Start(offset))?;
        let available = ((len - offset) as usize).min(PAGE_SIZE);
        self.file.read_exact(&mut buf[..available])?;
        buf[available..].fill(0);
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> io::Result<()> {
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

struct CacheEntry {
    page: Page,
    dirty: bool,
}

/// Write-back page cache over a [`PageStore`].
pub struct Pager<S: PageStore> {
    store: S,
    cache: HashMap<PageId, CacheEntry>,
    /// FIFO order used for eviction (approximate LRU is unnecessary here;
    /// B+tree access patterns are dominated by the hot upper levels, which
    /// get re-inserted on every miss anyway).
    order: VecDeque<PageId>,
    capacity: usize,
}

impl<S: PageStore> Pager<S> {
    /// Creates a pager holding at most `capacity` cached pages.
    pub fn new(store: S, capacity: usize) -> Self {
        assert!(capacity >= 8, "pager cache must hold at least 8 pages");
        Pager {
            store,
            cache: HashMap::new(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Reads a page (through the cache).
    pub fn read(&mut self, id: PageId) -> io::Result<Page> {
        if let Some(entry) = self.cache.get(&id) {
            return Ok(entry.page.clone());
        }
        let mut page = Page::zeroed();
        self.store.read(id, &mut page.data)?;
        self.insert_cache(id, page.clone(), false)?;
        Ok(page)
    }

    /// Writes a page into the cache; it reaches the store on flush/eviction.
    pub fn write(&mut self, id: PageId, page: Page) -> io::Result<()> {
        self.insert_cache(id, page, true)
    }

    /// Flushes all dirty pages and syncs the backend.
    pub fn flush(&mut self) -> io::Result<()> {
        let mut dirty: Vec<PageId> = self
            .cache
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(&id, _)| id)
            .collect();
        dirty.sort_unstable();
        for id in dirty {
            let entry = self.cache.get_mut(&id).expect("dirty page present");
            self.store.write(id, &entry.page.data)?;
            entry.dirty = false;
        }
        self.store.sync()
    }

    /// Number of pages currently cached (for tests).
    pub fn cached_pages(&self) -> usize {
        self.cache.len()
    }

    fn insert_cache(&mut self, id: PageId, page: Page, dirty: bool) -> io::Result<()> {
        if let Some(entry) = self.cache.get_mut(&id) {
            entry.page = page;
            entry.dirty = entry.dirty || dirty;
            return Ok(());
        }
        while self.cache.len() >= self.capacity {
            self.evict_one()?;
        }
        self.cache.insert(id, CacheEntry { page, dirty });
        self.order.push_back(id);
        Ok(())
    }

    fn evict_one(&mut self) -> io::Result<()> {
        while let Some(victim) = self.order.pop_front() {
            if let Some(entry) = self.cache.remove(&victim) {
                if entry.dirty {
                    self.store.write(victim, &entry.page.data)?;
                }
                return Ok(());
            }
            // Stale order entry (page was re-inserted); keep looking.
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_sparse_reads_zero() {
        let mut s = MemStore::default();
        let mut buf = [1u8; PAGE_SIZE];
        s.read(42, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn pager_roundtrip() {
        let mut p = Pager::new(MemStore::default(), 8);
        let mut page = Page::zeroed();
        page.data[0] = 0xAB;
        page.data[PAGE_SIZE - 1] = 0xCD;
        p.write(3, page).unwrap();
        let back = p.read(3).unwrap();
        assert_eq!(back.data[0], 0xAB);
        assert_eq!(back.data[PAGE_SIZE - 1], 0xCD);
    }

    #[test]
    fn eviction_preserves_dirty_pages() {
        let mut p = Pager::new(MemStore::default(), 8);
        // Write more pages than the cache holds.
        for i in 0..32u32 {
            let mut page = Page::zeroed();
            page.data[0] = i as u8;
            p.write(i, page).unwrap();
        }
        assert!(p.cached_pages() <= 8);
        // All pages must still be readable with their contents.
        for i in 0..32u32 {
            assert_eq!(p.read(i).unwrap().data[0], i as u8, "page {i}");
        }
    }

    #[test]
    fn flush_persists_to_store() {
        let mut store = MemStore::default();
        {
            let mut p = Pager::new(&mut store, 8);
            let mut page = Page::zeroed();
            page.data[10] = 7;
            p.write(1, page).unwrap();
            p.flush().unwrap();
        }
        let mut buf = [0u8; PAGE_SIZE];
        store.read(1, &mut buf).unwrap();
        assert_eq!(buf[10], 7);
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("tasm-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        {
            let mut s = FileStore::open(&path).unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[5] = 99;
            s.write(2, &buf).unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = FileStore::open(&path).unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            s.read(2, &mut buf).unwrap();
            assert_eq!(buf[5], 99);
            // Unwritten page reads as zeroes.
            s.read(100, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 0));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
