//! # tasm-reactor: readiness-driven session event loop
//!
//! One thread owns every client socket: a nonblocking listener, a wake
//! pipe, and per-connection state machines. Frames are assembled
//! incrementally (never blocking mid-frame) with
//! [`tasm_proto::nio::FrameReader`], and responses stream out through a
//! resumable [`tasm_proto::nio::FrameQueue`] driven by write-readiness —
//! a peer that stops reading costs a buffer, not a parked thread.
//!
//! The loop is protocol-agnostic: it moves frames, enforces admission
//! (`max_connections`) and the liveness deadlines (handshake, mid-frame
//! stall, write stall), and delegates every decoded payload to a
//! [`Logic`] implementation. tasm-server plugs in query dispatch;
//! tasm-cluster's router plugs in shard routing. Completed work re-enters
//! the loop through the [`Waker`] half of a self-notification pipe.
//!
//! ```text
//!        epoll/poll wait ──────────────────────────────┐
//!          │ listener readable → accept burst          │
//!          │   over cap → refusal frame, linger, close │
//!          │ wake pipe readable → Logic::on_wake       │ one reactor
//!          │ session readable → FrameReader            │ thread,
//!          │     → Logic::on_frame (dispatch)          │ O(workers)
//!          │ session writable → FrameQueue resume      │ total threads
//!          └ sweep: encode pump, timers, teardown ─────┘
//! ```
//!
//! ## Response streaming
//!
//! A response is a [`ResponseSource`]: a lazy sequence of encoded frames.
//! The loop pulls the next frame only while fewer than ~64 KiB sit
//! unwritten, so a result with hundreds of region frames occupies bounded
//! memory no matter how slowly the peer reads (the 64 MiB frame cap
//! bounds the worst single step). Sources can defer a frame until every
//! previously yielded byte reached the socket (`flushed`), which is how
//! the server measures its stream phase exactly.

mod poller;

pub use poller::{wake_pipe, Event, Interest, Poller, WakeReader, Waker};

use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tasm_proto::nio::{FrameQueue, FrameReader, ReadProgress, WriteProgress};

/// Unwritten-byte threshold below which the loop asks sources for more
/// frames. Small enough to bound buffering, large enough to coalesce a
/// header + small regions into one writev-sized burst.
const LOW_WATER: usize = 64 * 1024;

/// Reserved token for the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Reserved token for the wake pipe.
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// Whether this platform can run the reactor: readiness polling and the
/// wake pipe both construct. Callers check this *before* handing their
/// listener to [`Ctl::new`], so engine selection can fall back to a
/// blocking design without consuming the socket.
pub fn supported() -> bool {
    Poller::new().is_ok() && wake_pipe().is_ok()
}

/// What a [`ResponseSource`] produced.
pub enum NextFrame {
    /// One encoded frame (length prefix included).
    Frame(Vec<u8>),
    /// Nothing yet — only legal while `flushed` is false; the source is
    /// re-asked once every previously yielded byte reached the socket.
    Wait,
    /// The response is complete.
    Done,
}

/// A lazily encoded response: frames are pulled one at a time as socket
/// capacity frees up, so encoding never races ahead of the peer by more
/// than the low-water mark plus one frame.
pub trait ResponseSource: Send {
    /// The next frame. `flushed` is true when every byte this source
    /// previously yielded has been handed to the socket.
    fn next_frame(&mut self, flushed: bool) -> NextFrame;
}

/// A single pre-encoded frame as a response.
struct OneFrame(Option<Vec<u8>>);

impl ResponseSource for OneFrame {
    fn next_frame(&mut self, _flushed: bool) -> NextFrame {
        match self.0.take() {
            Some(f) => NextFrame::Frame(f),
            None => NextFrame::Done,
        }
    }
}

/// Protocol hooks the event loop drives. All methods run on the reactor
/// thread; none may block.
pub trait Logic {
    /// A connection was admitted (slot reserved, socket registered).
    fn on_accept(&mut self, ctl: &mut Ctl, token: u64);
    /// One complete inbound frame payload (length prefix stripped).
    fn on_frame(&mut self, ctl: &mut Ctl, token: u64, payload: Vec<u8>);
    /// The wake pipe fired: worker completions are waiting.
    fn on_wake(&mut self, ctl: &mut Ctl);
    /// Every loop iteration, after events. Default: nothing.
    fn on_tick(&mut self, _ctl: &mut Ctl) {}
    /// The frame an over-cap connection is sent before its close.
    fn refusal_frame(&mut self) -> Vec<u8>;
    /// An over-cap connection was refused (counters).
    fn on_refused(&mut self) {}
    /// A session left the loop (any reason). `handshaken` says whether it
    /// ever completed its hello exchange.
    fn on_close(&mut self, token: u64, handshaken: bool);
}

/// Liveness and admission knobs of the loop.
#[derive(Debug, Clone, Copy)]
pub struct LoopConfig {
    /// Concurrent non-refused connections; beyond this, connects get the
    /// logic's refusal frame and a lingered close.
    pub max_connections: usize,
    /// Upper bound on one `wait` — the cadence of the timer sweep and how
    /// fast an idle loop notices the shutdown flag.
    pub poll_interval: Duration,
    /// How long a connection may sit without completing its handshake.
    pub handshake_deadline: Duration,
    /// Wall-clock bound on receiving one frame once its first byte
    /// arrived (anti-trickle).
    pub frame_deadline: Duration,
    /// How long a write may make zero progress against a full socket
    /// buffer before the session is abandoned.
    pub write_stall: Duration,
    /// How long a refused connection lingers for the peer to read the
    /// refusal frame.
    pub refuse_linger: Duration,
}

impl Default for LoopConfig {
    fn default() -> Self {
        LoopConfig {
            max_connections: 64,
            poll_interval: Duration::from_millis(25),
            handshake_deadline: Duration::from_secs(10),
            frame_deadline: Duration::from_secs(30),
            write_stall: Duration::from_secs(10),
            refuse_linger: Duration::from_secs(1),
        }
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    out: FrameQueue,
    pending: VecDeque<Box<dyn ResponseSource>>,
    handshaken: bool,
    /// Reads suspended (an order-sensitive operation is in flight).
    paused: bool,
    /// No further requests; close once in-flight work drains and the
    /// output flushes.
    draining: bool,
    /// Refused at admission: flush the refusal frame, linger, close.
    refusing: bool,
    /// Write side already shut down (refusal linger).
    half_closed: bool,
    /// Peer closed its write side.
    peer_eof: bool,
    /// Fatal transport error: close at the next sweep.
    closing: bool,
    /// Operations admitted on behalf of this session and not yet
    /// completed (queries on the worker pool, admin ops).
    inflight: u32,
    opened: Instant,
    /// Set while the socket accepts no bytes and output is pending.
    blocked_since: Option<Instant>,
    registered: Interest,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            reader: FrameReader::new(),
            out: FrameQueue::new(),
            pending: VecDeque::new(),
            handshaken: false,
            paused: false,
            draining: false,
            refusing: false,
            half_closed: false,
            peer_eof: false,
            closing: false,
            inflight: 0,
            opened: Instant::now(),
            blocked_since: None,
            registered: Interest::READ,
        }
    }
}

/// One step of the per-connection read pump (computed under the map
/// borrow, acted on outside it).
enum ReadStep {
    Dispatch(Vec<u8>),
    Stop,
}

/// The event loop's mutable state, exposed to [`Logic`] callbacks for
/// session operations (send, pause, drain, inflight accounting).
pub struct Ctl {
    poller: Poller,
    listener: TcpListener,
    wake_reader: WakeReader,
    waker: Waker,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Non-refused connections currently in the map.
    active: usize,
    cfg: LoopConfig,
    shutdown: Arc<AtomicBool>,
}

impl Ctl {
    /// Builds the loop state: nonblocking listener + wake pipe, both
    /// registered with a fresh poller. Fails where readiness polling is
    /// unsupported — callers fall back to a blocking engine.
    pub fn new(
        listener: TcpListener,
        cfg: LoopConfig,
        shutdown: Arc<AtomicBool>,
    ) -> std::io::Result<Ctl> {
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        let (waker, wake_reader) = wake_pipe()?;
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
            poller.register(wake_reader.raw_fd(), TOKEN_WAKE, Interest::READ)?;
        }
        Ok(Ctl {
            poller,
            listener,
            wake_reader,
            waker,
            conns: HashMap::new(),
            next_token: 0,
            active: 0,
            cfg,
            shutdown,
        })
    }

    /// A handle worker threads use to nudge the loop after pushing a
    /// completion.
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Non-refused connections currently held.
    pub fn active_sessions(&self) -> usize {
        self.active
    }

    /// Queues one encoded frame on a session.
    pub fn send_frame(&mut self, token: u64, frame: Vec<u8>) {
        self.send_response(token, Box::new(OneFrame(Some(frame))));
    }

    /// Queues a streaming response on a session. Responses are strictly
    /// FIFO per session; frames of different responses never interleave.
    pub fn send_response(&mut self, token: u64, src: Box<dyn ResponseSource>) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.pending.push_back(src);
        }
    }

    /// Suspends/resumes reading this session's requests (order-sensitive
    /// admin operations pause their session until the ack is queued).
    pub fn set_paused(&mut self, token: u64, paused: bool) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.paused = paused;
        }
    }

    /// Stops reading requests; the session closes once its in-flight
    /// operations complete and the output queue flushes.
    pub fn begin_drain(&mut self, token: u64) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.draining = true;
        }
    }

    /// Reserves one in-flight operation slot on the session.
    pub fn inflight_inc(&mut self, token: u64) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.inflight += 1;
        }
    }

    /// Releases one in-flight slot (its completion was delivered — or
    /// discarded, if the session died first; either way the slot frees).
    pub fn inflight_dec(&mut self, token: u64) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.inflight = conn.inflight.saturating_sub(1);
        }
    }

    /// In-flight operations on the session (0 for unknown tokens).
    pub fn inflight(&self, token: u64) -> u32 {
        self.conns.get(&token).map(|c| c.inflight).unwrap_or(0)
    }

    /// Marks the hello exchange complete (stops the handshake timer).
    pub fn mark_handshaken(&mut self, token: u64) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.handshaken = true;
        }
    }

    /// Whether the session completed its hello exchange.
    pub fn handshaken(&self, token: u64) -> bool {
        self.conns.get(&token).map(|c| c.handshaken).unwrap_or(false)
    }

    /// Whether the session still exists.
    pub fn is_open(&self, token: u64) -> bool {
        self.conns.contains_key(&token)
    }

    fn accept_burst<L: Logic>(&mut self, logic: &mut L) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let (stream, _peer) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // Small response frames must not sit in Nagle's buffer
            // waiting for a delayed ACK.
            stream.set_nodelay(true).ok();
            let over = self.active >= self.cfg.max_connections;
            let mut conn = Conn::new(stream);
            conn.refusing = over;
            let token = self.next_token;
            self.next_token += 1;
            #[cfg(unix)]
            let registered = {
                use std::os::fd::AsRawFd;
                self.poller
                    .register(conn.stream.as_raw_fd(), token, Interest::READ)
                    .is_ok()
            };
            #[cfg(not(unix))]
            let registered = false;
            if !registered {
                continue;
            }
            self.conns.insert(token, conn);
            if over {
                // The refusal frame flushes through the normal write pump;
                // inbound bytes (the peer's hello) are read and discarded
                // so the close never turns into an RST that could eat the
                // queued error frame.
                logic.on_refused();
                let frame = logic.refusal_frame();
                self.send_frame(token, frame);
            } else {
                self.active += 1;
                logic.on_accept(self, token);
            }
        }
    }

    fn pump_read<L: Logic>(&mut self, logic: &mut L, token: u64) {
        loop {
            let step = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.closing {
                    return;
                }
                if conn.refusing || conn.draining {
                    // Discard inbound bytes; note EOF for teardown.
                    let mut scratch = [0u8; 4096];
                    loop {
                        match conn.stream.read(&mut scratch) {
                            Ok(0) => {
                                conn.peer_eof = true;
                                break;
                            }
                            Ok(_) => continue,
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    std::io::ErrorKind::WouldBlock
                                        | std::io::ErrorKind::Interrupted
                                ) =>
                            {
                                break;
                            }
                            Err(_) => {
                                conn.peer_eof = true;
                                break;
                            }
                        }
                    }
                    return;
                }
                if conn.paused {
                    return;
                }
                match conn.reader.fill_from(&mut conn.stream) {
                    Ok(ReadProgress::Frame(payload)) => ReadStep::Dispatch(payload),
                    Ok(ReadProgress::NeedMore) => ReadStep::Stop,
                    Ok(ReadProgress::Closed) => {
                        // Clean EOF: in-flight work still completes and
                        // flushes (the write pump notices a dead peer).
                        conn.draining = true;
                        conn.peer_eof = true;
                        ReadStep::Stop
                    }
                    Err(e) => {
                        match e {
                            tasm_proto::ProtoError::Oversized(_) => {
                                // Report before closing; a length-prefixed
                                // stream cannot resynchronize.
                                conn.draining = true;
                                let frame = tasm_proto::Message::Error {
                                    id: None,
                                    code: tasm_proto::ErrorCode::Malformed,
                                    message: "undecodable frame".to_string(),
                                }
                                .encode();
                                conn.pending.push_back(Box::new(OneFrame(Some(frame))));
                            }
                            _ => {
                                conn.draining = true;
                                conn.peer_eof = true;
                            }
                        }
                        ReadStep::Stop
                    }
                }
            };
            match step {
                ReadStep::Dispatch(payload) => logic.on_frame(self, token, payload),
                ReadStep::Stop => return,
            }
        }
    }

    /// Encode pump + write pump for one session: pull frames from the
    /// front response while under the low-water mark, then push queued
    /// bytes until the socket blocks.
    fn pump_out(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.closing {
            return;
        }
        loop {
            while conn.out.queued_bytes() < LOW_WATER {
                let flushed = conn.out.is_empty();
                let Some(src) = conn.pending.front_mut() else {
                    break;
                };
                match src.next_frame(flushed) {
                    NextFrame::Frame(f) => conn.out.push(f),
                    NextFrame::Wait => break,
                    NextFrame::Done => {
                        conn.pending.pop_front();
                    }
                }
            }
            if conn.out.is_empty() {
                conn.blocked_since = None;
                return;
            }
            match conn.out.write_to(&mut conn.stream) {
                Ok(WriteProgress::Flushed) => {
                    conn.blocked_since = None;
                    // Sources gated on `flushed` can now continue.
                    continue;
                }
                Ok(WriteProgress::Blocked { progressed }) => {
                    if progressed {
                        conn.blocked_since = None;
                    } else if conn.blocked_since.is_none() {
                        conn.blocked_since = Some(Instant::now());
                    }
                    return;
                }
                Err(_) => {
                    conn.closing = true;
                    return;
                }
            }
        }
    }

    /// Per-iteration housekeeping: output pumps, liveness timers,
    /// teardown, and interest reconciliation.
    fn sweep<L: Logic>(&mut self, logic: &mut L) {
        let now = Instant::now();
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        let mut to_close: Vec<u64> = Vec::new();
        for &token in &tokens {
            self.pump_out(token);
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            let expired = if conn.closing {
                true
            } else if conn.refusing {
                if conn.out.is_empty() && conn.pending.is_empty() && !conn.half_closed {
                    let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                    conn.half_closed = true;
                }
                conn.peer_eof || now.duration_since(conn.opened) > self.cfg.refuse_linger
            } else if !conn.handshaken
                && now.duration_since(conn.opened) > self.cfg.handshake_deadline
            {
                true
            } else if conn
                .reader
                .frame_started()
                .is_some_and(|t| now.duration_since(t) > self.cfg.frame_deadline)
            {
                true
            } else if conn
                .blocked_since
                .is_some_and(|t| now.duration_since(t) > self.cfg.write_stall)
            {
                true
            } else {
                conn.draining
                    && conn.inflight == 0
                    && conn.pending.is_empty()
                    && conn.out.is_empty()
            };
            if expired {
                to_close.push(token);
                continue;
            }
            let want = Interest {
                readable: if conn.refusing || conn.draining {
                    !conn.peer_eof
                } else {
                    !conn.paused
                },
                writable: !conn.out.is_empty(),
            };
            if want != conn.registered {
                #[cfg(unix)]
                {
                    use std::os::fd::AsRawFd;
                    let fd = conn.stream.as_raw_fd();
                    if self.poller.reregister(fd, token, want).is_ok() {
                        conn.registered = want;
                    }
                }
            }
        }
        for token in to_close {
            self.close(logic, token);
        }
    }

    fn close<L: Logic>(&mut self, logic: &mut L, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            #[cfg(unix)]
            {
                use std::os::fd::AsRawFd;
                let _ = self.poller.deregister(conn.stream.as_raw_fd());
            }
            if !conn.refusing {
                self.active -= 1;
                logic.on_close(token, conn.handshaken);
            }
        }
    }
}

/// Runs the loop until the shutdown flag is set *and* every session has
/// drained (in-flight operations completed, responses flushed — each
/// bounded by the write-stall deadline against unreachable peers).
pub fn run<L: Logic>(mut ctl: Ctl, mut logic: L) {
    let mut events: Vec<Event> = Vec::new();
    loop {
        if ctl.shutdown.load(Ordering::SeqCst) {
            for token in ctl.conns.keys().copied().collect::<Vec<_>>() {
                ctl.begin_drain(token);
            }
            if ctl.conns.is_empty() {
                break;
            }
        }
        if ctl.poller.wait(&mut events, ctl.cfg.poll_interval).is_err() {
            break;
        }
        let mut woke = false;
        for i in 0..events.len() {
            let ev = events[i];
            match ev.token {
                TOKEN_LISTENER => ctl.accept_burst(&mut logic),
                TOKEN_WAKE => {
                    ctl.wake_reader.drain();
                    woke = true;
                }
                token => {
                    if ev.readable || ev.hangup {
                        ctl.pump_read(&mut logic, token);
                    }
                    if ev.writable {
                        ctl.pump_out(token);
                    }
                }
            }
        }
        if woke {
            logic.on_wake(&mut ctl);
        }
        logic.on_tick(&mut ctl);
        ctl.sweep(&mut logic);
    }
    for token in ctl.conns.keys().copied().collect::<Vec<_>>() {
        ctl.close(&mut logic, token);
    }
}
