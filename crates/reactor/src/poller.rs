//! OS readiness notification behind one small API: `epoll` on Linux,
//! POSIX `poll(2)` elsewhere on unix, and an always-failing stub on other
//! platforms (callers fall back to their blocking engine there).
//!
//! No `libc` crate is available in this workspace, so the two or three
//! syscalls each backend needs are declared directly via `extern "C"` —
//! std already links the C library, the symbols are there.

use std::io;

/// Which readiness classes a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the idle state of every session.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// One readiness event. `hangup` folds POLLERR/POLLHUP/EPOLLRDHUP
/// together: the next read on the socket tells the session precisely how
/// it died.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    // On x86-64 the kernel ABI packs the struct; on other architectures
    // it is naturally aligned.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Level-triggered epoll instance. Level-triggering is deliberate:
    /// a session that leaves bytes unread (paused) simply drops `readable`
    /// from its interest set instead of needing edge-rearm bookkeeping.
    pub struct Poller {
        ep: OwnedFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                ep: unsafe { OwnedFd::from_raw_fd(fd) },
                buf: vec![EpollEvent { events: 0, data: 0 }; 512],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::default())
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            events.clear();
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n = unsafe {
                epoll_wait(
                    self.ep.as_raw_fd(),
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &self.buf[..n as usize] {
                // Packed struct: copy the fields out before use.
                let bits = ev.events;
                let token = ev.data;
                events.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Pollfd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut Pollfd, nfds: u64, timeout: i32) -> i32;
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    /// `poll(2)` backend: the registration list is rebuilt into a pollfd
    /// array per wait. O(n) per tick, which is fine at the connection
    /// counts non-Linux dev machines see.
    pub struct Poller {
        fds: Vec<Pollfd>,
        tokens: Vec<u64>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        fn find(&self, fd: RawFd) -> Option<usize> {
            self.fds.iter().position(|p| p.fd == fd)
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.fds.push(Pollfd {
                fd,
                events: mask(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let i = self
                .find(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds[i].events = mask(interest);
            self.tokens[i] = token;
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self
                .find(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            Ok(())
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            events.clear();
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as u64, ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (p, &token) in self.fds.iter().zip(&self.tokens) {
                if p.revents == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: p.revents & POLLIN != 0,
                    writable: p.revents & POLLOUT != 0,
                    hangup: p.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    fn mask(interest: Interest) -> i16 {
        let mut m = 0;
        if interest.readable {
            m |= POLLIN;
        }
        if interest.writable {
            m |= POLLOUT;
        }
        m
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    /// Stub: readiness polling is unix-only here. `new` fails, which makes
    /// the serving layer fall back to its blocking thread-per-connection
    /// engine on other platforms.
    pub struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "readiness polling is only implemented on unix",
            ))
        }

        pub fn register(&mut self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn reregister(&mut self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn deregister(&mut self, _fd: i32) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn wait(&mut self, _events: &mut Vec<Event>, _timeout: Duration) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }
    }
}

pub use sys::Poller;

/// The wake side of the reactor's self-notification channel. Worker
/// threads call [`Waker::wake`] after pushing a completion so the event
/// loop's `wait` returns immediately instead of at the next poll tick.
#[derive(Clone)]
pub struct Waker {
    #[cfg(unix)]
    tx: std::sync::Arc<std::os::unix::net::UnixStream>,
}

impl Waker {
    /// Nudges the event loop. Best-effort: a full pipe already guarantees
    /// a pending wakeup, and a closed one means the loop is gone — both
    /// are fine to ignore.
    pub fn wake(&self) {
        #[cfg(unix)]
        {
            use std::io::Write;
            let _ = (&*self.tx).write(&[1u8]);
        }
    }
}

/// The read side, owned by the event loop.
pub struct WakeReader {
    #[cfg(unix)]
    rx: std::os::unix::net::UnixStream,
}

impl WakeReader {
    /// Discards every pending wake byte.
    pub fn drain(&mut self) {
        #[cfg(unix)]
        {
            use std::io::Read;
            let mut buf = [0u8; 64];
            while matches!(self.rx.read(&mut buf), Ok(n) if n > 0) {}
        }
    }

    #[cfg(unix)]
    pub fn raw_fd(&self) -> std::os::fd::RawFd {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }
}

/// Builds the wake channel: a nonblocking socketpair, all std, no
/// syscall declarations needed.
pub fn wake_pipe() -> io::Result<(Waker, WakeReader)> {
    #[cfg(unix)]
    {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((
            Waker {
                tx: std::sync::Arc::new(tx),
            },
            WakeReader { rx },
        ))
    }
    #[cfg(not(unix))]
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "wake pipe is only implemented on unix",
    ))
}
