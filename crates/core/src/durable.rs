//! Crash-safe storage primitives: the injectable I/O shim, the
//! deterministic fault injector, and the recovery / fsck report types.
//!
//! TASM's storage manager re-organizes tile layouts continuously in the
//! background (§3.4.5, §4 incremental policies), so a crash can land in the
//! middle of a re-tile or a manifest update. This module supplies the
//! mechanism the commit protocol in [`crate::storage`] is built on:
//!
//! * [`StorageIo`] — the narrow filesystem surface every manifest and tile
//!   write goes through, so durability is testable;
//! * [`RealIo`] — the production implementation: durable writes (fsync
//!   before returning) and atomic renames (parent directory fsynced);
//! * [`FaultIo`] — a deterministic fault injector that counts mutating
//!   operations and fails, torn-writes, or half-removes at the Nth one,
//!   then behaves as a crashed process (every later operation fails too,
//!   so no cleanup code can run — exactly like `kill -9`);
//! * [`RecoveryReport`] / [`FsckReport`] — what startup recovery did and
//!   what an integrity check found.
//!
//! The crash-point sweep in `tests/crash_recovery.rs` drives a re-tile once
//! per injectable fault point and asserts that reopening the store always
//! recovers to a state bit-identical to exactly one of the two layout
//! epochs.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// The filesystem surface of the storage layer. Every manifest and tile
/// file operation goes through an implementation of this trait, so tests
/// can inject faults at any single operation and production code gets
/// durable (fsynced) writes in one place.
///
/// Mutating operations are [`StorageIo::write`], [`StorageIo::rename`],
/// [`StorageIo::create_dir_all`], [`StorageIo::remove_dir_all`], and
/// [`StorageIo::remove_file`]; the rest only observe.
pub trait StorageIo: Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Durably writes a whole file: create/truncate, write, fsync. Not
    /// atomic on its own — callers that need atomic replacement write to a
    /// temporary name and [`StorageIo::rename`] over the target.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Durably appends to a file (creating it if absent): open in append
    /// mode, write, fsync. The write-ahead log of the tiered semantic index
    /// goes through this, so fault injectors count it as mutating.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to` (replacing `to` if it exists) and
    /// makes the rename durable.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Creates a directory and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Removes a directory tree.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Removes a single file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Makes a directory's entries durable (directory fsync). Called once
    /// after a batch of [`StorageIo::write`]s and before the commit point
    /// that depends on them — per-file writes deliberately do *not* sync
    /// their parent, so batch dirent durability costs one barrier, not one
    /// per file. Counted as a mutating operation by fault injectors.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// Whether a path exists.
    fn exists(&self, path: &Path) -> bool;

    /// Whether a path is a directory.
    fn is_dir(&self, path: &Path) -> bool;

    /// The entries of a directory, sorted by name (deterministic order for
    /// recovery and fault-point sweeps).
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// The length of a file in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;

    /// Reads at most `max_len` bytes from the start of a file — lets
    /// header-only consumers (fsck) avoid pulling whole tile payloads into
    /// memory. The default reads everything and truncates.
    fn read_prefix(&self, path: &Path, max_len: usize) -> io::Result<Vec<u8>> {
        let mut data = self.read(path)?;
        data.truncate(max_len);
        Ok(data)
    }
}

/// The production [`StorageIo`]: plain filesystem calls with durability —
/// writes fsync the file before returning, renames fsync the destination's
/// parent directory so the new name survives a power cut.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl RealIo {
    /// Fsyncs a directory. A filesystem's *refusal* to fsync directories
    /// (ENOTSUP/EINVAL) is tolerated — that durability hole cannot be
    /// fixed from here — but a real I/O failure (e.g. EIO from a dying
    /// disk) must surface: the commit protocol's barriers depend on it.
    fn fsync_dir(dir: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            let handle = fs::File::open(dir)?;
            if let Err(e) = handle.sync_all() {
                if !matches!(
                    e.kind(),
                    io::ErrorKind::Unsupported | io::ErrorKind::InvalidInput
                ) {
                    return Err(e);
                }
            }
        }
        #[cfg(not(unix))]
        let _ = dir;
        Ok(())
    }

    /// [`RealIo::fsync_dir`] on a path's parent — what makes a rename's
    /// new name durable on POSIX.
    fn fsync_parent(path: &Path) -> io::Result<()> {
        match path.parent() {
            Some(parent) if !parent.as_os_str().is_empty() => Self::fsync_dir(parent),
            _ => Self::fsync_dir(Path::new(".")),
        }
    }
}

impl StorageIo for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(data)?;
        f.sync_all()
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(data)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)?;
        Self::fsync_parent(to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::remove_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        Self::fsync_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries: Vec<PathBuf> = fs::read_dir(path)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        Ok(entries)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn read_prefix(&self, path: &Path, max_len: usize) -> io::Result<Vec<u8>> {
        use std::io::Read as _;
        let mut data = Vec::with_capacity(max_len.min(64 << 10));
        fs::File::open(path)?
            .take(max_len as u64)
            .read_to_end(&mut data)?;
        Ok(data)
    }
}

/// How an injected fault manifests at the target operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The crash lands just *before* the operation: nothing happens on
    /// disk, the call fails.
    FailStop,
    /// The crash lands in the *middle* of the operation: a write persists
    /// only a prefix of its data (no fsync), a directory removal unlinks
    /// only half its entries. Operations that are atomic at the syscall
    /// level (rename, create, single-file remove) degrade to
    /// [`FaultKind::FailStop`].
    TornWrite,
}

/// A deterministic fault-injecting [`StorageIo`] for crash testing.
///
/// Mutating operations are numbered 1, 2, 3, … across the life of the
/// injector. [`FaultIo::arm`] picks the operation that faults; from that
/// moment the injector behaves like a crashed process — every subsequent
/// operation, reads and cleanup removals included, fails — so error paths
/// cannot tidy up, exactly as if the process had been killed. The test
/// harness then reopens the directory with [`RealIo`] and checks recovery.
///
/// ```no_run
/// # use std::sync::Arc;
/// # use tasm_core::durable::{FaultIo, FaultKind};
/// # use tasm_core::VideoStore;
/// let fault = FaultIo::new();
/// let store = VideoStore::open_with_io("/tmp/s", 0, 0, fault.clone()).unwrap();
/// // ... set up state ...
/// fault.arm(fault.mutating_ops() + 3, FaultKind::TornWrite);
/// // the third mutating operation from now tears, then everything fails
/// ```
pub struct FaultIo {
    inner: RealIo,
    ops: AtomicU64,
    fail_at: AtomicU64,
    kind: AtomicU8,
    crashed: AtomicBool,
}

impl FaultIo {
    /// A disarmed injector: counts mutating operations, never faults.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<FaultIo> {
        Arc::new(FaultIo {
            inner: RealIo,
            ops: AtomicU64::new(0),
            fail_at: AtomicU64::new(u64::MAX),
            kind: AtomicU8::new(0),
            crashed: AtomicBool::new(false),
        })
    }

    /// Arms the injector: the `at_op`-th mutating operation (1-based,
    /// counted from the injector's construction) faults with `kind`.
    pub fn arm(&self, at_op: u64, kind: FaultKind) {
        self.kind.store(
            match kind {
                FaultKind::FailStop => 0,
                FaultKind::TornWrite => 1,
            },
            Ordering::SeqCst,
        );
        self.fail_at.store(at_op, Ordering::SeqCst);
    }

    /// Mutating operations attempted so far.
    pub fn mutating_ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Whether the fault has fired (the simulated process is dead).
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    fn armed_kind(&self) -> FaultKind {
        if self.kind.load(Ordering::SeqCst) == 0 {
            FaultKind::FailStop
        } else {
            FaultKind::TornWrite
        }
    }

    fn crash_error() -> io::Error {
        io::Error::other("injected crash: storage I/O halted")
    }

    /// Accounts one mutating operation. `Ok(None)` means proceed normally;
    /// `Ok(Some(kind))` means this is the faulting operation (the caller
    /// performs the torn half-effect, if any, then fails).
    fn step(&self) -> io::Result<Option<FaultKind>> {
        if self.crashed() {
            return Err(Self::crash_error());
        }
        let n = self.ops.fetch_add(1, Ordering::SeqCst) + 1;
        if n == self.fail_at.load(Ordering::SeqCst) {
            self.crashed.store(true, Ordering::SeqCst);
            return Ok(Some(self.armed_kind()));
        }
        Ok(None)
    }

    fn observe(&self) -> io::Result<()> {
        if self.crashed() {
            return Err(Self::crash_error());
        }
        Ok(())
    }
}

impl StorageIo for FaultIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.observe()?;
        self.inner.read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.step()? {
            None => self.inner.write(path, data),
            Some(FaultKind::FailStop) => Err(Self::crash_error()),
            Some(FaultKind::TornWrite) => {
                // Persist an unsynced prefix: the classic torn write.
                let _ = fs::write(path, &data[..data.len() / 2]);
                Err(Self::crash_error())
            }
        }
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.step()? {
            None => self.inner.append(path, data),
            Some(FaultKind::FailStop) => Err(Self::crash_error()),
            Some(FaultKind::TornWrite) => {
                // Append an unsynced prefix: a torn log record.
                if let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(path) {
                    let _ = f.write_all(&data[..data.len() / 2]);
                }
                Err(Self::crash_error())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.step()? {
            None => self.inner.rename(from, to),
            Some(_) => Err(Self::crash_error()), // rename is atomic
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.step()? {
            None => self.inner.create_dir_all(path),
            Some(_) => Err(Self::crash_error()),
        }
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.step()? {
            None => self.inner.remove_dir_all(path),
            Some(FaultKind::FailStop) => Err(Self::crash_error()),
            Some(FaultKind::TornWrite) => {
                // Unlink half the entries: a removal interrupted midway.
                if let Ok(entries) = self.inner.list_dir(path) {
                    for e in entries.iter().take(entries.len().div_ceil(2)) {
                        if e.is_dir() {
                            let _ = fs::remove_dir_all(e);
                        } else {
                            let _ = fs::remove_file(e);
                        }
                    }
                }
                Err(Self::crash_error())
            }
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.step()? {
            None => self.inner.remove_file(path),
            Some(_) => Err(Self::crash_error()),
        }
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        match self.step()? {
            None => self.inner.sync_dir(path),
            Some(_) => Err(Self::crash_error()), // the barrier never ran
        }
    }

    fn exists(&self, path: &Path) -> bool {
        !self.crashed() && self.inner.exists(path)
    }

    fn is_dir(&self, path: &Path) -> bool {
        !self.crashed() && self.inner.is_dir(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.observe()?;
        self.inner.list_dir(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.observe()?;
        self.inner.file_len(path)
    }

    fn read_prefix(&self, path: &Path, max_len: usize) -> io::Result<Vec<u8>> {
        self.observe()?;
        self.inner.read_prefix(path, max_len)
    }
}

// ---------------------------------------------------------------------
// On-disk names of the commit protocol
// ---------------------------------------------------------------------

/// Suffix of every temporary file used for atomic replacement.
pub(crate) const TMP_SUFFIX: &str = ".tmp";

/// The final directory name of a SOT's tile files at layout epoch
/// `retile_count`. The initial epoch (count 0) keeps the unstamped name an
/// ingest writes; every re-tile publishes into a fresh `_r`-stamped
/// directory, so a superseded epoch's tile files coexist on disk with the
/// current ones until the readers pinned to the old epoch drain and its
/// directory is reclaimed.
pub(crate) fn sot_dir_name(start: u32, end: u32, retile_count: u32) -> String {
    if retile_count == 0 {
        format!("sot_{start:06}_{end:06}")
    } else {
        format!("sot_{start:06}_{end:06}_r{retile_count:06}")
    }
}

/// The staging directory a re-tile writes its new tile files into before
/// the commit point.
pub(crate) fn staging_dir_name(start: u32, end: u32) -> String {
    format!("staging_sot_{start:06}_{end:06}")
}

/// The commit record whose appearance (by atomic rename) is the commit
/// point of a re-tile.
pub(crate) fn commit_file_name(start: u32, end: u32) -> String {
    format!("commit_sot_{start:06}_{end:06}.json")
}

/// Parses `"{prefix}{start:06}_{end:06}{suffix}"` back into the SOT range.
fn parse_ranged(name: &str, prefix: &str, suffix: &str) -> Option<(u32, u32)> {
    let body = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    let (s, e) = body.split_once('_')?;
    if s.len() != 6 || e.len() != 6 {
        return None;
    }
    Some((s.parse().ok()?, e.parse().ok()?))
}

/// Recognizes a final SOT directory name, stamped or not, returning
/// `(start, end, retile_count)` — the unstamped form is epoch 0.
pub(crate) fn parse_sot_name(name: &str) -> Option<(u32, u32, u32)> {
    let body = name.strip_prefix("sot_")?;
    let (range, retile_count) = match body.split_once("_r") {
        Some((range, rc)) => {
            if rc.len() != 6 {
                return None;
            }
            (range, rc.parse().ok()?)
        }
        None => (body, 0),
    };
    let (s, e) = range.split_once('_')?;
    if s.len() != 6 || e.len() != 6 {
        return None;
    }
    Some((s.parse().ok()?, e.parse().ok()?, retile_count))
}

/// Recognizes a staging directory name.
pub(crate) fn parse_staging_name(name: &str) -> Option<(u32, u32)> {
    parse_ranged(name, "staging_sot_", "")
}

/// Recognizes a commit record name.
pub(crate) fn parse_commit_name(name: &str) -> Option<(u32, u32)> {
    parse_ranged(name, "commit_sot_", ".json")
}

// ---------------------------------------------------------------------
// Recovery and fsck reports
// ---------------------------------------------------------------------

/// One repair startup recovery performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryAction {
    /// A commit record existed: the re-tile had passed its commit point, so
    /// recovery completed it (staging promoted, manifest rewritten from the
    /// record, record removed). The store is in the post-retile epoch.
    RolledForward {
        /// Video the interrupted re-tile belonged to.
        video: String,
        /// First frame of the re-tiled SOT.
        sot_start: u32,
        /// Past-the-end frame of the re-tiled SOT.
        sot_end: u32,
    },
    /// Staging state existed without a (valid) commit record: the re-tile
    /// had not committed, so recovery discarded it. The store is in the
    /// pre-retile epoch.
    RolledBack {
        /// Video the interrupted re-tile belonged to.
        video: String,
        /// First frame of the SOT whose staging state was discarded.
        sot_start: u32,
        /// Past-the-end frame of that SOT.
        sot_end: u32,
    },
    /// A superseded layout epoch's tile directory — retired by a committed
    /// re-tile but not yet reclaimed when the process died — was removed.
    /// No reader can hold an epoch pin across a restart, so every directory
    /// other than the manifest's current epoch set is garbage at startup.
    ReclaimedEpoch {
        /// Video the retired directory belonged to.
        video: String,
        /// First frame of the SOT.
        sot_start: u32,
        /// Past-the-end frame of the SOT.
        sot_end: u32,
        /// The reclaimed directory's layout epoch (`retile_count`).
        epoch: u32,
    },
    /// A stray `*.tmp` file from an interrupted atomic write was removed.
    RemovedTemp {
        /// Video directory the file was found in.
        video: String,
        /// The removed file name.
        file: String,
    },
    /// A video directory without a manifest — an ingest that crashed before
    /// publishing — was removed.
    RemovedPartialVideo {
        /// The half-ingested video.
        video: String,
    },
}

impl std::fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryAction::RolledForward {
                video,
                sot_start,
                sot_end,
            } => write!(
                f,
                "rolled forward committed re-tile of '{video}' SOT {sot_start}..{sot_end}"
            ),
            RecoveryAction::RolledBack {
                video,
                sot_start,
                sot_end,
            } => write!(
                f,
                "rolled back uncommitted re-tile of '{video}' SOT {sot_start}..{sot_end}"
            ),
            RecoveryAction::ReclaimedEpoch {
                video,
                sot_start,
                sot_end,
                epoch,
            } => write!(
                f,
                "reclaimed superseded layout epoch {epoch} of '{video}' SOT {sot_start}..{sot_end}"
            ),
            RecoveryAction::RemovedTemp { video, file } => {
                write!(f, "removed interrupted temp file '{file}' of '{video}'")
            }
            RecoveryAction::RemovedPartialVideo { video } => {
                write!(f, "removed partially ingested video '{video}'")
            }
        }
    }
}

/// What startup recovery did when the store was opened. Empty on a clean
/// shutdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The repairs, in the order they were applied.
    pub actions: Vec<RecoveryAction>,
    /// True when recovery did not run because another live handle holds
    /// the store lock — that handle already recovered the store (or owns
    /// the in-flight operations that look like crash residue), so this
    /// open deliberately repaired nothing.
    pub deferred: bool,
}

impl RecoveryReport {
    /// True when the store needed no repair.
    pub fn is_clean(&self) -> bool {
        self.actions.is_empty()
    }
}

/// One inconsistency `fsck` found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckIssue {
    /// `manifest.json` is missing or does not parse.
    ManifestUnreadable {
        /// The affected video.
        video: String,
        /// Why it could not be read.
        detail: String,
    },
    /// The manifest's SOT entries do not tile `0..frame_count` contiguously.
    SotChainBroken {
        /// The affected video.
        video: String,
        /// What is wrong with the chain.
        detail: String,
    },
    /// A tile file named by the manifest is missing or unreadable.
    MissingTile {
        /// The affected video.
        video: String,
        /// First frame of the SOT.
        sot_start: u32,
        /// Raster index of the missing tile.
        tile: u32,
    },
    /// A tile file failed container validation (bad magic, torn tail,
    /// invalid header).
    TileCorrupt {
        /// The affected video.
        video: String,
        /// First frame of the SOT.
        sot_start: u32,
        /// Raster index of the corrupt tile.
        tile: u32,
        /// The container error.
        detail: String,
    },
    /// A tile file parses but disagrees with the manifest (dimensions, GOP
    /// length, or frame count).
    TileMismatch {
        /// The affected video.
        video: String,
        /// First frame of the SOT.
        sot_start: u32,
        /// Raster index of the mismatched tile.
        tile: u32,
        /// The disagreement.
        detail: String,
    },
    /// A file or directory the manifest does not account for (staging
    /// residue, commit records, stray files) — recovery should have removed
    /// it.
    Stray {
        /// The affected video.
        video: String,
        /// Store-relative path of the stray entry.
        path: String,
    },
}

impl std::fmt::Display for FsckIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsckIssue::ManifestUnreadable { video, detail } => {
                write!(f, "'{video}': manifest unreadable: {detail}")
            }
            FsckIssue::SotChainBroken { video, detail } => {
                write!(f, "'{video}': SOT chain broken: {detail}")
            }
            FsckIssue::MissingTile {
                video,
                sot_start,
                tile,
            } => write!(f, "'{video}': SOT @{sot_start}: tile {tile} missing"),
            FsckIssue::TileCorrupt {
                video,
                sot_start,
                tile,
                detail,
            } => write!(
                f,
                "'{video}': SOT @{sot_start}: tile {tile} corrupt: {detail}"
            ),
            FsckIssue::TileMismatch {
                video,
                sot_start,
                tile,
                detail,
            } => write!(
                f,
                "'{video}': SOT @{sot_start}: tile {tile} disagrees with manifest: {detail}"
            ),
            FsckIssue::Stray { video, path } => {
                write!(f, "'{video}': stray entry '{path}'")
            }
        }
    }
}

/// The result of a store integrity check ([`crate::VideoStore::fsck`]):
/// every manifest validated against its on-disk tile files and their
/// container headers.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Videos examined.
    pub videos_checked: u32,
    /// Tile files whose containers were validated.
    pub tiles_checked: u64,
    /// Everything found wrong, in discovery order.
    pub issues: Vec<FsckIssue>,
}

impl FsckReport {
    /// True when no issues were found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Adapts a [`StorageIo`] to the index crate's `TierIo`, so the tiered
/// semantic index (which lives below this crate in the dependency graph)
/// writes its WAL, runs, and compactions through the same shim as tile
/// commits — one fault injector, one crash-point sweep, covering both.
pub struct StorageTierIo(pub Arc<dyn StorageIo>);

impl tasm_index::TierIo for StorageTierIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.0.read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.0.write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.0.append(path, data)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.0.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.0.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.0.create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.0.sync_dir(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.0.list_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.0.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_names_round_trip() {
        assert_eq!(sot_dir_name(0, 30, 0), "sot_000000_000030");
        assert_eq!(sot_dir_name(0, 30, 2), "sot_000000_000030_r000002");
        assert_eq!(parse_sot_name("sot_000000_000030"), Some((0, 30, 0)));
        assert_eq!(parse_sot_name(&sot_dir_name(30, 60, 7)), Some((30, 60, 7)));
        assert_eq!(parse_sot_name("sot_000000_000030_r12"), None);
        assert_eq!(parse_sot_name("sot_0_30"), None);
        assert_eq!(
            parse_staging_name(&staging_dir_name(30, 60)),
            Some((30, 60))
        );
        assert_eq!(parse_commit_name(&commit_file_name(30, 60)), Some((30, 60)));
        assert_eq!(parse_commit_name("commit_sot_1_2.json"), None);
        assert_eq!(parse_staging_name("sot_000000_000030"), None);
        assert_eq!(parse_commit_name("manifest.json"), None);
    }

    #[test]
    fn fault_io_counts_and_crashes_deterministically() {
        let dir = std::env::temp_dir().join(format!("tasm-faultio-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let io = FaultIo::new();
        io.create_dir_all(&dir).unwrap();
        io.write(&dir.join("a"), b"hello world!").unwrap();
        assert_eq!(io.mutating_ops(), 2);

        io.arm(3, FaultKind::TornWrite);
        let err = io.write(&dir.join("b"), b"0123456789").unwrap_err();
        assert!(err.to_string().contains("injected crash"));
        assert!(io.crashed());
        // The torn prefix persisted (half the payload)…
        assert_eq!(fs::read(dir.join("b")).unwrap(), b"01234");
        // …and the dead process can neither read nor clean up.
        assert!(io.read(&dir.join("a")).is_err());
        assert!(io.remove_file(&dir.join("b")).is_err());
        assert!(!io.exists(&dir.join("a")));
        assert!(
            fs::read(dir.join("b")).is_ok(),
            "torn file survives on disk"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fail_stop_performs_nothing() {
        let dir = std::env::temp_dir().join(format!("tasm-failstop-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let io = FaultIo::new();
        io.create_dir_all(&dir).unwrap();
        io.arm(2, FaultKind::FailStop);
        assert!(io.write(&dir.join("x"), b"data").is_err());
        assert!(!dir.join("x").exists(), "fail-stop must not touch the disk");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn real_io_lists_sorted() {
        let dir = std::env::temp_dir().join(format!("tasm-realio-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let io = RealIo;
        io.create_dir_all(&dir).unwrap();
        for name in ["c", "a", "b"] {
            io.write(&dir.join(name), b"x").unwrap();
        }
        let names: Vec<String> = io
            .list_dir(&dir)
            .unwrap()
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(io.file_len(&dir.join("a")).unwrap(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
