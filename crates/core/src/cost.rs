//! TASM's cost model and its calibration (§4.1).
//!
//! The estimated cost of executing query `q` over a sequence of tiles `s`
//! encoded with layout `L` is `C(s, q, L) = β·P + γ·T`, where `P` is the
//! number of pixels (samples) decoded and `T` the number of tile chunks
//! decoded. The paper validates this form by fitting a linear model over
//! 1,400 (video, object, layout) decode measurements, reaching R² = 0.996;
//! [`fit_linear`] reproduces that fit from this codec's measurements (see
//! the `fit_cost_model` harness binary), and the defaults below come from
//! running it on the reference machine.
//!
//! Re-encoding cost `R(s, L)` is likewise "estimated using a linear model
//! based on the number of pixels being encoded" (§5.3).

use serde::{Deserialize, Serialize};
use tasm_codec::TileLayout;
use tasm_index::Detection;
use tasm_video::Rect;

/// Decode work predicted for a query under some layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Work {
    /// Samples decoded (luma + chroma), the paper's `P`.
    pub pixels: u64,
    /// Tile chunks decoded (tiles × frames), the paper's `T`.
    pub tile_chunks: u64,
}

/// The fitted query cost model `C = β·P + γ·T`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Seconds per decoded sample.
    pub beta: f64,
    /// Seconds per decoded tile chunk.
    pub gamma: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated on the reference machine with `fit_cost_model`
        // (single-threaded software decode): ~3.3 ns/sample plus ~7 µs of
        // per-tile-chunk overhead. Re-fit with CostModel::fit for new
        // hardware, as §4.1 prescribes.
        CostModel {
            beta: 3.3e-9,
            gamma: 7.4e-6,
        }
    }
}

impl CostModel {
    /// Estimated seconds to perform `work`.
    pub fn cost(&self, work: Work) -> f64 {
        self.beta * work.pixels as f64 + self.gamma * work.tile_chunks as f64
    }

    /// Fits β and γ from measurements, returning the model and its R².
    /// Panics if fewer than three samples are provided.
    pub fn fit(samples: &[WorkSample]) -> (CostModel, f64) {
        let fit = fit_linear(samples);
        (
            CostModel {
                beta: fit.beta,
                gamma: fit.gamma,
            },
            fit.r2,
        )
    }
}

/// The linear re-encode cost model `R(s, L)` (§5.3): seconds per encoded
/// sample, fit from encode timings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncodeModel {
    /// Seconds per encoded source sample.
    pub seconds_per_sample: f64,
}

impl Default for EncodeModel {
    fn default() -> Self {
        // Calibrated alongside the decode model; software encode with motion
        // search is roughly 2-3× decode.
        EncodeModel {
            seconds_per_sample: 8.2e-9,
        }
    }
}

impl EncodeModel {
    /// Estimated seconds to re-encode `frames` frames of a `w`×`h` region.
    pub fn reencode_cost(&self, w: u32, h: u32, frames: u32) -> f64 {
        let samples = w as u64 * h as u64 * 3 / 2;
        self.seconds_per_sample * (samples * frames as u64) as f64
    }
}

/// One calibration measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkSample {
    /// Samples decoded.
    pub pixels: u64,
    /// Tile chunks decoded.
    pub tile_chunks: u64,
    /// Measured wall-clock seconds.
    pub seconds: f64,
}

/// Result of the two-variable least-squares fit (no intercept: zero work
/// takes zero time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// Seconds per sample.
    pub beta: f64,
    /// Seconds per tile chunk.
    pub gamma: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Ordinary least squares for `seconds ≈ β·pixels + γ·chunks`.
///
/// # Panics
/// Panics with fewer than three samples (under-determined).
pub fn fit_linear(samples: &[WorkSample]) -> FitResult {
    assert!(samples.len() >= 3, "need at least 3 samples to fit");
    // Normal equations for X = [p, t]: (XᵀX) w = Xᵀy.
    let (mut spp, mut spt, mut stt, mut spy, mut sty) = (0f64, 0f64, 0f64, 0f64, 0f64);
    for s in samples {
        let p = s.pixels as f64;
        let t = s.tile_chunks as f64;
        spp += p * p;
        spt += p * t;
        stt += t * t;
        spy += p * s.seconds;
        sty += t * s.seconds;
    }
    let det = spp * stt - spt * spt;
    let (beta, gamma) = if det.abs() < 1e-30 {
        // Degenerate (e.g. all chunks proportional to pixels): fall back to
        // a single-variable fit on pixels.
        (if spp > 0.0 { spy / spp } else { 0.0 }, 0.0)
    } else {
        ((spy * stt - sty * spt) / det, (sty * spp - spy * spt) / det)
    };

    let mean_y: f64 = samples.iter().map(|s| s.seconds).sum::<f64>() / samples.len() as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for s in samples {
        let pred = beta * s.pixels as f64 + gamma * s.tile_chunks as f64;
        ss_res += (s.seconds - pred).powi(2);
        ss_tot += (s.seconds - mean_y).powi(2);
    }
    let r2 = if ss_tot <= 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    FitResult { beta, gamma, r2 }
}

/// Estimates the decode work for a query under a layout.
///
/// `detections` are the boxes the query must return within the SOT (already
/// filtered to the query's frame window). Decoding starts at the GOP
/// boundary at or before the first requested frame, so warm-up frames are
/// charged, exactly as the real decoder behaves.
pub fn estimate_work(
    layout: &TileLayout,
    detections: &[Detection],
    query_frames: std::ops::Range<u32>,
    sot_start: u32,
    gop_len: u32,
) -> Work {
    if detections.is_empty() || query_frames.is_empty() {
        return Work::default();
    }
    // Tiles that must be decoded: every tile intersecting any requested box.
    let mut needed = vec![false; layout.tile_count() as usize];
    for d in detections {
        for t in layout.tiles_intersecting(&d.bbox) {
            needed[t as usize] = true;
        }
    }
    let tile_area: u64 = layout
        .tiles()
        .filter(|(i, _)| needed[*i as usize])
        .map(|(_, r)| r.area())
        .sum();
    let tiles: u64 = needed.iter().filter(|&&n| n).count() as u64;
    if tiles == 0 {
        return Work::default();
    }
    // Frames decoded: from the GOP boundary preceding the window's start
    // (relative to the SOT) through the window's end.
    let rel_start = query_frames.start.saturating_sub(sot_start);
    let warmup_start = rel_start / gop_len.max(1) * gop_len.max(1);
    let frames = (query_frames.end.saturating_sub(sot_start)).saturating_sub(warmup_start) as u64;
    Work {
        // Samples = luma area × 3/2 for 4:2:0 chroma.
        pixels: frames * tile_area * 3 / 2,
        tile_chunks: frames * tiles,
    }
}

/// `P(s, q, L) / P(s, q, ω)` — the pixel ratio behind the not-tiling rule
/// (§3.4.4 / §5.2.3). Returns 1.0 when the untiled work is zero.
pub fn pixel_ratio(
    layout: &TileLayout,
    detections: &[Detection],
    query_frames: std::ops::Range<u32>,
    sot_start: u32,
    gop_len: u32,
) -> f64 {
    let omega = TileLayout::untiled(layout.frame_width(), layout.frame_height());
    let tiled = estimate_work(layout, detections, query_frames.clone(), sot_start, gop_len);
    let untiled = estimate_work(&omega, detections, query_frames, sot_start, gop_len);
    if untiled.pixels == 0 {
        1.0
    } else {
        tiled.pixels as f64 / untiled.pixels as f64
    }
}

/// Convenience: boxes of a detection list.
pub fn detection_boxes(detections: &[Detection]) -> Vec<Rect> {
    detections.iter().map(|d| d.bbox).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(frame: u32, x: u32, y: u32) -> Detection {
        Detection {
            frame,
            bbox: Rect::new(x, y, 32, 32),
        }
    }

    #[test]
    fn fit_recovers_known_coefficients() {
        let beta = 2e-8;
        let gamma = 3e-5;
        let samples: Vec<WorkSample> = (1..100u64)
            .map(|i| WorkSample {
                pixels: i * 100_000,
                tile_chunks: (i % 7) * 30,
                seconds: beta * (i * 100_000) as f64 + gamma * ((i % 7) * 30) as f64,
            })
            .collect();
        let fit = fit_linear(&samples);
        assert!((fit.beta - beta).abs() / beta < 1e-6, "beta {}", fit.beta);
        assert!(
            (fit.gamma - gamma).abs() / gamma < 1e-6,
            "gamma {}",
            fit.gamma
        );
        assert!(fit.r2 > 0.9999, "r2 {}", fit.r2);
    }

    #[test]
    fn fit_handles_degenerate_collinear_input() {
        // chunks exactly proportional to pixels: determinant ~ 0.
        let samples: Vec<WorkSample> = (1..50u64)
            .map(|i| WorkSample {
                pixels: i * 1000,
                tile_chunks: i * 10,
                seconds: 1e-8 * (i * 1000) as f64,
            })
            .collect();
        let fit = fit_linear(&samples);
        let pred = fit.beta * 10_000.0 + fit.gamma * 100.0;
        assert!((pred - 1e-4).abs() < 1e-6, "prediction {pred}");
    }

    #[test]
    fn estimate_work_empty_inputs() {
        let l = TileLayout::untiled(640, 352);
        assert_eq!(estimate_work(&l, &[], 0..30, 0, 30), Work::default());
        assert_eq!(
            estimate_work(&l, &[det(0, 0, 0)], 10..10, 0, 30),
            Work::default()
        );
    }

    #[test]
    fn untiled_work_charges_whole_frames() {
        let l = TileLayout::untiled(640, 352);
        let w = estimate_work(&l, &[det(5, 100, 100)], 0..30, 0, 30);
        assert_eq!(w.tile_chunks, 30);
        assert_eq!(w.pixels, 30 * 640 * 352 * 3 / 2);
    }

    #[test]
    fn tiled_work_charges_only_needed_tiles() {
        let l = TileLayout::uniform(640, 352, 2, 2).unwrap();
        // One box fully inside the top-left tile.
        let w = estimate_work(&l, &[det(0, 10, 10)], 0..30, 0, 30);
        assert_eq!(w.tile_chunks, 30);
        assert_eq!(w.pixels, 30 * (320 * 176) * 3 / 2);
        // Box straddling all four tiles.
        let center = Detection {
            frame: 0,
            bbox: Rect::new(300, 160, 40, 40),
        };
        let w = estimate_work(&l, &[center], 0..30, 0, 30);
        assert_eq!(w.tile_chunks, 120);
        assert_eq!(w.pixels, 30 * (640 * 352) * 3 / 2);
    }

    #[test]
    fn warmup_frames_are_charged() {
        let l = TileLayout::untiled(640, 352);
        // SOT starts at frame 100, GOP 30. Query 115..125 must decode from
        // frame 110 (local 10 is inside GOP starting at local 0 — wait,
        // local start = 15, GOP boundary at 0). Frames decoded: 0..25 = 25.
        let w = estimate_work(&l, &[det(115, 0, 0)], 115..125, 100, 30);
        assert_eq!(w.tile_chunks, 25);
    }

    #[test]
    fn pixel_ratio_bounds() {
        let fine = TileLayout::new(vec![64, 512, 64], vec![32, 288, 32]).unwrap();
        let dets = [Detection {
            frame: 0,
            bbox: Rect::new(0, 0, 48, 24),
        }];
        let r = pixel_ratio(&fine, &dets, 0..30, 0, 30);
        assert!(r > 0.0 && r < 1.0, "ratio {r}");
        let omega = TileLayout::untiled(640, 352);
        assert_eq!(pixel_ratio(&omega, &dets, 0..30, 0, 30), 1.0);
        assert_eq!(pixel_ratio(&omega, &[], 0..30, 0, 30), 1.0);
    }

    #[test]
    fn cost_model_orders_layouts() {
        let m = CostModel::default();
        let small = Work {
            pixels: 1_000_000,
            tile_chunks: 30,
        };
        let large = Work {
            pixels: 10_000_000,
            tile_chunks: 30,
        };
        assert!(m.cost(small) < m.cost(large));
        // Many tiny tiles can cost more than fewer larger ones.
        let many_tiles = Work {
            pixels: 1_000_000,
            tile_chunks: 3000,
        };
        assert!(m.cost(many_tiles) > m.cost(small));
    }

    #[test]
    fn encode_model_scales_linearly() {
        let m = EncodeModel::default();
        let one = m.reencode_cost(640, 352, 30);
        let two = m.reencode_cost(640, 352, 60);
        assert!((two / one - 2.0).abs() < 1e-9);
    }
}
