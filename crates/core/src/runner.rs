//! Workload execution over the tiling strategies of §5.3.
//!
//! The evaluation compares four strategies on each workload:
//!
//! * **Not tiled** — the baseline; every query decodes full frames.
//! * **All objects** — pre-tile the whole video around everything detected
//!   before queries run (eager detection + KQKO).
//! * **Incremental, more** — after a query for a new object class, re-tile
//!   the touched GOPs around all classes queried so far.
//! * **Incremental, regret** — the §4.4 policy: accumulate estimated
//!   improvements per alternative layout, re-tile when regret exceeds
//!   `η · R(s, L)`.
//!
//! Figure 12 additionally accounts the *initial* detection cost of
//! pre-tiling strategies (full-YOLO or background subtraction up front) and
//! lets pre-tiled videos continue with the regret policy.
//!
//! The runner performs lazy detection at query time for strategies that
//! have no up-front pass, exactly as §4.3's lazy strategy describes:
//! detections are a byproduct of query execution and their (simulated) cost
//! is recorded separately so harnesses can include or exclude it per
//! figure.

use crate::scan::LabelPredicate;
use crate::tasm::{Tasm, TasmError};
use serde::{Deserialize, Serialize};
use std::ops::Range;
use tasm_detect::Detector;
use tasm_video::{FrameSource, Rect};

/// A ground-truth oracle: the generator's boxes for a frame. Detectors
/// degrade this; TASM itself never sees it.
pub type TruthFn<'a> = &'a (dyn Fn(u32) -> Vec<(&'static str, Rect)> + Sync);

/// One workload query (label + frame window).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunQuery {
    /// Target object class.
    pub label: String,
    /// Frame window.
    pub frames: Range<u32>,
}

/// The strategy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Never tile (baseline).
    NotTiled,
    /// Detect everything up front, pre-tile around all objects. When
    /// `then_regret`, continue adapting with the regret policy (Figure 12).
    PretileAllObjects {
        /// Keep adapting after the initial tiling.
        then_regret: bool,
    },
    /// Up-front background subtraction, pre-tile around foreground regions,
    /// then continue with the regret policy (Figure 12).
    PretileForeground,
    /// Re-tile eagerly on queries for new object classes.
    IncrementalMore,
    /// The regret-based policy of §4.4.
    IncrementalRegret,
}

/// Per-query accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRecord {
    /// The query executed.
    pub label: String,
    /// Query window start frame.
    pub start_frame: u32,
    /// Wall-clock seconds spent looking up the index and decoding.
    pub decode_seconds: f64,
    /// Wall-clock seconds spent re-tiling after this query.
    pub retile_seconds: f64,
    /// Simulated seconds of lazy detection triggered by this query.
    pub detect_seconds: f64,
    /// Samples decoded by the query (cache reuse excluded).
    pub samples_decoded: u64,
    /// Tile chunks decoded by the query.
    pub tile_chunks: u64,
    /// Decoded-GOP cache hits during the query.
    pub cache_hits: u64,
    /// Samples served from the decoded-GOP cache instead of being decoded.
    pub samples_reused: u64,
}

impl QueryRecord {
    /// Samples the query *needed*, decoded or reused — the quantity the
    /// strategy comparisons of §5.3 reason about (a warm cache shifts work
    /// from `samples_decoded` to `samples_reused` without changing it).
    pub fn samples_touched(&self) -> u64 {
        self.samples_decoded + self.samples_reused
    }
}

/// Result of running a workload under one strategy.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Per-query records, in execution order.
    pub records: Vec<QueryRecord>,
    /// Simulated seconds of up-front detection (pre-tile strategies).
    pub initial_detect_seconds: f64,
    /// Wall-clock seconds of up-front tiling (pre-tile strategies).
    pub initial_tile_seconds: f64,
    /// Total number of SOT re-tile operations performed.
    pub retile_ops: u32,
    /// Total decoded-GOP cache hits across all queries.
    pub cache_hits: u64,
    /// Final on-disk size of the video.
    pub final_size_bytes: u64,
}

impl WorkloadReport {
    /// Total decode + retile seconds (the quantity plotted in Figure 11).
    pub fn decode_and_retile_seconds(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.decode_seconds + r.retile_seconds)
            .sum::<f64>()
            + self.initial_tile_seconds
    }

    /// Total including detection (the quantity plotted in Figure 12).
    pub fn total_with_detection_seconds(&self) -> f64 {
        self.decode_and_retile_seconds()
            + self.initial_detect_seconds
            + self.records.iter().map(|r| r.detect_seconds).sum::<f64>()
    }
}

/// Runs `queries` over `video` under `strategy`.
///
/// `truth` supplies ground-truth boxes to the (degrading) `detector`;
/// `pixels` is required only for [`Strategy::PretileForeground`].
#[allow(clippy::too_many_arguments)]
pub fn run_workload(
    tasm: &mut Tasm,
    video: &str,
    queries: &[RunQuery],
    strategy: Strategy,
    detector: &mut dyn Detector,
    truth: TruthFn<'_>,
    pixels: Option<&dyn FrameSource>,
) -> Result<WorkloadReport, TasmError> {
    let mut report = WorkloadReport::default();
    let frame_count = tasm.manifest(video)?.frame_count;

    // --- up-front phase ---
    match strategy {
        Strategy::PretileAllObjects { .. } => {
            report.initial_detect_seconds =
                detect_frames(tasm, video, 0..frame_count, detector, truth, pixels)?;
            let labels = all_labels(tasm, video)?;
            let t0 = std::time::Instant::now();
            let stats = tasm.kqko_retile_all(video, &labels)?;
            report.initial_tile_seconds = t0.elapsed().as_secs_f64();
            report.retile_ops += u32::from(stats.encode.bytes_produced > 0);
        }
        Strategy::PretileForeground => {
            let src =
                pixels.expect("PretileForeground requires the raw frame source for subtraction");
            let mut bg = tasm_detect::background::BackgroundSubtractor::new();
            for f in 0..frame_count {
                let frame = src.frame(f);
                for det in bg.detect(f, Some(&frame), &[]) {
                    tasm.add_metadata(video, &det.label, f, det.bbox)?;
                }
                report.initial_detect_seconds += bg.seconds_per_frame();
            }
            let t0 = std::time::Instant::now();
            let stats = tasm.kqko_retile_all(video, &["foreground".to_string()])?;
            report.initial_tile_seconds = t0.elapsed().as_secs_f64();
            report.retile_ops += u32::from(stats.encode.bytes_produced > 0);
        }
        _ => {}
    }

    // --- query phase ---
    for q in queries {
        // Lazy detection: analyze frames the index has not seen yet.
        let detect_seconds = detect_frames(tasm, video, q.frames.clone(), detector, truth, pixels)?;

        let result = tasm.scan(video, &LabelPredicate::label(&q.label), q.frames.clone())?;

        let t0 = std::time::Instant::now();
        let retile = match strategy {
            Strategy::NotTiled | Strategy::PretileAllObjects { then_regret: false } => None,
            Strategy::IncrementalMore => {
                Some(tasm.observe_more(video, &q.label, q.frames.clone())?)
            }
            Strategy::IncrementalRegret
            | Strategy::PretileAllObjects { then_regret: true }
            | Strategy::PretileForeground => {
                Some(tasm.observe_regret(video, &q.label, q.frames.clone())?)
            }
        };
        let retile_seconds = t0.elapsed().as_secs_f64();
        if let Some(r) = &retile {
            report.retile_ops += u32::from(r.encode.bytes_produced > 0);
        }

        report.cache_hits += result.cache.hits;
        report.records.push(QueryRecord {
            label: q.label.clone(),
            start_frame: q.frames.start,
            decode_seconds: result.seconds(),
            retile_seconds,
            detect_seconds,
            samples_decoded: result.stats.samples_decoded,
            tile_chunks: result.stats.tile_chunks_decoded,
            cache_hits: result.cache.hits,
            samples_reused: result.cache.samples_reused,
        });
    }

    report.final_size_bytes = tasm.video_size_bytes(video)?;
    Ok(report)
}

/// Runs the detector over the not-yet-processed frames of `frames`,
/// populating the index. Returns simulated detection seconds.
fn detect_frames(
    tasm: &mut Tasm,
    video: &str,
    frames: Range<u32>,
    detector: &mut dyn Detector,
    truth: TruthFn<'_>,
    pixels: Option<&dyn FrameSource>,
) -> Result<f64, TasmError> {
    // Fast path: everything already analyzed.
    let unprocessed = frames.len() as u32 - tasm.processed_count(video, frames.clone())?;
    if unprocessed == 0 {
        return Ok(0.0);
    }
    let mut seconds = 0.0;
    let id = tasm.video_id(video)?;
    for f in frames {
        if tasm
            .index_mut()
            .processed_count(id, f..f + 1)
            .map_err(TasmError::Index)?
            > 0
        {
            continue;
        }
        let t = truth(f);
        let frame_storage;
        let frame_ref = if detector.needs_pixels() {
            let src = pixels.expect("detector needs pixels but no source provided");
            frame_storage = src.frame(f);
            Some(&frame_storage)
        } else {
            None
        };
        for det in detector.detect(f, frame_ref, &t) {
            tasm.add_metadata(video, &det.label, f, det.bbox)?;
        }
        tasm.mark_processed(video, f)?;
        seconds += detector.seconds_per_frame();
    }
    Ok(seconds)
}

/// Labels with any detection for this video.
fn all_labels(tasm: &mut Tasm, video: &str) -> Result<Vec<String>, TasmError> {
    let id = tasm.video_id(video)?;
    tasm.index_mut().labels(id).map_err(TasmError::Index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionConfig;
    use crate::storage::StorageConfig;
    use crate::tasm::TasmConfig;
    use tasm_detect::yolo::SimulatedYolo;
    use tasm_index::MemoryIndex;
    use tasm_video::{Frame, Plane, VecFrameSource};

    fn source(frames: u32) -> VecFrameSource {
        VecFrameSource::new(
            (0..frames)
                .map(|i| {
                    let mut f = Frame::filled(128, 96, 90, 128, 128);
                    for y in 0..96 {
                        for x in 0..128 {
                            f.set_sample(Plane::Y, x, y, ((x * 5 + y * 3) % 170 + 40) as u8);
                        }
                    }
                    f.fill_rect(Rect::new((i * 2) % 96, 8, 24, 16), 220, 90, 170);
                    f
                })
                .collect(),
        )
    }

    fn truth_at(f: u32) -> Vec<(&'static str, Rect)> {
        vec![("car", Rect::new((f * 2) % 96, 8, 24, 16))]
    }

    fn tasm(tag: &str) -> Tasm {
        let dir = std::env::temp_dir().join(format!("tasm-runner-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = TasmConfig {
            storage: StorageConfig {
                gop_len: 5,
                sot_frames: 10,
                parallel_encode: false,
                ..Default::default()
            },
            partition: PartitionConfig {
                min_tile_width: 32,
                min_tile_height: 16,
                ..Default::default()
            },
            ..Default::default()
        };
        Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap()
    }

    fn queries(n: u32) -> Vec<RunQuery> {
        (0..n)
            .map(|i| RunQuery {
                label: "car".to_string(),
                frames: (i % 3) * 10..(i % 3) * 10 + 10,
            })
            .collect()
    }

    #[test]
    fn not_tiled_baseline_runs() {
        let mut t = tasm("base");
        let src = source(30);
        t.ingest("v", &src, 30).unwrap();
        let mut det = SimulatedYolo::full(1);
        let report = run_workload(
            &mut t,
            "v",
            &queries(5),
            Strategy::NotTiled,
            &mut det,
            &truth_at,
            None,
        )
        .unwrap();
        assert_eq!(report.records.len(), 5);
        assert_eq!(report.retile_ops, 0);
        assert!(report.decode_and_retile_seconds() > 0.0);
        // First query over each window pays detection; repeats do not.
        assert!(report.records[0].detect_seconds > 0.0);
        assert_eq!(report.records[3].detect_seconds, 0.0);
    }

    #[test]
    fn incremental_regret_eventually_beats_baseline_decode() {
        let mut base = tasm("cmp-base");
        let mut regret = tasm("cmp-regret");
        let src = source(30);
        base.ingest("v", &src, 30).unwrap();
        regret.ingest("v", &src, 30).unwrap();
        let qs = queries(20);

        let mut det1 = SimulatedYolo::full(1);
        let r_base = run_workload(
            &mut base,
            "v",
            &qs,
            Strategy::NotTiled,
            &mut det1,
            &truth_at,
            None,
        )
        .unwrap();
        let mut det2 = SimulatedYolo::full(1);
        let r_reg = run_workload(
            &mut regret,
            "v",
            &qs,
            Strategy::IncrementalRegret,
            &mut det2,
            &truth_at,
            None,
        )
        .unwrap();

        assert!(r_reg.retile_ops > 0, "regret should have re-tiled");
        // After re-tiling, late queries touch fewer samples than baseline.
        // `samples_touched` counts decoded + cache-reused work, so the
        // comparison is cache-warmth-independent.
        let late_base: u64 = r_base.records[15..]
            .iter()
            .map(|r| r.samples_touched())
            .sum();
        let late_reg: u64 = r_reg.records[15..]
            .iter()
            .map(|r| r.samples_touched())
            .sum();
        assert!(
            late_reg < late_base,
            "late regret decode {late_reg} should beat baseline {late_base}"
        );
        assert!(
            r_base.cache_hits > 0,
            "repeated windows should hit the decoded-GOP cache"
        );
    }

    #[test]
    fn pretile_all_objects_pays_up_front() {
        let mut t = tasm("pretile");
        let src = source(30);
        t.ingest("v", &src, 30).unwrap();
        let mut det = SimulatedYolo::full(1);
        let report = run_workload(
            &mut t,
            "v",
            &queries(3),
            Strategy::PretileAllObjects { then_regret: false },
            &mut det,
            &truth_at,
            None,
        )
        .unwrap();
        assert!(report.initial_detect_seconds > 0.0);
        // 30 frames at full-YOLO server speed.
        let expected = 30.0 * SimulatedYolo::full(1).seconds_per_frame();
        assert!((report.initial_detect_seconds - expected).abs() < 1e-9);
        assert!(report.retile_ops > 0, "eager tiling should happen");
        // No lazy detection afterwards.
        assert!(report.records.iter().all(|r| r.detect_seconds == 0.0));
    }

    #[test]
    fn pretile_foreground_uses_background_subtraction() {
        let mut t = tasm("fg");
        let src = source(30);
        t.ingest("v", &src, 30).unwrap();
        let mut det = SimulatedYolo::full(1);
        let report = run_workload(
            &mut t,
            "v",
            &queries(3),
            Strategy::PretileForeground,
            &mut det,
            &truth_at,
            Some(&src),
        )
        .unwrap();
        assert!(report.initial_detect_seconds > 0.0);
        // Foreground label is in the index.
        let id = t.video_id("v").unwrap();
        let labels = t.index_mut().labels(id).unwrap();
        assert!(
            labels.iter().any(|l| l == "foreground"),
            "labels: {labels:?}"
        );
    }

    #[test]
    fn report_totals_are_consistent() {
        let mut t = tasm("totals");
        let src = source(20);
        t.ingest("v", &src, 30).unwrap();
        let mut det = SimulatedYolo::full(1);
        let report = run_workload(
            &mut t,
            "v",
            &queries(4),
            Strategy::IncrementalMore,
            &mut det,
            &truth_at,
            None,
        )
        .unwrap();
        let manual: f64 = report
            .records
            .iter()
            .map(|r| r.decode_seconds + r.retile_seconds)
            .sum();
        assert!((report.decode_and_retile_seconds() - manual).abs() < 1e-12);
        assert!(report.total_with_detection_seconds() >= report.decode_and_retile_seconds());
        assert!(report.final_size_bytes > 0);
    }
}
