//! The TASM storage manager facade.
//!
//! [`Tasm`] ties the pieces together: the on-disk tile store, the semantic
//! index, the cost model, and the per-video policy state used by the
//! incremental tiling strategies. It exposes the paper's API surface —
//! `AddMetadata` (§3.1), `Scan` (§3.1) — plus the layout optimization entry
//! points of §4 (KQKO, incremental-more, regret-based).
//!
//! ## Concurrency model: MVCC layout epochs
//!
//! `Tasm` is `Sync`: every operation, including [`Tasm::scan`], takes
//! `&self`, so one instance (behind an `Arc`) serves many threads at once —
//! the shape `tasm-service` builds its worker pool on. Internally the
//! per-video state is sharded so queries on different videos never contend
//! on it, and no lock is ever held across decode:
//!
//! * the **semantic index** sits behind one `RwLock` (exclusive for every
//!   index operation, since the trait's methods take `&mut self`) and is
//!   only held for the duration of a lookup or insert — never across
//!   decode work, so index contention is bounded by the cheap lookup
//!   phase;
//! * each registered video has a per-video shard holding its **epoch
//!   table** (immutable manifest snapshots, reference-counted per layout
//!   epoch), a **commit mutex** serializing writers, and its **policy
//!   state** (query history, regret counters, seen-object sets) behind a
//!   `Mutex`.
//!
//! Layout epochs are first-class MVCC versions. A scan *pins* its epoch at
//! plan time — an [`EpochPin`] holding an `Arc` of that epoch's manifest
//! snapshot and a reference count in the table — and reads it to
//! completion; the epoch-stamped SOT directories on disk and the layout
//! epoch in decoded-GOP cache keys guarantee the pinned snapshot resolves
//! only its own epoch's bytes. A re-tile commits the *next* epoch (fresh
//! directories, then the manifest) and publishes it to the table
//! immediately — it synchronizes with other writers on the commit mutex
//! but **never waits on readers**. A superseded epoch is garbage-collected
//! (tile directories and decoded-GOP cache entries) only when its last
//! pin drops; [`Query::as_of`] can name any still-live epoch. Every reader
//! therefore observes exactly one layout epoch — never a torn mix of tile
//! files — and retile-commit latency is independent of in-flight scan
//! duration.
//!
//! **Lock order** (outer to inner): videos map → per-video policy →
//! per-video commit mutex → per-video epoch table → semantic index. The
//! index lock is terminal: no code path acquires any other lock while
//! holding it. Readers touch only the epoch table (briefly, to pin) and
//! the index (briefly, to look up) — neither is held across decode.

use crate::cost::{estimate_work, pixel_ratio, CostModel, EncodeModel};
use crate::partition::{partition, PartitionConfig};
use crate::query::{query_prepared, Query};
use crate::scan::{scan_prepared, LabelPredicate, ScanError, ScanResult};
use crate::storage::{
    RetileStats, RetiredEpoch, StorageConfig, StoreError, VideoManifest, VideoStore,
};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Instant;
use tasm_codec::TileLayout;
use tasm_index::{Detection, SemanticIndex, TreeError};
use tasm_video::{FrameSource, Rect};

/// Configuration of the storage manager's policies.
#[derive(Debug, Clone)]
pub struct TasmConfig {
    /// Not-tiling threshold α (§3.4.4): a layout must decode fewer than
    /// `α · P(ω)` pixels to be considered useful. Paper value: 0.8.
    pub alpha: f64,
    /// Regret threshold η (§4.4): re-tile once accumulated regret exceeds
    /// `η · R(s, L)`. Paper value: 1.0.
    pub eta: f64,
    /// Layout generation parameters (granularity, minimum tile dims).
    pub partition: PartitionConfig,
    /// Encoding parameters for stored videos.
    pub storage: StorageConfig,
    /// The fitted query cost model.
    pub cost: CostModel,
    /// The fitted re-encode cost model.
    pub encode: EncodeModel,
    /// Largest seen-object set for which every subset is considered as an
    /// alternative layout; beyond this only singletons and the full set are
    /// tracked (the paper enumerates subsets; this caps the blow-up).
    pub max_subset_objects: usize,
    /// Worker threads for the parallel tile-decode pipeline. `0` = one per
    /// available core. `1` reproduces the old strictly serial execution
    /// (bit-identical results either way).
    pub workers: usize,
    /// Byte budget of the decoded-GOP cache shared by every scan through
    /// this instance. `0` disables caching; repeated queries over the same
    /// GOPs then re-decode from disk.
    pub cache_bytes: u64,
    /// Memtable entry limit of the tiered semantic index opened by
    /// [`Tasm::open_tiered`] — `None` keeps the tier's default. Small
    /// values force frequent run flushes and compactions (tests, smoke
    /// jobs); ignored for indexes supplied directly to [`Tasm::open`].
    pub index_memtable_limit: Option<usize>,
}

impl Default for TasmConfig {
    fn default() -> Self {
        TasmConfig {
            alpha: 0.8,
            eta: 1.0,
            partition: PartitionConfig::default(),
            storage: StorageConfig::default(),
            cost: CostModel::default(),
            encode: EncodeModel::default(),
            max_subset_objects: 4,
            workers: 0,
            cache_bytes: 256 << 20,
            index_memtable_limit: None,
        }
    }
}

/// Errors from the facade.
#[derive(Debug)]
pub enum TasmError {
    /// Storage layer failure.
    Store(StoreError),
    /// Semantic index failure.
    Index(TreeError),
    /// Scan failure.
    Scan(ScanError),
    /// Unknown video name.
    UnknownVideo(String),
    /// An `AS OF` query (or explicit pin) named a layout epoch that is
    /// neither the video's current epoch nor a retired epoch still held
    /// live by a pinned reader.
    EpochNotLive {
        /// The video queried.
        video: String,
        /// The epoch the query asked for.
        requested: u64,
        /// The video's current layout epoch.
        current: u64,
    },
    /// Two distinct video names hash to the same 32-bit id. Registering the
    /// second would silently alias its detections with the first in the
    /// shared semantic index, so the registration is refused instead.
    VideoIdCollision {
        /// The already-registered name owning the id.
        existing: String,
        /// The name whose registration was refused.
        rejected: String,
    },
}

impl std::fmt::Display for TasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TasmError::Store(e) => write!(f, "{e}"),
            TasmError::Index(e) => write!(f, "{e}"),
            TasmError::Scan(e) => write!(f, "{e}"),
            TasmError::UnknownVideo(name) => write!(f, "unknown video '{name}'"),
            TasmError::EpochNotLive {
                video,
                requested,
                current,
            } => write!(
                f,
                "epoch {requested} of video '{video}' is not live \
                 (current epoch is {current})"
            ),
            TasmError::VideoIdCollision { existing, rejected } => write!(
                f,
                "video id collision: '{rejected}' hashes to the same id as \
                 registered video '{existing}'; rename one of them"
            ),
        }
    }
}

impl std::error::Error for TasmError {}

impl From<StoreError> for TasmError {
    fn from(e: StoreError) -> Self {
        TasmError::Store(e)
    }
}

impl From<TreeError> for TasmError {
    fn from(e: TreeError) -> Self {
        TasmError::Index(e)
    }
}

impl From<ScanError> for TasmError {
    fn from(e: ScanError) -> Self {
        TasmError::Scan(e)
    }
}

/// Per-SOT incremental-policy state.
#[derive(Debug, Default, Clone)]
struct SotPolicy {
    /// Queries that touched this SOT: (label, frame window ∩ SOT).
    history: Vec<(String, Range<u32>)>,
    /// Accumulated regret per alternative layout, keyed by the sorted
    /// object subset the layout is designed around.
    regret: BTreeMap<Vec<String>, f64>,
    /// Labels queried against this SOT (incremental-more state).
    queried: BTreeSet<String>,
}

/// Mutable per-video policy state (regret counters, query history,
/// seen-object sets). Sharded per video behind a `Mutex` so the incremental
/// policies of two different videos never contend.
#[derive(Debug, Default)]
struct PolicyState {
    /// Objects seen in queries so far (the paper's `O_Q'`).
    seen_objects: BTreeSet<String>,
    sots: Vec<SotPolicy>,
}

impl PolicyState {
    fn new(n_sots: usize) -> Self {
        PolicyState {
            seen_objects: BTreeSet::new(),
            sots: vec![SotPolicy::default(); n_sots],
        }
    }
}

/// One live layout epoch of a video: an immutable manifest snapshot plus
/// the number of readers currently pinned to it.
struct EpochEntry {
    manifest: Arc<VideoManifest>,
    readers: u64,
}

/// The MVCC version table of one video: every layout epoch still readable
/// — the current epoch plus any retired epoch a reader has pinned — and
/// the set of on-disk SOT directories not yet garbage-collected.
struct EpochTable {
    /// The epoch new pins default to ([`VideoManifest::epoch`] of the
    /// latest committed manifest).
    current: u64,
    /// Live epochs by number. The current epoch is always present; retired
    /// epochs stay exactly until their reader count drains to zero.
    live: BTreeMap<u64, EpochEntry>,
    /// Every `(start, end, retile_count)` SOT directory on disk that this
    /// table owes a GC decision for. A directory leaves the set (and is
    /// reclaimed) once no live epoch's manifest references it.
    tracked: BTreeSet<(u32, u32, u32)>,
}

/// The SOT directories a manifest snapshot resolves reads through.
fn manifest_dirs(m: &VideoManifest) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
    m.sots.iter().map(|s| (s.start, s.end, s.retile_count))
}

impl EpochTable {
    fn new(manifest: Arc<VideoManifest>) -> Self {
        let current = manifest.epoch();
        let tracked = manifest_dirs(&manifest).collect();
        let mut live = BTreeMap::new();
        live.insert(
            current,
            EpochEntry {
                manifest,
                readers: 0,
            },
        );
        EpochTable {
            current,
            live,
            tracked,
        }
    }

    fn current_manifest(&self) -> Arc<VideoManifest> {
        self.live[&self.current].manifest.clone()
    }

    fn total_readers(&self) -> u64 {
        self.live.values().map(|e| e.readers).sum()
    }

    /// Drops retired epochs with no readers from the live set and returns
    /// the tracked directories no remaining live epoch references — the GC
    /// work list. The current epoch never retires here, so a re-ingest
    /// under the same name can never have its fresh directories reclaimed
    /// by a stale pin's drop.
    fn sweep(&mut self) -> Vec<RetiredEpoch> {
        let current = self.current;
        self.live
            .retain(|&epoch, entry| epoch == current || entry.readers > 0);
        let referenced: BTreeSet<(u32, u32, u32)> = self
            .live
            .values()
            .flat_map(|e| manifest_dirs(&e.manifest))
            .collect();
        let dead: Vec<(u32, u32, u32)> = self.tracked.difference(&referenced).copied().collect();
        for d in &dead {
            self.tracked.remove(d);
        }
        dead.into_iter()
            .map(|(sot_start, sot_end, retile_count)| RetiredEpoch {
                sot_start,
                sot_end,
                retile_count,
            })
            .collect()
    }

    /// Installs a freshly committed manifest as the current epoch and
    /// sweeps. The superseded epoch stays live while pinned; otherwise its
    /// now-unreferenced directories come back as the GC work list.
    fn publish(&mut self, manifest: Arc<VideoManifest>) -> Vec<RetiredEpoch> {
        let epoch = manifest.epoch();
        self.tracked.extend(manifest_dirs(&manifest));
        self.current = epoch;
        self.live
            .entry(epoch)
            .and_modify(|e| e.manifest = manifest.clone())
            .or_insert(EpochEntry {
                manifest,
                readers: 0,
            });
        self.sweep()
    }
}

/// Per-video registration: the shard queries on this video synchronize on.
struct VideoShard {
    id: u32,
    /// The video's MVCC epoch table. Held only for pin/unpin/publish
    /// bookkeeping — never across decode or tile I/O.
    epochs: Mutex<EpochTable>,
    /// Signalled whenever a pin drops; [`Tasm::remove_video`] and
    /// [`Tasm::apply_replicated_video`] wait here until every reader of
    /// every epoch has drained (total refcount zero) before destroying
    /// epochs in place.
    drained: Condvar,
    /// Serializes writers (re-tile and replicated-SOT commits) against
    /// each other. Readers never touch it — a commit's latency is bounded
    /// by its own I/O, not by in-flight scans.
    commit: Mutex<()>,
    policy: Mutex<PolicyState>,
}

impl VideoShard {
    /// The current epoch's manifest snapshot (cheap: one lock, one `Arc`
    /// clone).
    fn current_manifest(&self) -> Arc<VideoManifest> {
        self.epochs
            .lock()
            .expect("epoch table lock")
            .current_manifest()
    }
}

/// A pinned layout epoch: holds one reference count on the epoch in its
/// video's table, keeping the epoch's manifest snapshot, tile directories,
/// and decoded-GOP cache entries alive until dropped. Obtained from
/// [`Tasm::pin_epoch`] (queries pin internally). Dropping the pin releases
/// the count; if it was the epoch's last reader and the epoch is no longer
/// current, the epoch's now-unreferenced tile directories are
/// garbage-collected on the spot.
pub struct EpochPin {
    shard: Arc<VideoShard>,
    store: Arc<VideoStore>,
    epoch: u64,
    manifest: Arc<VideoManifest>,
}

impl EpochPin {
    /// The pinned layout epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned epoch's manifest snapshot.
    pub fn manifest(&self) -> &VideoManifest {
        &self.manifest
    }
}

/// The live-reader gauge, incremented by every epoch pin and decremented
/// on its drop.
fn epoch_pins_gauge() -> std::sync::Arc<tasm_obs::Gauge> {
    tasm_obs::gauge(
        "tasm_epoch_pins_live",
        "Layout-epoch pins currently held by in-flight scans and explicit pin_epoch callers.",
    )
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        epoch_pins_gauge().dec();
        let gc = {
            let mut table = self.shard.epochs.lock().expect("epoch table lock");
            if let Some(entry) = table.live.get_mut(&self.epoch) {
                entry.readers -= 1;
            }
            let gc = table.sweep();
            // Wake drain waiters (remove/replace) on every release; they
            // re-check the total count themselves.
            self.shard.drained.notify_all();
            gc
        };
        // GC outside the table lock, best-effort: `gc_epoch` is idempotent
        // and startup recovery reaps any directory a failed GC leaves.
        for old in gc {
            let _ = self.store.gc_epoch(&self.manifest.name, old);
        }
    }
}

/// Raw tile-file bytes for one video, as shipped by replication:
/// `bytes[sot][tile]` is the verbatim contents of that tile file.
pub type SotTileBytes = Vec<Vec<Vec<u8>>>;

/// The storage manager.
pub struct Tasm {
    /// Shared with every [`EpochPin`], whose drop may run epoch GC.
    store: Arc<VideoStore>,
    index: RwLock<Box<dyn SemanticIndex + Send + Sync>>,
    cfg: TasmConfig,
    videos: RwLock<BTreeMap<String, Arc<VideoShard>>>,
}

/// Stable video id: FNV-1a of the name. Ids must survive process restarts
/// because the persistent semantic index keys detections by id. Collisions
/// between registered names are detected at `ingest`/`attach` and refused
/// ([`TasmError::VideoIdCollision`]).
pub(crate) fn video_id_for(name: &str) -> u32 {
    name.bytes().fold(0x811c9dc5u32, |acc, b| {
        (acc ^ b as u32).wrapping_mul(0x01000193)
    })
}

impl Tasm {
    /// Opens a storage manager rooted at `root` with the given index.
    ///
    /// Startup recovery runs before this returns: interrupted re-tiles are
    /// rolled forward or back and half-ingested videos removed, so every
    /// video observable through this instance is wholly in one layout
    /// epoch. [`Tasm::recovery_report`] lists what was repaired.
    pub fn open(
        root: impl Into<PathBuf>,
        index: Box<dyn SemanticIndex + Send + Sync>,
        cfg: TasmConfig,
    ) -> Result<Self, TasmError> {
        Self::open_with_io(root, index, cfg, Arc::new(crate::durable::RealIo))
    }

    /// [`Tasm::open`] with an explicit [`crate::durable::StorageIo`]
    /// implementation — the hook the crash-injection tests use to fail,
    /// tear, or halt storage at a chosen operation.
    pub fn open_with_io(
        root: impl Into<PathBuf>,
        index: Box<dyn SemanticIndex + Send + Sync>,
        cfg: TasmConfig,
        io: Arc<dyn crate::durable::StorageIo>,
    ) -> Result<Self, TasmError> {
        Ok(Tasm {
            store: Arc::new(VideoStore::open_with_io(
                root,
                cfg.workers,
                cfg.cache_bytes,
                io,
            )?),
            index: RwLock::new(index),
            cfg,
            videos: RwLock::new(BTreeMap::new()),
        })
    }

    /// Opens a storage manager whose semantic index is the disk-resident
    /// tiered index ([`tasm_index::TieredIndex`]) at `index_dir`, with both
    /// the store and the index writing through production I/O.
    pub fn open_tiered(
        root: impl Into<PathBuf>,
        index_dir: &Path,
        cfg: TasmConfig,
    ) -> Result<Self, TasmError> {
        Self::open_tiered_with_io(root, index_dir, cfg, Arc::new(crate::durable::RealIo))
    }

    /// [`Tasm::open_tiered`] with an explicit [`crate::durable::StorageIo`].
    /// The tiered index writes through the *same* shim as tile storage (via
    /// [`crate::durable::StorageTierIo`]), so one fault injector covers
    /// retile commits and index WAL/flush/compaction in a single sweep.
    pub fn open_tiered_with_io(
        root: impl Into<PathBuf>,
        index_dir: &Path,
        cfg: TasmConfig,
        io: Arc<dyn crate::durable::StorageIo>,
    ) -> Result<Self, TasmError> {
        let mut tier = tasm_index::TieredIndex::open_with_io(
            index_dir,
            Arc::new(crate::durable::StorageTierIo(io.clone())),
        )?;
        if let Some(limit) = cfg.index_memtable_limit {
            tier.set_memtable_limit(limit);
        }
        Self::open_with_io(root, Box::new(tier), cfg, io)
    }

    /// What startup recovery repaired when this instance opened its store.
    pub fn recovery_report(&self) -> &crate::durable::RecoveryReport {
        self.store.recovery_report()
    }

    /// Validates every stored video's manifest against its on-disk tile
    /// files and container headers (see [`VideoStore::fsck`]). Read-only.
    pub fn fsck(&self) -> Result<crate::durable::FsckReport, TasmError> {
        Ok(self.store.fsck()?)
    }

    /// The active configuration.
    pub fn config(&self) -> &TasmConfig {
        &self.cfg
    }

    /// Access to the underlying store (harness instrumentation).
    pub fn store(&self) -> &VideoStore {
        self.store.as_ref()
    }

    /// Exclusive access to the semantic index (harness instrumentation).
    pub fn index_mut(&mut self) -> &mut dyn SemanticIndex {
        self.index.get_mut().expect("index lock").as_mut()
    }

    /// Runs `f` with the semantic index locked. The index lock is terminal
    /// in the facade's lock order: `f` must not call back into `Tasm`.
    pub fn with_index<R>(&self, f: impl FnOnce(&mut dyn SemanticIndex) -> R) -> R {
        let mut guard = self.index.write().expect("index lock");
        f(guard.as_mut())
    }

    /// Ingests a video untiled (`ω` for every SOT) — the starting point of
    /// the lazy and incremental strategies.
    pub fn ingest(&self, name: &str, src: &dyn FrameSource, fps: u32) -> Result<u32, TasmError> {
        let (w, h) = (src.width(), src.height());
        self.ingest_with(name, src, fps, move |_, _| TileLayout::untiled(w, h))
    }

    /// Ingests a video with per-SOT initial layouts (eager and edge
    /// strategies supply object layouts here).
    ///
    /// Re-ingesting a name replaces the stored video; doing so while scans
    /// on that name are in flight is not supported.
    pub fn ingest_with(
        &self,
        name: &str,
        src: &dyn FrameSource,
        fps: u32,
        layout_for: impl FnMut(usize, Range<u32>) -> TileLayout,
    ) -> Result<u32, TasmError> {
        let id = video_id_for(name);
        // Check before paying for the encode; re-checked under the write
        // lock at registration.
        self.check_id_collision(name, id)?;
        let (manifest, _) = self
            .store
            .ingest(name, src, fps, self.cfg.storage, layout_for)?;
        self.register(name, id, manifest)
    }

    /// Attaches a video already present in the store (e.g. after a process
    /// restart): loads its manifest from disk without re-encoding anything.
    /// Tile layouts, the semantic index, and on-disk files are all reused;
    /// only in-memory policy state (regret, query history) starts fresh.
    ///
    /// Startup recovery already ran when this instance opened the store,
    /// so the manifest loaded here reflects a single consistent layout
    /// epoch even if the previous process died mid-re-tile
    /// ([`Tasm::recovery_report`] says which way interrupted re-tiles were
    /// resolved).
    pub fn attach(&self, name: &str) -> Result<u32, TasmError> {
        let id = video_id_for(name);
        self.check_id_collision(name, id)?;
        let manifest = self.store.load_manifest(name)?;
        self.register(name, id, manifest)
    }

    /// Refuses registration when `name`'s FNV-1a id aliases a different
    /// registered video: the shared semantic index keys detections by id,
    /// so a collision would silently merge two videos' metadata.
    fn check_id_collision(&self, name: &str, id: u32) -> Result<(), TasmError> {
        let videos = self.videos.read().expect("videos lock");
        if let Some((existing, _)) = videos
            .iter()
            .find(|(n, s)| s.id == id && n.as_str() != name)
        {
            return Err(TasmError::VideoIdCollision {
                existing: existing.clone(),
                rejected: name.to_string(),
            });
        }
        Ok(())
    }

    fn register(&self, name: &str, id: u32, manifest: VideoManifest) -> Result<u32, TasmError> {
        let n_sots = manifest.sots.len();
        let mut videos = self.videos.write().expect("videos lock");
        if let Some((existing, _)) = videos
            .iter()
            .find(|(n, s)| s.id == id && n.as_str() != name)
        {
            return Err(TasmError::VideoIdCollision {
                existing: existing.clone(),
                rejected: name.to_string(),
            });
        }
        videos.insert(
            name.to_string(),
            Arc::new(VideoShard {
                id,
                epochs: Mutex::new(EpochTable::new(Arc::new(manifest))),
                drained: Condvar::new(),
                commit: Mutex::new(()),
                policy: Mutex::new(PolicyState::new(n_sots)),
            }),
        );
        Ok(id)
    }

    /// True if the store already holds a video named `name`.
    pub fn has_stored_video(&self, name: &str) -> bool {
        self.store.load_manifest(name).is_ok()
    }

    /// The numeric id assigned to a video at ingest.
    pub fn video_id(&self, name: &str) -> Result<u32, TasmError> {
        Ok(self.shard(name)?.id)
    }

    /// A point-in-time snapshot of a video's manifest (the current epoch's).
    pub fn manifest(&self, name: &str) -> Result<VideoManifest, TasmError> {
        Ok((*self.shard(name)?.current_manifest()).clone())
    }

    /// The video's current layout epoch ([`VideoManifest::epoch`]) — what a
    /// new query pins, and the watermark replication ships.
    pub fn current_epoch(&self, name: &str) -> Result<u64, TasmError> {
        Ok(self
            .shard(name)?
            .epochs
            .lock()
            .expect("epoch table lock")
            .current)
    }

    /// Every layout epoch of the video that is still live — the current
    /// epoch plus any retired epoch held by a pinned reader, ascending.
    /// A live epoch is exactly one [`Query::as_of`] can name.
    pub fn live_epochs(&self, name: &str) -> Result<Vec<u64>, TasmError> {
        Ok(self
            .shard(name)?
            .epochs
            .lock()
            .expect("epoch table lock")
            .live
            .keys()
            .copied()
            .collect())
    }

    /// Total on-disk size of a video's tiles (current epoch).
    pub fn video_size_bytes(&self, name: &str) -> Result<u64, TasmError> {
        let manifest = self.shard(name)?.current_manifest();
        Ok(self.store.video_size_bytes(&manifest)?)
    }

    /// Names of every registered video.
    pub fn video_names(&self) -> Vec<String> {
        self.videos
            .read()
            .expect("videos lock")
            .keys()
            .cloned()
            .collect()
    }

    /// A single-epoch replication snapshot of one video: its manifest plus
    /// the raw bytes of every tile file (outer index = SOT index), read
    /// under one epoch pin so a concurrent re-tile cannot tear the
    /// snapshot across layout epochs — and no longer has to wait for the
    /// snapshot either. The epoch watermark ships unchanged as the
    /// manifest's [`VideoManifest::epoch`].
    pub fn replication_snapshot(
        &self,
        name: &str,
    ) -> Result<(VideoManifest, SotTileBytes), TasmError> {
        let shard = self.shard(name)?;
        let pin = self.pin_shard(name, &shard, None)?;
        let manifest = pin.manifest();
        let mut sots = Vec::with_capacity(manifest.sots.len());
        for (i, sot) in manifest.sots.iter().enumerate() {
            let mut tiles = Vec::with_capacity(sot.layout.tile_count() as usize);
            for t in 0..sot.layout.tile_count() {
                tiles.push(self.store.tile_file_bytes(manifest, i, t)?);
            }
            sots.push(tiles);
        }
        Ok((manifest.clone(), sots))
    }

    /// Installs a replicated video wholesale (a backup receiving a full
    /// sync, or a rebalance copy landing on its target). Registers the
    /// video if new; otherwise this is the one writer that cannot preserve
    /// old epochs — the directory is rewritten in place — so it drains by
    /// refcount: it waits until every pinned reader of every epoch drops,
    /// then installs and resets the epoch table.
    pub fn apply_replicated_video(
        &self,
        manifest: VideoManifest,
        sots: &[Vec<Vec<u8>>],
    ) -> Result<u32, TasmError> {
        let name = manifest.name.clone();
        let id = video_id_for(&name);
        self.check_id_collision(&name, id)?;
        let existing = self.videos.read().expect("videos lock").get(&name).cloned();
        match existing {
            Some(shard) => {
                // Policy before commit before epochs, per the facade's lock
                // order. The policy state described the old layout — reset.
                let mut policy = shard.policy.lock().expect("policy lock");
                let _commit = shard.commit.lock().expect("commit lock");
                let mut table = shard.epochs.lock().expect("epoch table lock");
                while table.total_readers() > 0 {
                    table = shard.drained.wait(table).expect("epoch table lock");
                }
                self.store.install_video(&manifest, sots)?;
                *policy = PolicyState::new(manifest.sots.len());
                *table = EpochTable::new(Arc::new(manifest));
                Ok(shard.id)
            }
            None => {
                self.store.install_video(&manifest, sots)?;
                self.register(&name, id, manifest)
            }
        }
    }

    /// Applies one replicated SOT commit. `manifest` is the primary's
    /// post-commit manifest; `sot_idx` names the SOT that re-tiled and
    /// `tiles` its raw tile-file bytes. Idempotent: a record the backup
    /// already holds — its layout epoch (`retile_count`) for that SOT is
    /// at least the record's — is skipped. Returns whether it applied.
    pub fn apply_replicated_sot(
        &self,
        manifest: VideoManifest,
        sot_idx: usize,
        tiles: &[Vec<u8>],
    ) -> Result<bool, TasmError> {
        let name = manifest.name.clone();
        let shard = self.shard(&name)?;
        let new_epoch = manifest
            .sots
            .get(sot_idx)
            .ok_or_else(|| TasmError::Store(StoreError::NotFound(format!("SOT {sot_idx}"))))?
            .retile_count;
        // Writers serialize on the commit mutex; readers pinned to older
        // epochs are unaffected — the install lands in a fresh
        // epoch-stamped directory and the old epoch is GC'd when its last
        // pin drops.
        let _commit = shard.commit.lock().expect("commit lock");
        {
            let table = shard.epochs.lock().expect("epoch table lock");
            let cur = table.current_manifest();
            if cur
                .sots
                .get(sot_idx)
                .is_some_and(|c| c.retile_count >= new_epoch)
            {
                return Ok(false);
            }
        }
        let _retired = self.store.install_sot_deferred(&manifest, sot_idx, tiles)?;
        let gc = {
            let mut table = shard.epochs.lock().expect("epoch table lock");
            table.publish(Arc::new(manifest))
        };
        for old in gc {
            // Best-effort: idempotent, and recovery reaps leftovers.
            let _ = self.store.gc_epoch(&name, old);
        }
        Ok(true)
    }

    /// Removes a video (the rebalance GC step): unregisters it, then
    /// drains by refcount — waits until the last pinned reader of any
    /// epoch drops (no new pins can start: the shard is unregistered) —
    /// and deletes its files, retired epoch directories included.
    pub fn remove_video(&self, name: &str) -> Result<(), TasmError> {
        let shard = self.videos.write().expect("videos lock").remove(name);
        let Some(shard) = shard else {
            return Err(TasmError::Store(StoreError::NotFound(format!(
                "video '{name}'"
            ))));
        };
        let mut table = shard.epochs.lock().expect("epoch table lock");
        while table.total_readers() > 0 {
            table = shard.drained.wait(table).expect("epoch table lock");
        }
        drop(table);
        self.store.remove_video(name)?;
        Ok(())
    }

    /// `AddMetadata(video, frame, label, bbox)` (§3.1): records a detection
    /// produced during query processing or ingest.
    pub fn add_metadata(
        &self,
        name: &str,
        label: &str,
        frame: u32,
        bbox: Rect,
    ) -> Result<(), TasmError> {
        let id = self.video_id(name)?;
        self.with_index(|ix| ix.add_metadata(id, label, frame, bbox))?;
        Ok(())
    }

    /// Marks a frame as processed by a detector (lazy strategies need to
    /// distinguish "no objects" from "not analyzed", §4.3).
    pub fn mark_processed(&self, name: &str, frame: u32) -> Result<(), TasmError> {
        let id = self.video_id(name)?;
        self.with_index(|ix| ix.mark_processed(id, frame))?;
        Ok(())
    }

    /// Number of frames in `frames` already processed by a detector.
    pub fn processed_count(&self, name: &str, frames: Range<u32>) -> Result<u32, TasmError> {
        let id = self.video_id(name)?;
        Ok(self.with_index(|ix| ix.processed_count(id, frames))?)
    }

    /// `Scan(video, L, T)` (§3.1): retrieves the pixels satisfying the
    /// predicate, decoding only the necessary tiles.
    ///
    /// Takes `&self`: any number of scans (on any videos) may run
    /// concurrently through one instance. The scan pins the video's
    /// current layout epoch at plan time and reads that immutable snapshot
    /// to completion — concurrent re-tiles commit new epochs freely
    /// without waiting for it, and every scan observes exactly one layout
    /// epoch ([`ScanResult::epoch`] says which).
    pub fn scan(
        &self,
        name: &str,
        predicate: &LabelPredicate,
        frames: Range<u32>,
    ) -> Result<ScanResult, TasmError> {
        let shard = self.shard(name)?;
        let pin = self.pin_shard(name, &shard, None)?;
        let manifest = pin.manifest();
        let frames = frames.start..frames.end.min(manifest.frame_count);
        let t0 = Instant::now();
        let regions = self
            .with_index(|ix| predicate.target_regions(ix, shard.id, frames.clone()))
            .map_err(|e| TasmError::Scan(ScanError::Index(e)))?;
        let lookup_time = t0.elapsed();
        Ok(scan_prepared(
            &self.store,
            manifest,
            regions,
            frames,
            lookup_time,
        )?)
    }

    /// Executes a spatiotemporal [`Query`]: a label predicate optionally
    /// narrowed by a region of interest, a sampling stride, a
    /// first-k-matching-frames limit, and an aggregate mode (see
    /// [`crate::query`] for planner semantics).
    ///
    /// The planner prunes the decode plan against the semantic index before
    /// any byte is read — tiles whose boxes miss the ROI, GOPs outside the
    /// stride, and GOPs past a satisfied limit are never decoded
    /// ([`ScanResult::plan`] reports what was cut) — while the returned
    /// regions stay bit-identical to running the unpruned [`Tasm::scan`]
    /// and filtering its output post-hoc.
    ///
    /// Concurrency mirrors [`Tasm::scan`]: the query pins a layout epoch
    /// at plan time — the current one, or the epoch named by
    /// [`Query::as_of`] if it is still live — and reads that snapshot to
    /// completion, so every query observes exactly one layout epoch even
    /// while re-tiles commit concurrently.
    ///
    /// ```no_run
    /// # use tasm_core::{LabelPredicate, Query, QueryMode, Tasm, TasmConfig};
    /// # use tasm_index::MemoryIndex;
    /// # use tasm_video::Rect;
    /// # let tasm = Tasm::open("/tmp/t", Box::new(MemoryIndex::in_memory()),
    /// #                       TasmConfig::default()).unwrap();
    /// // Cars entering the left half of the frame, every 5th frame.
    /// let q = Query::new(LabelPredicate::label("car"))
    ///     .frames(0..300)
    ///     .roi(Rect::new(0, 0, 320, 352))
    ///     .stride(5);
    /// let result = tasm.query("traffic", &q).unwrap();
    /// println!("{} regions, {} tiles pruned", result.matched, result.plan.tiles_pruned);
    ///
    /// // Is there any person in the window at all? Decodes nothing.
    /// let exists = tasm
    ///     .query("traffic", &Query::new(LabelPredicate::label("person"))
    ///         .frames(0..300)
    ///         .mode(QueryMode::Exists))
    ///     .unwrap();
    /// assert_eq!(exists.stats.samples_decoded, 0);
    /// ```
    pub fn query(&self, name: &str, query: &Query) -> Result<ScanResult, TasmError> {
        self.query_inner(name, query, None)
    }

    /// [`Tasm::query`] with RAII phase spans: the planning section (shard
    /// lookup, epoch pin, semantic-index scan) runs under a `plan` span and
    /// the decode fan-out under a `decode` span, both accumulating into
    /// `spans` — the per-query trace the service folds into the
    /// [`QueryTrace`](tasm_obs::QueryTrace) returned to remote clients.
    pub fn query_traced(
        &self,
        name: &str,
        query: &Query,
        spans: &Arc<tasm_obs::TraceSpans>,
    ) -> Result<ScanResult, TasmError> {
        self.query_inner(name, query, Some(spans))
    }

    fn query_inner(
        &self,
        name: &str,
        query: &Query,
        spans: Option<&Arc<tasm_obs::TraceSpans>>,
    ) -> Result<ScanResult, TasmError> {
        let plan_span = spans.map(|s| s.span(tasm_obs::Phase::Plan));
        let shard = self.shard(name)?;
        let pin = self.pin_shard(name, &shard, query.as_of_epoch())?;
        let manifest = pin.manifest();
        let window = query.frame_range();
        let frames = window.start..window.end.min(manifest.frame_count);
        let t0 = Instant::now();
        let regions = self
            .with_index(|ix| {
                query
                    .predicate()
                    .target_regions(ix, shard.id, frames.clone())
            })
            .map_err(|e| TasmError::Scan(ScanError::Index(e)))?;
        let lookup_time = t0.elapsed();
        drop(plan_span);
        let decode_span = spans.map(|s| s.span(tasm_obs::Phase::Decode));
        let result = query_prepared(&self.store, manifest, regions, query, frames, lookup_time)?;
        drop(decode_span);
        if tasm_obs::enabled() {
            tasm_obs::histogram(
                "tasm_query_plan_seconds",
                "Per-query semantic-index lookup time.",
            )
            .record(result.lookup_time);
            tasm_obs::histogram(
                "tasm_query_decode_seconds",
                "Per-query decode fan-out wall time.",
            )
            .record(result.exec_time);
        }
        Ok(result)
    }

    /// Pins a layout epoch of `name` explicitly: the current epoch
    /// (`epoch: None`) or a specific still-live one. While the returned
    /// [`EpochPin`] is alive, the epoch's manifest snapshot, tile
    /// directories, and cached GOPs stay readable — re-tiles keep
    /// committing newer epochs around it — and [`Query::as_of`] can name
    /// it. Pinning an epoch that is neither current nor already pinned
    /// fails with [`TasmError::EpochNotLive`]: retired epochs are
    /// reclaimed the moment their last reader drains, so there is nothing
    /// consistent left to read.
    pub fn pin_epoch(&self, name: &str, epoch: Option<u64>) -> Result<EpochPin, TasmError> {
        let shard = self.shard(name)?;
        self.pin_shard(name, &shard, epoch)
    }

    fn pin_shard(
        &self,
        name: &str,
        shard: &Arc<VideoShard>,
        epoch: Option<u64>,
    ) -> Result<EpochPin, TasmError> {
        let mut table = shard.epochs.lock().expect("epoch table lock");
        let target = epoch.unwrap_or(table.current);
        let current = table.current;
        let Some(entry) = table.live.get_mut(&target) else {
            return Err(TasmError::EpochNotLive {
                video: name.to_string(),
                requested: target,
                current,
            });
        };
        entry.readers += 1;
        epoch_pins_gauge().inc();
        Ok(EpochPin {
            shard: shard.clone(),
            store: self.store.clone(),
            epoch: target,
            manifest: entry.manifest.clone(),
        })
    }

    // ------------------------------------------------------------------
    // §4.2 — known queries, known objects (KQKO)
    // ------------------------------------------------------------------

    /// Computes the KQKO layout for one SOT around `objects`: a fine-grained
    /// non-uniform layout around their boxes, or `None` when the not-tiling
    /// rule (α) says tiling would not help.
    pub fn kqko_layout(
        &self,
        name: &str,
        sot_idx: usize,
        objects: &[String],
    ) -> Result<Option<TileLayout>, TasmError> {
        let shard = self.shard(name)?;
        self.kqko_layout_shard(&shard, sot_idx, objects)
    }

    fn kqko_layout_shard(
        &self,
        shard: &VideoShard,
        sot_idx: usize,
        objects: &[String],
    ) -> Result<Option<TileLayout>, TasmError> {
        let (w, h, sot, gop) = {
            let m = shard.current_manifest();
            (m.width, m.height, m.sots[sot_idx].clone(), m.config.gop_len)
        };
        let dets = self.detections_for(shard.id, objects, sot.frames())?;
        if dets.is_empty() {
            return Ok(None);
        }
        let boxes: Vec<Rect> = dets.iter().map(|d| d.bbox).collect();
        let layout = partition(w, h, &boxes, &self.cfg.partition);
        if layout.is_untiled() {
            return Ok(None);
        }
        // Not-tiling rule over the whole-SOT query for these objects.
        let ratio = pixel_ratio(&layout, &dets, sot.frames(), sot.start, gop);
        if ratio > self.cfg.alpha {
            return Ok(None);
        }
        Ok(Some(layout))
    }

    /// Runs the KQKO optimization over every SOT (the "all objects"/eager
    /// strategy pre-tiles with `objects` = everything detected). Returns the
    /// accumulated transcode cost.
    pub fn kqko_retile_all(
        &self,
        name: &str,
        objects: &[String],
    ) -> Result<RetileStats, TasmError> {
        let shard = self.shard(name)?;
        let n_sots = shard.current_manifest().sots.len();
        let mut total = RetileStats::default();
        for sot_idx in 0..n_sots {
            if let Some(layout) = self.kqko_layout_shard(&shard, sot_idx, objects)? {
                let mut pol = shard.policy.lock().expect("policy lock");
                total = add_retile(total, self.retile_shard(&shard, &mut pol, sot_idx, layout)?);
            }
        }
        Ok(total)
    }

    /// Re-tiles one SOT, updating the manifest.
    pub fn retile(
        &self,
        name: &str,
        sot_idx: usize,
        layout: TileLayout,
    ) -> Result<RetileStats, TasmError> {
        let shard = self.shard(name)?;
        let mut pol = shard.policy.lock().expect("policy lock");
        self.retile_shard(&shard, &mut pol, sot_idx, layout)
    }

    /// The re-tile primitive: serializes on the shard's commit mutex —
    /// never on readers — commits the new layout epoch through the
    /// deferred store protocol, publishes it to the epoch table, reclaims
    /// whatever epochs drained, then resets the SOT's regret relative to
    /// its new layout. In-flight scans keep reading their pinned epochs;
    /// commit latency is bounded by the transcode itself.
    fn retile_shard(
        &self,
        shard: &VideoShard,
        pol: &mut PolicyState,
        sot_idx: usize,
        layout: TileLayout,
    ) -> Result<RetileStats, TasmError> {
        let requested = layout.clone();
        let _commit = shard.commit.lock().expect("commit lock");
        let mut manifest = (*shard.current_manifest()).clone();
        let result = self.store.retile_deferred(&mut manifest, sot_idx, layout);
        // A post-commit completion failure still advances the manifest
        // to the new layout (the re-tile logically happened; see
        // `VideoStore::retile_deferred`), so judge by the manifest, not
        // by `?`.
        let committed = manifest
            .sots
            .get(sot_idx)
            .is_some_and(|s| s.layout == requested);
        if committed {
            let manifest = Arc::new(manifest);
            let gc = {
                let mut table = shard.epochs.lock().expect("epoch table lock");
                table.publish(manifest.clone())
            };
            for old in gc {
                // Best-effort: idempotent, and recovery reaps leftovers.
                let _ = self.store.gc_epoch(&manifest.name, old);
            }
            // Regret resets relative to the new current layout — also when
            // an error surfaced after the commit point, else the stale
            // counters would immediately trigger a redundant re-tile.
            pol.sots[sot_idx].regret.clear();
        }
        Ok(result?.0)
    }

    // ------------------------------------------------------------------
    // §5.3 — "incremental, more": re-tile around all queried objects as
    // soon as a query for a new object type arrives.
    // ------------------------------------------------------------------

    /// Observes a query under the incremental-more policy; returns any
    /// transcode cost paid.
    pub fn observe_more(
        &self,
        name: &str,
        label: &str,
        frames: Range<u32>,
    ) -> Result<RetileStats, TasmError> {
        let shard = self.shard(name)?;
        let mut pol = shard.policy.lock().expect("policy lock");
        let sot_range = {
            let m = shard.current_manifest();
            m.sots_for_range(frames.clone())
        };
        let mut total = RetileStats::default();
        for sot_idx in sot_range {
            if !pol.sots[sot_idx].queried.insert(label.to_string()) {
                continue;
            }
            let objects: Vec<String> = pol.sots[sot_idx].queried.iter().cloned().collect();
            if let Some(layout) = self.kqko_layout_shard(&shard, sot_idx, &objects)? {
                let current = {
                    let m = shard.current_manifest();
                    m.sots[sot_idx].layout.clone()
                };
                if layout != current {
                    total =
                        add_retile(total, self.retile_shard(&shard, &mut pol, sot_idx, layout)?);
                }
            }
        }
        Ok(total)
    }

    // ------------------------------------------------------------------
    // §4.4 — regret-based incremental tiling
    // ------------------------------------------------------------------

    /// Observes a query under the regret policy: accumulates regret for the
    /// alternative layouts of every touched SOT and re-tiles those whose
    /// best alternative's regret exceeds `η · R(s, L)`. Returns any
    /// transcode cost paid.
    ///
    /// Policy state is sharded per video: concurrent observations on
    /// different videos never contend, while observations on one video
    /// serialize on its policy mutex (regret accumulation is inherently
    /// order-dependent).
    pub fn observe_regret(
        &self,
        name: &str,
        label: &str,
        frames: Range<u32>,
    ) -> Result<RetileStats, TasmError> {
        let shard = self.shard(name)?;
        let mut pol = shard.policy.lock().expect("policy lock");
        let (sot_range, gop, w, h) = {
            let m = shard.current_manifest();
            (
                m.sots_for_range(frames.clone()),
                m.config.gop_len,
                m.width,
                m.height,
            )
        };
        let id = shard.id;
        pol.seen_objects.insert(label.to_string());
        let alternatives = alternative_subsets(&pol.seen_objects, self.cfg.max_subset_objects);
        let mut total = RetileStats::default();

        for sot_idx in sot_range {
            let sot = {
                let m = shard.current_manifest();
                m.sots[sot_idx].clone()
            };
            let window = frames.start.max(sot.start)..frames.end.min(sot.end);
            if window.is_empty() {
                continue;
            }

            // Record history first (new alternatives replay it).
            let prior_history = pol.sots[sot_idx].history.clone();
            pol.sots[sot_idx]
                .history
                .push((label.to_string(), window.clone()));

            for subset in &alternatives {
                let alt_layout = match self.subset_layout(id, subset, &sot, w, h)? {
                    Some(l) => l,
                    None => continue,
                };
                let is_new = !pol.sots[sot_idx].regret.contains_key(subset);
                let mut delta = 0.0;
                if is_new {
                    // Retroactive regret over the query history (§4.4).
                    for (hl, hw) in &prior_history {
                        delta += self.query_delta(id, hl, hw.clone(), &sot, gop, &alt_layout)?;
                    }
                }
                delta += self.query_delta(id, label, window.clone(), &sot, gop, &alt_layout)?;
                *pol.sots[sot_idx]
                    .regret
                    .entry(subset.clone())
                    .or_insert(0.0) += delta;
            }

            // Pick the best alternative exceeding the threshold.
            let reencode_cost = self.cfg.encode.reencode_cost(w, h, sot.len());
            let threshold = self.cfg.eta * reencode_cost;
            let best: Option<(Vec<String>, f64)> = pol.sots[sot_idx]
                .regret
                .iter()
                .filter(|(_, &d)| d > threshold)
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("regret is finite"))
                .map(|(k, &d)| (k.clone(), d));
            if let Some((subset, _)) = best {
                if let Some(layout) = self.subset_layout(id, &subset, &sot, w, h)? {
                    let history = pol.sots[sot_idx].history.clone();
                    if layout != sot.layout && !self.would_hurt(id, &layout, &sot, &history, gop)? {
                        total = add_retile(
                            total,
                            self.retile_shard(&shard, &mut pol, sot_idx, layout)?,
                        );
                    } else {
                        // Unusable alternative: forget it so it stops
                        // winning the argmax every query.
                        pol.sots[sot_idx].regret.remove(&subset);
                    }
                }
            }
        }
        Ok(total)
    }

    /// Regret accumulated for a subset on a SOT (tests/diagnostics).
    pub fn regret_for(&self, name: &str, sot_idx: usize, subset: &[String]) -> Option<f64> {
        let shard = self.shard(name).ok()?;
        let pol = shard.policy.lock().expect("policy lock");
        pol.sots.get(sot_idx)?.regret.get(subset).copied()
    }

    // --- internals ---

    fn shard(&self, name: &str) -> Result<Arc<VideoShard>, TasmError> {
        self.videos
            .read()
            .expect("videos lock")
            .get(name)
            .cloned()
            .ok_or_else(|| TasmError::UnknownVideo(name.to_string()))
    }

    /// Layout around a subset's detected boxes in a SOT, or `None` when no
    /// boxes exist or no cut is possible.
    fn subset_layout(
        &self,
        video_id: u32,
        subset: &[String],
        sot: &crate::storage::SotEntry,
        w: u32,
        h: u32,
    ) -> Result<Option<TileLayout>, TasmError> {
        let dets = self.detections_for(video_id, subset, sot.frames())?;
        if dets.is_empty() {
            return Ok(None);
        }
        let boxes: Vec<Rect> = dets.iter().map(|d| d.bbox).collect();
        let layout = partition(w, h, &boxes, &self.cfg.partition);
        Ok(if layout.is_untiled() {
            None
        } else {
            Some(layout)
        })
    }

    /// Estimated improvement `∆(q, L_cur, L_alt)` of one query on one SOT.
    fn query_delta(
        &self,
        video_id: u32,
        label: &str,
        window: Range<u32>,
        sot: &crate::storage::SotEntry,
        gop: u32,
        alt: &TileLayout,
    ) -> Result<f64, TasmError> {
        let dets = self.with_index(|ix| ix.query(video_id, label, window.clone()))?;
        let cur = estimate_work(&sot.layout, &dets, window.clone(), sot.start, gop);
        let new = estimate_work(alt, &dets, window, sot.start, gop);
        Ok(self.cfg.cost.cost(cur) - self.cfg.cost.cost(new))
    }

    /// The α safety check over the SOT's query history: a layout "hurts" if
    /// any past query would decode ≥ α of the untiled pixels (§5.3).
    fn would_hurt(
        &self,
        video_id: u32,
        layout: &TileLayout,
        sot: &crate::storage::SotEntry,
        history: &[(String, Range<u32>)],
        gop: u32,
    ) -> Result<bool, TasmError> {
        for (label, window) in history {
            let dets = self.with_index(|ix| ix.query(video_id, label, window.clone()))?;
            if dets.is_empty() {
                continue;
            }
            let r = pixel_ratio(layout, &dets, window.clone(), sot.start, gop);
            if r >= self.cfg.alpha {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn detections_for(
        &self,
        video_id: u32,
        objects: &[String],
        frames: Range<u32>,
    ) -> Result<Vec<Detection>, TasmError> {
        let mut dets = Vec::new();
        for o in objects {
            dets.extend(self.with_index(|ix| ix.query(video_id, o, frames.clone()))?);
        }
        Ok(dets)
    }
}

/// Candidate object subsets for alternative layouts: all non-empty subsets
/// while small, singletons + the full set beyond the cap.
fn alternative_subsets(seen_objects: &BTreeSet<String>, cap: usize) -> Vec<Vec<String>> {
    let seen: Vec<String> = seen_objects.iter().cloned().collect();
    let mut out = Vec::new();
    if seen.is_empty() {
        return out;
    }
    if seen.len() <= cap {
        let n = seen.len();
        for mask in 1u32..(1 << n) {
            let subset: Vec<String> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| seen[i].clone())
                .collect();
            out.push(subset);
        }
    } else {
        for s in &seen {
            out.push(vec![s.clone()]);
        }
        out.push(seen.clone());
    }
    out
}

fn add_retile(mut a: RetileStats, b: RetileStats) -> RetileStats {
    a.decode += b.decode;
    a.encode += b.encode;
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_index::MemoryIndex;
    use tasm_video::{Frame, Plane, VecFrameSource};

    fn source(frames: u32) -> VecFrameSource {
        VecFrameSource::new(
            (0..frames)
                .map(|i| {
                    let mut f = Frame::filled(128, 96, 90, 128, 128);
                    for y in 0..96 {
                        for x in 0..128 {
                            f.set_sample(Plane::Y, x, y, ((x * 3 + y * 7) % 180 + 30) as u8);
                        }
                    }
                    // A "car" moving along the top and a static "person"
                    // bottom-right.
                    f.fill_rect(Rect::new((i * 2) % 96, 8, 24, 16), 220, 90, 170);
                    f.fill_rect(Rect::new(96, 64, 12, 24), 60, 170, 90);
                    f
                })
                .collect(),
        )
    }

    fn tasm(tag: &str) -> Tasm {
        let dir = std::env::temp_dir().join(format!("tasm-facade-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = TasmConfig {
            storage: StorageConfig {
                gop_len: 5,
                sot_frames: 10,
                parallel_encode: false,
                ..Default::default()
            },
            partition: PartitionConfig {
                min_tile_width: 32,
                min_tile_height: 16,
                ..Default::default()
            },
            ..Default::default()
        };
        Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap()
    }

    fn populate_truth(t: &mut Tasm, frames: u32) {
        for i in 0..frames {
            t.add_metadata("v", "car", i, Rect::new((i * 2) % 96, 8, 24, 16))
                .unwrap();
            t.add_metadata("v", "person", i, Rect::new(96, 64, 12, 24))
                .unwrap();
            t.mark_processed("v", i).unwrap();
        }
    }

    #[test]
    fn ingest_scan_roundtrip() {
        let mut t = tasm("scan");
        let src = source(20);
        t.ingest("v", &src, 30).unwrap();
        populate_truth(&mut t, 20);
        let result = t.scan("v", &LabelPredicate::label("car"), 0..10).unwrap();
        assert_eq!(result.regions.len(), 10, "one car region per frame");
        assert!(result.stats.samples_decoded > 0);
        assert!(result.seconds() > 0.0);
        // Region pixels carry the bright car texture.
        let r = &result.regions[0];
        let bright = r
            .pixels
            .plane(Plane::Y)
            .iter()
            .filter(|&&v| v > 180)
            .count();
        assert!(bright > 50, "car pixels should be bright, got {bright}");
    }

    #[test]
    fn scan_unknown_video_fails() {
        let t = tasm("unknown");
        assert!(matches!(
            t.scan("nope", &LabelPredicate::label("car"), 0..10),
            Err(TasmError::UnknownVideo(_))
        ));
    }

    #[test]
    fn tasm_is_sync_and_send() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Tasm>();
    }

    #[test]
    fn video_id_collision_is_refused() {
        // Find two names with the same FNV-1a u32 hash (birthday bound:
        // ~2^16 draws for a 32-bit space; this loop finds one in well under
        // 200k names).
        let mut seen: std::collections::HashMap<u32, String> = std::collections::HashMap::new();
        let mut pair = None;
        for i in 0u64.. {
            let name = format!("cam-{i}");
            let id = video_id_for(&name);
            if let Some(first) = seen.get(&id) {
                pair = Some((first.clone(), name));
                break;
            }
            seen.insert(id, name);
        }
        let (first, second) = pair.expect("collision search terminates");
        assert_eq!(video_id_for(&first), video_id_for(&second));
        assert_ne!(first, second);

        let t = tasm("collide");
        let src = source(10);
        t.ingest(&first, &src, 30).unwrap();
        // Both ingest and attach refuse the aliasing name.
        match t.ingest(&second, &src, 30) {
            Err(TasmError::VideoIdCollision { existing, rejected }) => {
                assert_eq!(existing, first);
                assert_eq!(rejected, second);
            }
            other => panic!("expected VideoIdCollision, got {other:?}"),
        }
        assert!(matches!(
            t.attach(&second),
            Err(TasmError::VideoIdCollision { .. })
        ));
        // Re-registering the same name is not a collision.
        t.attach(&first).unwrap();
    }

    #[test]
    fn kqko_tiles_around_objects_and_reduces_decode() {
        let mut t = tasm("kqko");
        let src = source(20);
        t.ingest("v", &src, 30).unwrap();
        populate_truth(&mut t, 20);

        let before = t
            .scan("v", &LabelPredicate::label("person"), 0..10)
            .unwrap();
        let cost = t.kqko_retile_all("v", &["person".to_string()]).unwrap();
        assert!(cost.encode.bytes_produced > 0, "should have re-tiled");
        let after = t
            .scan("v", &LabelPredicate::label("person"), 0..10)
            .unwrap();
        assert!(
            after.stats.samples_decoded < before.stats.samples_decoded,
            "tiling should reduce decoded samples: {} -> {}",
            before.stats.samples_decoded,
            after.stats.samples_decoded
        );
        // Layout is recorded in the manifest.
        assert!(!t.manifest("v").unwrap().sots[0].layout.is_untiled());
    }

    #[test]
    fn kqko_declines_when_no_detections() {
        let t = tasm("kqko-empty");
        let src = source(10);
        t.ingest("v", &src, 30).unwrap();
        let l = t.kqko_layout("v", 0, &["car".to_string()]).unwrap();
        assert!(l.is_none());
    }

    #[test]
    fn incremental_more_retiles_on_new_object() {
        let mut t = tasm("more");
        let src = source(20);
        t.ingest("v", &src, 30).unwrap();
        populate_truth(&mut t, 20);

        let cost1 = t.observe_more("v", "car", 0..10).unwrap();
        assert!(cost1.encode.bytes_produced > 0, "first query should tile");
        let l1 = t.manifest("v").unwrap().sots[0].layout.clone();
        // Repeat query: no work.
        let cost2 = t.observe_more("v", "car", 0..10).unwrap();
        assert_eq!(cost2.encode.bytes_produced, 0);
        // New object: re-tile around both.
        let cost3 = t.observe_more("v", "person", 0..10).unwrap();
        assert!(cost3.encode.bytes_produced > 0);
        let l2 = t.manifest("v").unwrap().sots[0].layout.clone();
        assert_ne!(l1, l2, "layout should now cover both objects");
    }

    #[test]
    fn regret_accumulates_then_retiles() {
        let mut t = tasm("regret");
        let src = source(20);
        t.ingest("v", &src, 30).unwrap();
        populate_truth(&mut t, 20);

        let mut paid = 0u64;
        let mut retiled_at = None;
        for q in 0..50 {
            let cost = t.observe_regret("v", "car", 0..10).unwrap();
            paid += cost.encode.bytes_produced;
            if cost.encode.bytes_produced > 0 && retiled_at.is_none() {
                retiled_at = Some(q);
            }
        }
        let retiled_at = retiled_at.expect("repeated queries must eventually trigger re-tiling");
        assert!(retiled_at > 0, "should not re-tile on the very first query");
        assert!(paid > 0);
        assert!(!t.manifest("v").unwrap().sots[0].layout.is_untiled());
        // After the retile, regret for the chosen subset was reset.
        let r = t.regret_for("v", 0, &["car".to_string()]);
        assert!(r.is_none() || r.unwrap() < 1.0);
    }

    #[test]
    fn regret_considers_multi_object_subsets() {
        let mut t = tasm("subsets");
        let src = source(20);
        t.ingest("v", &src, 30).unwrap();
        populate_truth(&mut t, 20);
        t.observe_regret("v", "car", 0..10).unwrap();
        t.observe_regret("v", "person", 0..10).unwrap();
        // The {car, person} subset exists and has accumulated regret.
        let both = vec!["car".to_string(), "person".to_string()];
        assert!(
            t.regret_for("v", 0, &both).is_some(),
            "combined subset should be tracked"
        );
    }
}
