//! Edge tiling (§4.3, third strategy).
//!
//! When the object classes queries will target (`O_Q`) are known in advance,
//! the VDBMS communicates them to the edge camera. The camera runs (cheap or
//! sampled) detection as frames are captured and encodes the video *with
//! tiles from the start*, so the VDBMS never pays a re-encode, and the
//! semantic index arrives pre-initialized. Tiling on-camera also lets the
//! camera stream only the tiles containing objects, cutting upload
//! bandwidth — both effects are reported in [`EdgeReport`].

use crate::partition::partition;
use crate::runner::TruthFn;
use crate::tasm::{Tasm, TasmError};
use tasm_codec::TileLayout;
use tasm_detect::{Detector, RawDetection};
use tasm_video::{FrameSource, Rect};

/// Configuration of the simulated edge camera.
#[derive(Debug, Clone)]
pub struct EdgeConfig {
    /// Object classes the VDBMS announced (`O_Q`).
    pub target_objects: Vec<String>,
    /// Run the detector every `stride` frames (full YOLOv3 cannot keep up
    /// with capture rate on an embedded GPU; §5.2.4 finds stride 5 works).
    pub detection_stride: u32,
}

impl EdgeConfig {
    /// Camera watching for the given classes, detecting every 5th frame.
    pub fn new(target_objects: &[&str]) -> Self {
        EdgeConfig {
            target_objects: target_objects.iter().map(|s| s.to_string()).collect(),
            detection_stride: 5,
        }
    }
}

/// Outcome of an edge-tiled ingest.
#[derive(Debug, Clone, Default)]
pub struct EdgeReport {
    /// Simulated on-camera detection seconds.
    pub detect_seconds: f64,
    /// Frames the detector actually processed.
    pub frames_processed: u64,
    /// Bytes if the camera streams only tiles containing target objects.
    pub streamed_tile_bytes: u64,
    /// Bytes of the full tiled video.
    pub full_video_bytes: u64,
    /// Number of SOTs that ended up tiled (vs `ω`).
    pub tiled_sots: u32,
}

impl EdgeReport {
    /// Upload saving from streaming only object tiles.
    pub fn bandwidth_saving(&self) -> f64 {
        if self.full_video_bytes == 0 {
            0.0
        } else {
            1.0 - self.streamed_tile_bytes as f64 / self.full_video_bytes as f64
        }
    }
}

/// Simulates capture-time tiling on the camera and ingests the result:
/// the video enters the store already tiled around `O_Q`, and the semantic
/// index is pre-populated with the camera's detections.
pub fn edge_ingest(
    tasm: &mut Tasm,
    name: &str,
    src: &dyn FrameSource,
    fps: u32,
    cfg: &EdgeConfig,
    detector: &mut dyn Detector,
    truth: TruthFn<'_>,
) -> Result<EdgeReport, TasmError> {
    assert!(cfg.detection_stride > 0, "stride must be positive");
    let mut report = EdgeReport::default();
    let sot_frames = tasm.config().storage.sot_frames;
    let (w, h) = (src.width(), src.height());
    let n = src.len();

    // --- capture loop: sampled detection per SOT ---
    let mut per_sot: Vec<Vec<RawDetection>> = Vec::new();
    let mut held: Vec<RawDetection> = Vec::new();
    for f in 0..n {
        if f % sot_frames == 0 {
            per_sot.push(Vec::new());
        }
        if f % cfg.detection_stride == 0 {
            let t = truth(f);
            let frame_storage;
            let frame_ref = if detector.needs_pixels() {
                frame_storage = src.frame(f);
                Some(&frame_storage)
            } else {
                None
            };
            held = detector.detect(f, frame_ref, &t);
            report.frames_processed += 1;
            report.detect_seconds += detector.seconds_per_frame();
        }
        // Held boxes apply to skipped frames too (objects persist).
        let sot = per_sot.last_mut().expect("sot bucket exists");
        for d in &held {
            if cfg.target_objects.contains(&d.label) {
                let mut d = d.clone();
                d.bbox = d.bbox.clamp_to(w, h);
                sot.extend([RawDetection { bbox: d.bbox, ..d }]);
            }
        }
    }

    // --- choose per-SOT layouts before first encode ---
    let partition_cfg = tasm.config().partition;
    let layouts: Vec<TileLayout> = per_sot
        .iter()
        .map(|dets| {
            let boxes: Vec<Rect> = dets.iter().map(|d| d.bbox).collect();
            partition(w, h, &boxes, &partition_cfg)
        })
        .collect();
    report.tiled_sots = layouts.iter().filter(|l| !l.is_untiled()).count() as u32;

    let layouts_for = layouts.clone();
    tasm.ingest_with(name, src, fps, move |i, _| layouts_for[i].clone())?;

    // --- pre-initialize the semantic index with the camera's detections ---
    // (boxes are replayed per frame; held boxes repeat across frames, so
    // deduplicate by (frame bucket) ... the camera reports per frame).
    let mut held: Vec<RawDetection> = Vec::new();
    for f in 0..n {
        if f % cfg.detection_stride == 0 {
            let t = truth(f);
            held = detector.detect(f, None, &t);
        }
        for d in &held {
            tasm.add_metadata(name, &d.label, f, d.bbox.clamp_to(w, h))?;
        }
        tasm.mark_processed(name, f)?;
    }

    // --- bandwidth accounting ---
    let manifest = tasm.manifest(name)?.clone();
    report.full_video_bytes = tasm.store().video_size_bytes(&manifest)?;
    let mut streamed = 0u64;
    for (sot_idx, (sot, dets)) in manifest.sots.iter().zip(&per_sot).enumerate() {
        let mut needed = vec![false; sot.layout.tile_count() as usize];
        for d in dets {
            for t in sot.layout.tiles_intersecting(&d.bbox) {
                needed[t as usize] = true;
            }
        }
        for t in 0..sot.layout.tile_count() {
            if needed[t as usize] {
                let tile = tasm.store().read_tile(&manifest, sot_idx, t)?;
                streamed += tile.size_bytes();
            }
        }
    }
    report.streamed_tile_bytes = streamed;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionConfig;
    use crate::scan::LabelPredicate;
    use crate::storage::StorageConfig;
    use crate::tasm::TasmConfig;
    use tasm_detect::yolo::{Platform, SimulatedYolo};
    use tasm_index::MemoryIndex;
    use tasm_video::{Frame, Plane, VecFrameSource};

    fn source(frames: u32) -> VecFrameSource {
        VecFrameSource::new(
            (0..frames)
                .map(|i| {
                    let mut f = Frame::filled(128, 96, 90, 128, 128);
                    for y in 0..96 {
                        for x in 0..128 {
                            f.set_sample(Plane::Y, x, y, ((x * 5 + y * 3) % 170 + 40) as u8);
                        }
                    }
                    f.fill_rect(Rect::new((i * 2) % 96, 8, 24, 16), 220, 90, 170);
                    f
                })
                .collect(),
        )
    }

    fn truth_at(f: u32) -> Vec<(&'static str, Rect)> {
        vec![("car", Rect::new((f * 2) % 96, 8, 24, 16))]
    }

    fn tasm(tag: &str) -> Tasm {
        let dir = std::env::temp_dir().join(format!("tasm-edge-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = TasmConfig {
            storage: StorageConfig {
                gop_len: 5,
                sot_frames: 10,
                parallel_encode: false,
                ..Default::default()
            },
            partition: PartitionConfig {
                min_tile_width: 32,
                min_tile_height: 16,
                ..Default::default()
            },
            ..Default::default()
        };
        Tasm::open(dir, Box::new(MemoryIndex::in_memory()), cfg).unwrap()
    }

    #[test]
    fn edge_ingest_pretiles_and_populates_index() {
        let mut t = tasm("basic");
        let src = source(30);
        let mut det = SimulatedYolo::full(1).on(Platform::EdgeGpu);
        let cfg = EdgeConfig::new(&["car"]);
        let report = edge_ingest(&mut t, "v", &src, 30, &cfg, &mut det, &truth_at).unwrap();

        // Sampled detection: 30 frames / stride 5 = 6 processed.
        assert_eq!(report.frames_processed, 6);
        let expected = 6.0 / 16.0; // edge GPU at 16 fps
        assert!((report.detect_seconds - expected).abs() < 1e-9);
        assert!(report.tiled_sots > 0, "camera should have tiled SOTs");

        // The video arrives tiled: no retile needed for first queries.
        let m = t.manifest("v").unwrap();
        assert!(m.sots.iter().any(|s| !s.layout.is_untiled()));

        // The index is pre-initialized: scans return regions immediately.
        let result = t.scan("v", &LabelPredicate::label("car"), 0..10).unwrap();
        assert!(!result.regions.is_empty());
    }

    #[test]
    fn streaming_only_object_tiles_saves_bandwidth() {
        let mut t = tasm("bw");
        let src = source(30);
        let mut det = SimulatedYolo::full(1).on(Platform::EdgeGpu);
        let cfg = EdgeConfig::new(&["car"]);
        let report = edge_ingest(&mut t, "v", &src, 30, &cfg, &mut det, &truth_at).unwrap();
        assert!(report.streamed_tile_bytes > 0);
        assert!(
            report.streamed_tile_bytes < report.full_video_bytes,
            "object tiles ({}) should be smaller than the full video ({})",
            report.streamed_tile_bytes,
            report.full_video_bytes
        );
        assert!(report.bandwidth_saving() > 0.0);
    }

    #[test]
    fn edge_first_query_needs_no_retile() {
        let mut t = tasm("noretile");
        let src = source(30);
        let mut det = SimulatedYolo::full(1).on(Platform::EdgeGpu);
        let cfg = EdgeConfig::new(&["car"]);
        edge_ingest(&mut t, "v", &src, 30, &cfg, &mut det, &truth_at).unwrap();
        // Compare against a lazily ingested copy: edge decode is cheaper on
        // the very first query.
        let lazy = tasm("noretile-lazy");
        lazy.ingest("v", &src, 30).unwrap();
        for f in 0..30 {
            for (l, b) in truth_at(f) {
                lazy.add_metadata("v", l, f, b).unwrap();
            }
        }
        let edge_scan = t.scan("v", &LabelPredicate::label("car"), 10..20).unwrap();
        let lazy_scan = lazy
            .scan("v", &LabelPredicate::label("car"), 10..20)
            .unwrap();
        assert!(
            edge_scan.stats.samples_decoded < lazy_scan.stats.samples_decoded,
            "edge {} vs lazy {}",
            edge_scan.stats.samples_decoded,
            lazy_scan.stats.samples_decoded
        );
    }
}
