//! The spatiotemporal query planner.
//!
//! [`mod@crate::scan`] accepts only a label predicate over a contiguous frame
//! range: every tile overlapping any labeled box is decoded for the whole
//! matched span. This module adds the query shapes the paper's storage
//! manager exists to serve — *subframe, object-centric* retrieval — by
//! planning the decode before touching any bytes:
//!
//! * **Spatial ROI** ([`Query::roi`]) — only labeled boxes intersecting a
//!   region of interest are retrieved. Boxes are tested against the ROI
//!   through [`tasm_index::SpatialGrid`] before planning, so tiles whose
//!   boxes miss the ROI are never decoded.
//! * **Temporal sampling** ([`Query::stride`]) — sample every `n`-th frame
//!   of the window. GOPs containing no sampled frame are never decoded.
//! * **Limit** ([`Query::limit`]) — return only the first `k` matching
//!   frames. The planner knows every match from the semantic index before
//!   decode starts, so GOPs past the satisfied limit are never scheduled;
//!   the early termination is deterministic at any worker count.
//! * **Aggregate modes** ([`Query::mode`]) — [`QueryMode::Count`] and
//!   [`QueryMode::Exists`] answer from the index alone and skip pixel
//!   materialization entirely.
//!
//! The planner turns a [`Query`] into a pruned per-`(SOT, tile, GOP)`
//! decode plan executed by the [`crate::exec`] pipeline, and reports what
//! it cut in [`exec::PlanStats`] (`tiles_pruned`, `gops_skipped`,
//! `frames_sampled`). Plan statistics are computed from the index alone, so
//! they are identical whether the planned GOPs are decoded, served from the
//! decoded-GOP cache, or joined from a concurrent query's in-flight decode
//! — and the §4.1 cost model keeps seeing only real decode work in
//! [`ScanResult::stats`].
//!
//! ## Equivalence contract
//!
//! For any ROI/stride/limit combination, [`crate::Tasm::query`] returns
//! regions *bit-identical* to running the unpruned [`crate::Tasm::scan`]
//! and filtering its output post-hoc (keep regions whose rectangle
//! intersects the ROI, whose frame lies on the stride, and that belong to
//! the first `k` matching frames). This holds at any worker count, any
//! cache state, and across concurrent re-tiles; `tests/concurrent_scan.rs`
//! and `tests/query_planner.rs` assert it, including by property test.

use crate::exec::{self, DecodedTile, TileDecodeRequest};
use crate::scan::{
    align_out, blit_tile_overlap, gop_count, LabelPredicate, RegionPixels, ScanError, ScanResult,
};
use crate::storage::{VideoManifest, VideoStore};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;
use std::time::{Duration, Instant};
use tasm_index::SpatialGrid;
use tasm_video::{Frame, Rect};

/// Past this many boxes in a frame, ROI filtering goes through the spatial
/// grid instead of testing every box directly.
const GRID_THRESHOLD: usize = 16;

/// What a query returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueryMode {
    /// Materialize the matched regions' pixels (the [`mod@crate::scan`]
    /// behavior). The default.
    #[default]
    Pixels,
    /// Report only the number of matching regions
    /// ([`ScanResult::matched`]); no tile is decoded.
    Count,
    /// Report only whether any region matches (`matched > 0`); no tile is
    /// decoded.
    Exists,
}

/// A spatiotemporal query: a label predicate plus optional region-of-
/// interest, temporal-sampling, and aggregate clauses.
///
/// Built fluently and executed with [`crate::Tasm::query`] (or submitted to
/// `tasm-service`'s `QueryService`):
///
/// ```
/// use tasm_core::{LabelPredicate, Query, QueryMode};
/// use tasm_video::Rect;
///
/// // "Every 5th frame of the first 300 in which a car enters the
/// //  left half of the intersection — stop after 10 matching frames."
/// let q = Query::new(LabelPredicate::label("car"))
///     .frames(0..300)
///     .roi(Rect::new(0, 0, 320, 352))
///     .stride(5)
///     .limit(10);
/// assert_eq!(q.frame_range(), 0..300);
/// assert_eq!(q.query_mode(), QueryMode::Pixels);
///
/// // The same match set, but only its cardinality — decodes nothing.
/// let count = q.clone().mode(QueryMode::Count);
/// assert_eq!(count.query_mode(), QueryMode::Count);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    predicate: LabelPredicate,
    frames: Range<u32>,
    roi: Option<Rect>,
    stride: u32,
    limit: Option<u32>,
    mode: QueryMode,
    as_of: Option<u64>,
}

impl Query {
    /// A query for `predicate` over the whole video, every frame, returning
    /// pixels. Narrow it with the builder methods.
    pub fn new(predicate: LabelPredicate) -> Self {
        Query {
            predicate,
            frames: 0..u32::MAX,
            roi: None,
            stride: 1,
            limit: None,
            mode: QueryMode::Pixels,
            as_of: None,
        }
    }

    /// Restricts the query to a frame window (clamped to the video length
    /// at execution).
    pub fn frames(mut self, frames: Range<u32>) -> Self {
        self.frames = frames;
        self
    }

    /// Keeps only boxes intersecting `roi`. Matching boxes are returned
    /// whole (selection, not clipping), so results stay bit-identical to a
    /// post-filtered full scan.
    pub fn roi(mut self, roi: Rect) -> Self {
        self.roi = Some(roi);
        self
    }

    /// Samples every `stride`-th frame of the window, anchored at its
    /// start. `1` (the default) samples every frame; `0` is treated as `1`.
    pub fn stride(mut self, stride: u32) -> Self {
        self.stride = stride.max(1);
        self
    }

    /// Stops after the first `limit` frames with at least one match. GOPs
    /// past the satisfied limit are never decoded.
    pub fn limit(mut self, limit: u32) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Selects what the query returns (pixels, count, or existence).
    pub fn mode(mut self, mode: QueryMode) -> Self {
        self.mode = mode;
        self
    }

    /// Executes against the named layout `epoch` instead of the current
    /// one (`AS OF <epoch>`). The epoch must still be live — current, or
    /// retired but pinned by a reader — otherwise execution fails with
    /// [`crate::TasmError::EpochNotLive`]. Layout epochs affect *how*
    /// frames are tiled, never their content, so results differ from the
    /// current epoch's only in work accounting — the property the MVCC
    /// tests assert and a consistent-backup reader relies on.
    pub fn as_of(mut self, epoch: u64) -> Self {
        self.as_of = Some(epoch);
        self
    }

    /// The label predicate.
    pub fn predicate(&self) -> &LabelPredicate {
        &self.predicate
    }

    /// The frame window.
    pub fn frame_range(&self) -> Range<u32> {
        self.frames.clone()
    }

    /// The region of interest, if any.
    pub fn roi_rect(&self) -> Option<Rect> {
        self.roi
    }

    /// The sampling stride (≥ 1).
    pub fn stride_len(&self) -> u32 {
        self.stride
    }

    /// The first-k-matching-frames limit, if any.
    pub fn limit_count(&self) -> Option<u32> {
        self.limit
    }

    /// The aggregate mode.
    pub fn query_mode(&self) -> QueryMode {
        self.mode
    }

    /// The `AS OF` layout epoch, if any.
    pub fn as_of_epoch(&self) -> Option<u64> {
        self.as_of
    }
}

/// Applies the spatial and temporal predicates to the index-resolved
/// regions, in the same order a post-hoc filter of scan output would:
/// degenerate boxes out, then ROI, then stride, then limit.
fn filter_regions(
    regions: &mut BTreeMap<u32, Vec<Rect>>,
    manifest: &VideoManifest,
    query: &Query,
    frames: &Range<u32>,
) {
    // Boxes that are empty after chroma alignment and frame clamping never
    // produce a region in scan output; drop them first so `matched` and the
    // `limit` cutoff agree with post-filtered scan results exactly.
    for rects in regions.values_mut() {
        rects.retain(|r| !align_out(r, manifest.width, manifest.height).is_empty());
    }
    if let Some(roi) = query.roi_rect() {
        // The grid stores raw rectangles but discovers candidates through
        // frame-clamped cells; that is exact for a frame-contained ROI (any
        // raw intersection then lies inside the frame, hence inside the
        // box's clamped cells) but would miss overlaps that exist only
        // beyond the frame edge. An ROI reaching past the frame therefore
        // takes the direct path, keeping ROI semantics identical to the
        // post-hoc filter: raw `Rect::intersects`, always.
        let grid_exact =
            roi.right() <= manifest.width && roi.bottom() <= manifest.height && !roi.is_empty();
        for rects in regions.values_mut() {
            if grid_exact && rects.len() > GRID_THRESHOLD {
                let grid = SpatialGrid::from_boxes(manifest.width, manifest.height, rects);
                *rects = grid.query_intersecting(&roi);
            } else {
                rects.retain(|r| r.intersects(&roi));
            }
        }
    }
    let stride = query.stride_len();
    if stride > 1 {
        regions.retain(|&f, _| (f - frames.start).is_multiple_of(stride));
    }
    regions.retain(|_, rects| !rects.is_empty());
    if let Some(limit) = query.limit_count() {
        if regions.len() > limit as usize {
            let cutoff = *regions
                .keys()
                .nth(limit as usize)
                .expect("len > limit implies a frame at index `limit`");
            regions.split_off(&cutoff);
        }
    }
}

/// The decode half of [`crate::Tasm::query`]: plans and executes a query
/// against already-resolved target regions. Split from the index lookup for
/// the same reason as [`crate::scan::scan_prepared`] — the semantic-index
/// lock is released before any decode work starts.
pub(crate) fn query_prepared(
    store: &VideoStore,
    manifest: &VideoManifest,
    mut regions: BTreeMap<u32, Vec<Rect>>,
    query: &Query,
    frames: Range<u32>,
    lookup_time: Duration,
) -> Result<ScanResult, ScanError> {
    let mut result = ScanResult {
        lookup_time,
        epoch: manifest.epoch(),
        ..Default::default()
    };
    let gop_len = manifest.config.gop_len;

    // --- Baseline: the label-only plan `scan` would execute -------------
    // (tiles from raw boxes, each over the SOT's full matched-frame span).
    // Everything below prunes relative to this.
    let mut baseline: Vec<(usize, BTreeSet<u32>, Range<u32>)> = Vec::new();
    for sot_idx in manifest.sots_for_range(frames.clone()) {
        let sot = &manifest.sots[sot_idx];
        let mut tiles: BTreeSet<u32> = BTreeSet::new();
        let mut first = u32::MAX;
        let mut last = 0u32;
        for (&frame, rects) in regions.range(sot.start..sot.end) {
            for r in rects {
                tiles.extend(sot.layout.tiles_intersecting(r));
            }
            first = first.min(frame);
            last = last.max(frame);
        }
        if !tiles.is_empty() {
            let span = (first - sot.start)..(last - sot.start + 1);
            baseline.push((sot_idx, tiles, span));
        }
    }

    // --- Prune: ROI ∧ stride ∧ limit ------------------------------------
    filter_regions(&mut regions, manifest, query, &frames);
    result.plan.frames_sampled = regions.len() as u64;
    result.matched = regions.values().map(|v| v.len() as u64).sum();

    if query.query_mode() != QueryMode::Pixels || regions.is_empty() {
        // Aggregate modes answer from the index alone; the entire baseline
        // decode plan is skipped. (Likewise when nothing matched.)
        for (_, tiles, _) in &baseline {
            result.plan.tiles_pruned += tiles.len() as u64;
        }
        return Ok(result);
    }

    // --- Plan: per-(SOT, tile) runs of GOPs that contain sampled frames --
    let mut requests: Vec<TileDecodeRequest> = Vec::new();
    let mut sot_order: Vec<usize> = Vec::new();
    for (sot_idx, base_tiles, base_span) in &baseline {
        let sot = &manifest.sots[*sot_idx];
        // tile → local indices of sampled frames whose boxes touch it.
        let mut per_tile: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        for (&frame, rects) in regions.range(sot.start..sot.end) {
            let local = frame - sot.start;
            for r in rects {
                for t in sot.layout.tiles_intersecting(r) {
                    per_tile.entry(t).or_default().insert(local);
                }
            }
        }
        result.plan.tiles_pruned += (base_tiles.len() - per_tile.len()) as u64;
        if per_tile.is_empty() {
            continue;
        }
        sot_order.push(*sot_idx);
        let base_gops = gop_count(base_span, gop_len);
        for (tile, locals) in per_tile {
            let gops: BTreeSet<u32> = locals.iter().map(|l| l / gop_len).collect();
            result.plan.tiles_planned += 1;
            result.plan.gops_planned += gops.len() as u64;
            result.plan.gops_skipped += base_gops - gops.len() as u64;
            // One decode request per contiguous run of needed GOPs; GOPs in
            // the gaps are never decoded.
            let mut run: Option<(u32, u32)> = None; // (first gop, last gop)
            let flush = |first_gop: u32, last_gop: u32, requests: &mut Vec<_>| {
                let lo = *locals
                    .range(first_gop * gop_len..)
                    .next()
                    .expect("run contains a sampled frame");
                let hi = *locals
                    .range(..(last_gop + 1) * gop_len)
                    .next_back()
                    .expect("run contains a sampled frame");
                requests.push(TileDecodeRequest {
                    sot_idx: *sot_idx,
                    tile,
                    local_span: lo..hi + 1,
                });
            };
            for &g in &gops {
                run = match run {
                    None => Some((g, g)),
                    Some((first, last)) if g == last + 1 => Some((first, g)),
                    Some((first, last)) => {
                        flush(first, last, &mut requests);
                        Some((g, g))
                    }
                };
            }
            if let Some((first, last)) = run {
                flush(first, last, &mut requests);
            }
        }
    }

    // --- Execute: same fan-out pipeline as scan --------------------------
    let t1 = Instant::now();
    let (decoded, stats, cache, shared) =
        exec::execute(store, manifest, &requests).map_err(ScanError::Store)?;
    result.exec_time = t1.elapsed();
    result.stats += stats;
    result.cache += cache;
    result.shared += shared;
    result.work.pixels += stats.samples_decoded;
    result.work.tile_chunks += stats.tile_chunks_decoded;

    // A pruned plan can hold several decode pieces per (SOT, tile), one per
    // GOP run; index them for per-frame lookup during reassembly.
    let mut by_tile: HashMap<(usize, u32), Vec<&DecodedTile>> = HashMap::new();
    for d in &decoded {
        by_tile.entry((d.sot_idx, d.tile)).or_default().push(d);
    }

    // --- Reassemble: identical composition to scan -----------------------
    for sot_idx in sot_order {
        let sot = &manifest.sots[sot_idx];
        for (&frame, rects) in regions.range(sot.start..sot.end) {
            let local_idx = frame - sot.start;
            for r in rects {
                let aligned = align_out(r, manifest.width, manifest.height);
                debug_assert!(!aligned.is_empty(), "degenerate boxes were filtered");
                let mut canvas = Frame::black(aligned.w, aligned.h);
                for t in sot.layout.tiles_intersecting(&aligned) {
                    let Some(pieces) = by_tile.get(&(sot_idx, t)) else {
                        continue;
                    };
                    let Some(tile_frame) = pieces.iter().find_map(|d| {
                        (d.local_start <= local_idx
                            && local_idx - d.local_start < d.frames.len() as u32)
                            .then(|| d.frame_at(local_idx))
                    }) else {
                        continue;
                    };
                    let trect = sot.layout.tile_rect_by_index(t);
                    blit_tile_overlap(&mut canvas, tile_frame, &trect, &aligned);
                }
                result.regions.push(RegionPixels {
                    frame,
                    rect: *r,
                    pixels: canvas,
                });
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_setters() {
        let q = Query::new(LabelPredicate::label("car"));
        assert_eq!(q.frame_range(), 0..u32::MAX);
        assert_eq!(q.stride_len(), 1);
        assert_eq!(q.limit_count(), None);
        assert_eq!(q.roi_rect(), None);
        assert_eq!(q.query_mode(), QueryMode::Pixels);

        let q = q
            .frames(10..20)
            .roi(Rect::new(0, 0, 64, 64))
            .stride(0) // clamped to 1
            .limit(3)
            .mode(QueryMode::Exists);
        assert_eq!(q.frame_range(), 10..20);
        assert_eq!(q.stride_len(), 1);
        assert_eq!(q.limit_count(), Some(3));
        assert_eq!(q.roi_rect(), Some(Rect::new(0, 0, 64, 64)));
        assert_eq!(q.query_mode(), QueryMode::Exists);
    }

    fn manifest_for_filtering() -> VideoManifest {
        // Only width/height and SOT structure matter to `filter_regions`;
        // build the smallest manifest that carries them.
        VideoManifest {
            name: "v".to_string(),
            width: 128,
            height: 96,
            frame_count: 30,
            fps: 30,
            config: crate::storage::StorageConfig {
                gop_len: 5,
                sot_frames: 10,
                ..Default::default()
            },
            sots: Vec::new(),
        }
    }

    fn boxes(entries: &[(u32, Rect)]) -> BTreeMap<u32, Vec<Rect>> {
        let mut out: BTreeMap<u32, Vec<Rect>> = BTreeMap::new();
        for (f, r) in entries {
            out.entry(*f).or_default().push(*r);
        }
        out
    }

    #[test]
    fn roi_filter_selects_whole_intersecting_boxes() {
        let m = manifest_for_filtering();
        let mut regions = boxes(&[
            (0, Rect::new(0, 0, 10, 10)),
            (0, Rect::new(60, 60, 10, 10)),
            (1, Rect::new(100, 0, 10, 10)),
        ]);
        let q = Query::new(LabelPredicate::label("car")).roi(Rect::new(0, 0, 32, 96));
        filter_regions(&mut regions, &m, &q, &(0..30));
        // Only the box overlapping the left strip survives — unclipped.
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[&0], vec![Rect::new(0, 0, 10, 10)]);
    }

    #[test]
    fn roi_filter_grid_path_matches_direct_path() {
        let m = manifest_for_filtering();
        // More than GRID_THRESHOLD boxes on one frame forces the grid path.
        let many: Vec<(u32, Rect)> = (0..24)
            .map(|i| (0u32, Rect::new((i * 5) % 120, (i * 7) % 90, 6, 6)))
            .collect();
        let roi = Rect::new(20, 10, 40, 40);
        let mut grid_path = boxes(&many);
        let q = Query::new(LabelPredicate::label("car")).roi(roi);
        filter_regions(&mut grid_path, &m, &q, &(0..30));

        let mut direct: Vec<Rect> = many.iter().map(|(_, r)| *r).collect();
        direct.retain(|r| r.intersects(&roi));
        assert_eq!(grid_path.get(&0).cloned().unwrap_or_default(), direct);
    }

    #[test]
    fn roi_beyond_frame_edge_keeps_raw_intersection_semantics() {
        let m = manifest_for_filtering(); // 128x96 frame
                                          // Enough boxes to trigger the grid fast path, plus one extending
                                          // past the right frame edge.
        let mut entries: Vec<(u32, Rect)> = (0..20)
            .map(|i| (0u32, Rect::new((i * 6) % 90, (i * 5) % 80, 4, 4)))
            .collect();
        let overhang = Rect::new(100, 0, 100, 10); // raw right edge at 200
        entries.push((0, overhang));
        let mut regions = boxes(&entries);
        // The ROI overlaps the overhanging box only beyond the frame edge;
        // raw-rectangle semantics (the post-filter reference) must match it
        // regardless of which filtering path runs.
        let roi = Rect::new(150, 0, 20, 10);
        let q = Query::new(LabelPredicate::label("car")).roi(roi);
        filter_regions(&mut regions, &m, &q, &(0..30));
        assert_eq!(regions[&0], vec![overhang]);
    }

    #[test]
    fn stride_is_anchored_at_window_start() {
        let m = manifest_for_filtering();
        let r = Rect::new(0, 0, 8, 8);
        let mut regions = boxes(&[(3, r), (4, r), (5, r), (7, r), (9, r), (11, r)]);
        let q = Query::new(LabelPredicate::label("car")).stride(4);
        filter_regions(&mut regions, &m, &q, &(3..30));
        // Sampled frames: 3, 7, 11 (anchor 3, stride 4).
        assert_eq!(regions.keys().copied().collect::<Vec<_>>(), vec![3, 7, 11]);
    }

    #[test]
    fn limit_keeps_first_k_matching_frames() {
        let m = manifest_for_filtering();
        let r = Rect::new(0, 0, 8, 8);
        let mut regions = boxes(&[(2, r), (2, r), (5, r), (9, r), (20, r)]);
        let q = Query::new(LabelPredicate::label("car")).limit(2);
        filter_regions(&mut regions, &m, &q, &(0..30));
        assert_eq!(regions.keys().copied().collect::<Vec<_>>(), vec![2, 5]);
        assert_eq!(regions[&2].len(), 2, "limit counts frames, not boxes");
    }

    #[test]
    fn degenerate_boxes_are_dropped_before_predicates() {
        let m = manifest_for_filtering();
        let mut regions = boxes(&[
            (0, Rect::new(500, 500, 10, 10)), // fully outside the frame
            (0, Rect::new(4, 4, 0, 0)),       // empty
            (1, Rect::new(0, 0, 8, 8)),
        ]);
        let q = Query::new(LabelPredicate::label("car")).limit(1);
        filter_regions(&mut regions, &m, &q, &(0..30));
        // Frame 0's boxes can never appear in scan output, so the limit
        // must not be spent on them.
        assert_eq!(regions.keys().copied().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn gop_run_grouping_counts() {
        // Pure helper check: gop_count over spans.
        assert_eq!(gop_count(&(0..10), 5), 2);
        assert_eq!(gop_count(&(4..6), 5), 2);
        assert_eq!(gop_count(&(5..6), 5), 1);
        assert_eq!(gop_count(&(3..3), 5), 0);
    }

    // End-to-end planner tests (pruning counters, bit-identity with
    // post-filtered scans, cache-state consistency) live in
    // tests/query_planner.rs and tests/concurrent_scan.rs.
}
