//! The parallel tile-decode execution pipeline.
//!
//! `Scan` and the storage layer no longer decode tiles in a serial loop.
//! Instead, decoding is split into two phases:
//!
//! 1. **Planning** — a query is reduced to independent
//!    [`TileDecodeRequest`]s, one per `(SOT, tile)` pair, each naming the
//!    local frame span that must be materialized.
//! 2. **Execution** — [`execute`] fans the requests out across scoped
//!    worker threads (tile bitstreams share nothing, so they decode
//!    independently) and reassembles results in deterministic request
//!    order. Output frames are `Arc<Frame>`, so cached and freshly decoded
//!    frames share storage with every consumer.
//!
//! Between the two sits the [`DecodedTileCache`]: a byte-budgeted LRU of
//! decoded GOP prefixes keyed by `(video, SOT, tile, GOP, layout epoch)`,
//! shared behind a mutex so concurrent scans — and repeated queries over
//! hot GOPs, the paper's Figure 8/9 workloads — reuse decode work instead
//! of repeating it. Work accounting stays calibrated for the §4.1 cost
//! model: [`DecodeStats`] counts only frames actually decoded, while cache
//! reuse is reported separately in [`CacheStats`].

use crate::storage::{StoreError, VideoManifest, VideoStore};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use tasm_codec::{DecodeStats, TileVideo};
use tasm_video::Frame;

/// One unit of decode work: a tile of one SOT over a local frame span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileDecodeRequest {
    /// SOT index within the video.
    pub sot_idx: usize,
    /// Tile raster index within the SOT's layout.
    pub tile: u32,
    /// Local frame span (relative to the SOT start) to materialize.
    pub local_span: Range<u32>,
}

/// Decoded frames for one request, in local frame order.
#[derive(Debug, Clone)]
pub struct DecodedTile {
    /// SOT index the frames belong to.
    pub sot_idx: usize,
    /// Tile raster index.
    pub tile: u32,
    /// Local index of the first frame in `frames`.
    pub local_start: u32,
    /// The materialized frames (`local_span` of the request).
    pub frames: Vec<Arc<Frame>>,
}

impl DecodedTile {
    /// The frame at local index `local_idx` (must lie within the span).
    pub fn frame_at(&self, local_idx: u32) -> &Arc<Frame> {
        &self.frames[(local_idx - self.local_start) as usize]
    }
}

/// Cache-reuse accounting, reported separately from [`DecodeStats`] so the
/// fitted `C = β·P + γ·T` cost model keeps seeing only real decode work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// GOP lookups fully served from the cache.
    pub hits: u64,
    /// GOP lookups that required decoding (including prefix extensions).
    pub misses: u64,
    /// Frames served from the cache instead of being decoded.
    pub frames_reused: u64,
    /// Samples (luma + chroma) served from the cache.
    pub samples_reused: u64,
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.frames_reused += rhs.frames_reused;
        self.samples_reused += rhs.samples_reused;
    }
}

/// Key of one cached GOP prefix.
///
/// `store` and `video` are interned `Arc<str>`s: per-GOP key construction
/// on the decode hot path only bumps refcounts. The store identity keeps
/// caches shared across differently-rooted stores
/// ([`VideoStore::open_shared`]) from serving one store's pixels for a
/// same-named video in another.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GopKey {
    store: Arc<str>,
    video: Arc<str>,
    sot_start: u32,
    tile: u32,
    /// GOP index within the SOT (local frame / GOP length).
    gop: u32,
    /// Layout epoch: the SOT's `retile_count` when the entry was cached.
    /// Retiling bumps the count, so stale layouts can never be hit.
    epoch: u32,
}

struct GopEntry {
    /// Decoded frames from the GOP's keyframe (a prefix of the GOP).
    frames: Vec<Arc<Frame>>,
    bytes: u64,
    stamp: u64,
}

struct CacheInner {
    map: HashMap<GopKey, GopEntry>,
    clock: u64,
    bytes: u64,
}

/// A shared, byte-budgeted LRU cache of decoded GOP prefixes.
///
/// Entries store the frames of a GOP from its keyframe onward. A lookup
/// needing `n` frames hits iff the entry holds at least `n`; shorter
/// prefixes are *extended* by resuming the decoder from the last cached
/// reconstruction (bit-exact, see `TileVideo::decode_resume`), paying only
/// for the missing frames.
pub struct DecodedTileCache {
    inner: Mutex<CacheInner>,
    budget: u64,
}

impl DecodedTileCache {
    /// Creates a cache bounded to roughly `budget_bytes` of decoded frames.
    pub fn new(budget_bytes: u64) -> Self {
        DecodedTileCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                clock: 0,
                bytes: 0,
            }),
            budget: budget_bytes.max(1),
        }
    }

    /// Current decoded bytes held.
    pub fn bytes_used(&self) -> u64 {
        self.inner.lock().expect("cache lock").bytes
    }

    /// Number of cached GOP entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry belonging to `video` of the store identified by
    /// `store` (called on re-ingest).
    pub fn invalidate_video(&self, store: &str, video: &str) {
        self.invalidate_where(|k| k.store.as_ref() == store && k.video.as_ref() == video);
    }

    /// Drops every entry of one SOT of `video` (called on retile).
    pub fn invalidate_sot(&self, store: &str, video: &str, sot_start: u32) {
        self.invalidate_where(|k| {
            k.store.as_ref() == store && k.video.as_ref() == video && k.sot_start == sot_start
        });
    }

    fn invalidate_where(&self, pred: impl Fn(&GopKey) -> bool) {
        let mut inner = self.inner.lock().expect("cache lock");
        let removed: u64 = inner
            .map
            .iter()
            .filter(|(k, _)| pred(k))
            .map(|(_, e)| e.bytes)
            .sum();
        inner.map.retain(|k, _| !pred(k));
        inner.bytes -= removed;
    }

    /// Returns the cached prefix for `key` (cloned `Arc`s), touching LRU
    /// recency. The prefix may be shorter than the caller needs.
    fn lookup(&self, key: &GopKey) -> Option<Vec<Arc<Frame>>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.map.get_mut(key)?;
        entry.stamp = clock;
        Some(entry.frames.clone())
    }

    /// Stores (or extends) the prefix for `key`, evicting least-recently
    /// used entries if the byte budget is exceeded.
    fn store(&self, key: GopKey, frames: Vec<Arc<Frame>>) {
        let bytes = frames.iter().map(|f| frame_bytes(f)).sum::<u64>() + 64;
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some((old_len, old_bytes)) = inner.map.get(&key).map(|e| (e.frames.len(), e.bytes)) {
            if old_len >= frames.len() {
                return; // existing entry is as good or better
            }
            inner.bytes -= old_bytes;
        }
        inner.bytes += bytes;
        inner.map.insert(
            key,
            GopEntry {
                frames,
                bytes,
                stamp,
            },
        );
        while inner.bytes > self.budget && inner.map.len() > 1 {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty map");
            if let Some(e) = inner.map.remove(&victim) {
                inner.bytes -= e.bytes;
            }
        }
    }
}

fn frame_bytes(f: &Frame) -> u64 {
    let luma = f.width() as u64 * f.height() as u64;
    luma + luma / 2
}

/// Executes decode requests against `store`/`manifest`, fanning out across
/// the store's configured workers and consulting its decoded-tile cache.
///
/// Results are returned in request order with deterministic, worker-count-
/// independent accounting: both pixels and stats are bit-identical whether
/// the plan runs on one thread or many.
pub fn execute(
    store: &VideoStore,
    manifest: &VideoManifest,
    requests: &[TileDecodeRequest],
) -> Result<(Vec<DecodedTile>, DecodeStats, CacheStats), StoreError> {
    let workers = store.effective_workers().min(requests.len().max(1));
    let mut outputs: Vec<TaskOutput> = Vec::with_capacity(requests.len());
    if workers <= 1 || requests.len() <= 1 {
        for req in requests {
            outputs.push(run_request(store, manifest, req)?);
        }
    } else {
        let slots: Vec<OnceLock<Result<TaskOutput, StoreError>>> =
            (0..requests.len()).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests.len() {
                        break;
                    }
                    let out = run_request(store, manifest, &requests[i]);
                    slots[i].set(out).ok().expect("each slot is written once");
                });
            }
        });
        for slot in slots {
            outputs.push(slot.into_inner().expect("all slots filled")?);
        }
    }

    let mut decode = DecodeStats::default();
    let mut cache = CacheStats::default();
    let mut tiles = Vec::with_capacity(outputs.len());
    for out in outputs {
        decode += out.stats;
        cache += out.cache;
        tiles.push(out.tile);
    }
    Ok((tiles, decode, cache))
}

struct TaskOutput {
    tile: DecodedTile,
    stats: DecodeStats,
    cache: CacheStats,
}

/// Decodes one request, GOP by GOP, through the cache when one is attached.
///
/// Work parity: for a cold cache this decodes exactly the frames the old
/// serial path did — from the keyframe preceding the span to its end, with
/// the trailing GOP truncated at the span end — so `DecodeStats` stays
/// comparable across the refactor and across worker counts.
fn run_request(
    store: &VideoStore,
    manifest: &VideoManifest,
    req: &TileDecodeRequest,
) -> Result<TaskOutput, StoreError> {
    let sot = manifest
        .sots
        .get(req.sot_idx)
        .ok_or_else(|| StoreError::NotFound(format!("SOT {}", req.sot_idx)))?;
    let gop_len = manifest.config.gop_len;
    let span = req.local_span.clone();
    assert!(span.start < span.end, "empty decode span");
    assert!(span.end <= sot.len(), "span exceeds SOT");

    let cache = store.decoded_cache();
    // Interned once per request; per-GOP keys below only bump refcounts.
    let store_id: Arc<str> = store.store_id();
    let video_name: Arc<str> = Arc::from(manifest.name.as_str());
    let mut stats = DecodeStats::default();
    let mut cache_stats = CacheStats::default();
    let mut frames: Vec<Arc<Frame>> = Vec::with_capacity(span.len());
    // The tile file is read lazily: a fully cached span never touches disk.
    let mut tile_video: Option<TileVideo> = None;

    let first_gop = span.start / gop_len;
    let last_gop = (span.end - 1) / gop_len;
    for gop in first_gop..=last_gop {
        let gop_start = gop * gop_len;
        // Decode to the span end in the last GOP, else the whole GOP —
        // matching the warm-up the GOP structure forces on a cold decode.
        let needed_end = span.end.min(gop_start + gop_len).min(sot.len());
        let needed = needed_end - gop_start;

        let key = cache.as_ref().map(|_| GopKey {
            store: store_id.clone(),
            video: video_name.clone(),
            sot_start: sot.start,
            tile: req.tile,
            gop,
            epoch: sot.retile_count,
        });
        let mut prefix: Vec<Arc<Frame>> = match (&cache, &key) {
            (Some(c), Some(k)) => c.lookup(k).unwrap_or_default(),
            _ => Vec::new(),
        };

        if prefix.len() >= needed as usize {
            cache_stats.hits += 1;
            cache_stats.frames_reused += needed as u64;
            cache_stats.samples_reused +=
                needed as u64 * prefix.first().map(|f| frame_bytes(f)).unwrap_or(0);
        } else {
            // A "miss" only exists where a cache exists: uncached stores
            // report all-zero CacheStats, not a phantom 0% hit rate.
            if cache.is_some() {
                cache_stats.misses += 1;
            }
            let have = prefix.len() as u32;
            if have > 0 {
                cache_stats.frames_reused += have as u64;
                cache_stats.samples_reused +=
                    have as u64 * prefix.first().map(|f| frame_bytes(f)).unwrap_or(0);
            }
            let tv = match &tile_video {
                Some(tv) => tv,
                None => {
                    tile_video = Some(store.read_tile(manifest, req.sot_idx, req.tile)?);
                    tile_video.as_ref().expect("just set")
                }
            };
            let reference = prefix.last().map(|f| f.as_ref());
            let (decoded, s) = tv.decode_resume(gop_start + have, needed_end, reference)?;
            stats += s;
            prefix.extend(decoded.into_iter().map(Arc::new));
            if let (Some(c), Some(k)) = (&cache, key) {
                c.store(k, prefix.clone());
            }
        }

        // Keep the frames inside the requested span.
        let keep_from = span.start.max(gop_start) - gop_start;
        frames.extend(prefix[keep_from as usize..needed as usize].iter().cloned());
    }

    Ok(TaskOutput {
        tile: DecodedTile {
            sot_idx: req.sot_idx,
            tile: req.tile,
            local_start: span.start,
            frames,
        },
        stats,
        cache: cache_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_frame(tag: u8) -> Arc<Frame> {
        Arc::new(Frame::filled(16, 16, tag, 128, 128))
    }

    fn key(tile: u32, gop: u32) -> GopKey {
        GopKey {
            store: Arc::from("/store-a"),
            video: Arc::from("v"),
            sot_start: 0,
            tile,
            gop,
            epoch: 0,
        }
    }

    #[test]
    fn cache_prefix_semantics() {
        let c = DecodedTileCache::new(1 << 20);
        assert!(c.is_empty());
        c.store(key(0, 0), vec![dummy_frame(1), dummy_frame(2)]);
        assert_eq!(c.lookup(&key(0, 0)).unwrap().len(), 2);
        // A shorter prefix never replaces a longer one.
        c.store(key(0, 0), vec![dummy_frame(1)]);
        assert_eq!(c.lookup(&key(0, 0)).unwrap().len(), 2);
        // A longer prefix does.
        c.store(
            key(0, 0),
            vec![dummy_frame(1), dummy_frame(2), dummy_frame(3)],
        );
        assert_eq!(c.lookup(&key(0, 0)).unwrap().len(), 3);
        assert!(c.lookup(&key(1, 0)).is_none());
    }

    #[test]
    fn cache_evicts_lru_under_budget() {
        // Each 16x16 frame is 384 bytes + 64 overhead per entry.
        let c = DecodedTileCache::new(1000);
        c.store(key(0, 0), vec![dummy_frame(1)]);
        c.store(key(1, 0), vec![dummy_frame(2)]);
        // Touch tile 0 so tile 1 is the LRU victim.
        assert!(c.lookup(&key(0, 0)).is_some());
        c.store(key(2, 0), vec![dummy_frame(3)]);
        assert!(c.bytes_used() <= 1000);
        assert!(
            c.lookup(&key(0, 0)).is_some(),
            "recently used entry survives"
        );
        assert!(c.lookup(&key(1, 0)).is_none(), "LRU entry evicted");
    }

    #[test]
    fn cache_invalidation_by_video_and_sot() {
        let c = DecodedTileCache::new(1 << 20);
        c.store(key(0, 0), vec![dummy_frame(1)]);
        let other = GopKey {
            store: Arc::from("/store-b"),
            video: Arc::from("w"),
            sot_start: 30,
            tile: 0,
            gop: 0,
            epoch: 0,
        };
        c.store(other.clone(), vec![dummy_frame(2)]);
        c.invalidate_sot("/store-a", "v", 0);
        assert!(c.lookup(&key(0, 0)).is_none());
        assert!(c.lookup(&other).is_some());
        c.invalidate_video("/store-b", "w");
        assert!(c.is_empty());
        assert_eq!(c.bytes_used(), 0);
    }
}
