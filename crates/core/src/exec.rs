//! The parallel tile-decode execution pipeline.
//!
//! `Scan` and the storage layer no longer decode tiles in a serial loop.
//! Instead, decoding is split into two phases:
//!
//! 1. **Planning** — a query is reduced to independent
//!    [`TileDecodeRequest`]s, one per `(SOT, tile)` pair, each naming the
//!    local frame span that must be materialized.
//! 2. **Execution** — [`execute`] fans the requests out across scoped
//!    worker threads (tile bitstreams share nothing, so they decode
//!    independently) and reassembles results in deterministic request
//!    order. Output frames are `Arc<Frame>`, so cached and freshly decoded
//!    frames share storage with every consumer.
//!
//! Between the two sits the [`DecodedTileCache`]: a byte-budgeted LRU of
//! decoded GOP prefixes keyed by `(video, SOT, tile, GOP, layout epoch)`,
//! shared behind a mutex so concurrent scans — and repeated queries over
//! hot GOPs, the paper's Figure 8/9 workloads — reuse decode work instead
//! of repeating it. Work accounting stays calibrated for the §4.1 cost
//! model: [`DecodeStats`] counts only frames actually decoded, while cache
//! reuse is reported separately in [`CacheStats`].

use crate::storage::{StoreError, VideoManifest, VideoStore};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use tasm_codec::{DecodeStats, TileVideo};
use tasm_video::Frame;

/// One unit of decode work: a tile of one SOT over a local frame span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileDecodeRequest {
    /// SOT index within the video.
    pub sot_idx: usize,
    /// Tile raster index within the SOT's layout.
    pub tile: u32,
    /// Local frame span (relative to the SOT start) to materialize.
    pub local_span: Range<u32>,
}

/// Decoded frames for one request, in local frame order.
#[derive(Debug, Clone)]
pub struct DecodedTile {
    /// SOT index the frames belong to.
    pub sot_idx: usize,
    /// Tile raster index.
    pub tile: u32,
    /// Local index of the first frame in `frames`.
    pub local_start: u32,
    /// The materialized frames (`local_span` of the request).
    pub frames: Vec<Arc<Frame>>,
}

impl DecodedTile {
    /// The frame at local index `local_idx` (must lie within the span).
    pub fn frame_at(&self, local_idx: u32) -> &Arc<Frame> {
        &self.frames[(local_idx - self.local_start) as usize]
    }
}

/// Cache-reuse accounting, reported separately from [`DecodeStats`] so the
/// fitted `C = β·P + γ·T` cost model keeps seeing only real decode work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// GOP lookups fully served from the cache.
    pub hits: u64,
    /// GOP lookups that required decoding (including prefix extensions).
    pub misses: u64,
    /// Frames served from the cache instead of being decoded.
    pub frames_reused: u64,
    /// Samples (luma + chroma) served from the cache.
    pub samples_reused: u64,
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.frames_reused += rhs.frames_reused;
        self.samples_reused += rhs.samples_reused;
    }
}

/// Planner accounting: how much decode work the query planner scheduled and
/// how much it *avoided* relative to the label-only baseline plan.
///
/// The baseline is what [`mod@crate::scan`] would decode for the same label
/// predicate: every tile overlapping any labeled box, over each SOT's full
/// matched-frame span. The spatiotemporal planner ([`crate::query`]) prunes
/// that plan — tiles whose boxes miss the ROI, GOPs outside the sampling
/// stride, GOPs past a satisfied `limit` — and records what it cut here.
///
/// All counters are computed at *plan time* from the semantic index alone:
/// they cost no decode work, and they are byte-for-byte identical whether
/// the planned GOPs are later decoded, served from the decoded-GOP cache,
/// or joined from another query's in-flight decode. Execution-side reuse is
/// accounted separately in [`CacheStats`] and [`SharedScanStats`], so
/// nothing is ever double-counted between planning and execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// `(SOT, tile)` units the plan decodes.
    pub tiles_planned: u64,
    /// `(SOT, tile)` units the baseline would decode that the plan never
    /// touches (pruned by the ROI, the stride/limit, or an aggregate mode
    /// that skips pixel materialization entirely).
    pub tiles_pruned: u64,
    /// GOP decode units the plan schedules across all planned tiles.
    pub gops_planned: u64,
    /// GOP decode units skipped *within* planned tiles (temporal pruning:
    /// stride gaps and frames past a satisfied `limit`).
    pub gops_skipped: u64,
    /// Distinct matched frames surviving the temporal predicates — the
    /// frames the query actually samples.
    pub frames_sampled: u64,
}

impl std::ops::AddAssign for PlanStats {
    fn add_assign(&mut self, rhs: PlanStats) {
        self.tiles_planned += rhs.tiles_planned;
        self.tiles_pruned += rhs.tiles_pruned;
        self.gops_planned += rhs.gops_planned;
        self.gops_skipped += rhs.gops_skipped;
        self.frames_sampled += rhs.frames_sampled;
    }
}

/// Shared-scan (single-flight) dedup accounting.
///
/// When two concurrent queries need the same `(video, SOT, tile, GOP)`
/// decode, only one performs it — the *owner* — while the others *join* the
/// in-flight decode and are served its result through the cache. `owned`
/// counts GOP decodes a request performed itself; `joined` counts GOP needs
/// a request satisfied by waiting on another query's in-flight decode.
/// Joined work never appears in [`DecodeStats`], so the §4.1 cost model
/// keeps seeing only real decode effort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedScanStats {
    /// GOP decodes this side performed itself (with or without waiters).
    pub owned: u64,
    /// GOP needs served by joining another query's in-flight decode.
    pub joined: u64,
}

impl SharedScanStats {
    /// Fraction of GOP needs served by joining another query's decode.
    pub fn join_rate(&self) -> f64 {
        let total = self.owned + self.joined;
        if total == 0 {
            0.0
        } else {
            self.joined as f64 / total as f64
        }
    }
}

impl std::ops::AddAssign for SharedScanStats {
    fn add_assign(&mut self, rhs: SharedScanStats) {
        self.owned += rhs.owned;
        self.joined += rhs.joined;
    }
}

/// Key of one cached GOP prefix.
///
/// `store` and `video` are interned `Arc<str>`s: per-GOP key construction
/// on the decode hot path only bumps refcounts. The store identity keeps
/// caches shared across differently-rooted stores
/// ([`VideoStore::open_shared`]) from serving one store's pixels for a
/// same-named video in another.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GopKey {
    store: Arc<str>,
    video: Arc<str>,
    sot_start: u32,
    tile: u32,
    /// GOP index within the SOT (local frame / GOP length).
    gop: u32,
    /// Layout epoch: the SOT's `retile_count` when the entry was cached.
    /// Retiling bumps the count, so stale layouts can never be hit.
    epoch: u32,
}

struct GopEntry {
    /// Decoded frames from the GOP's keyframe (a prefix of the GOP).
    frames: Vec<Arc<Frame>>,
    bytes: u64,
    stamp: u64,
}

/// An in-progress decode of one GOP: waiters block on the condvar until the
/// owner completes (or abandons) the decode, then re-check the cache.
#[derive(Default)]
struct InflightDecode {
    done: Mutex<bool>,
    cv: Condvar,
}

impl InflightDecode {
    fn finish(&self) {
        *self.done.lock().expect("inflight lock") = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect("inflight lock");
        while !*done {
            done = self.cv.wait(done).expect("inflight lock");
        }
    }
}

struct CacheInner {
    map: HashMap<GopKey, GopEntry>,
    /// Single-flight registry: GOPs currently being decoded by some query.
    inflight: HashMap<GopKey, Arc<InflightDecode>>,
    clock: u64,
    bytes: u64,
}

/// A shared, byte-budgeted LRU cache of decoded GOP prefixes.
///
/// Entries store the frames of a GOP from its keyframe onward. A lookup
/// needing `n` frames hits iff the entry holds at least `n`; shorter
/// prefixes are *extended* by resuming the decoder from the last cached
/// reconstruction (bit-exact, see `TileVideo::decode_resume`), paying only
/// for the missing frames.
///
/// Entries additionally have an *in-progress* state: while one query
/// decodes a GOP, concurrent queries needing the same GOP block on it and
/// join its result instead of decoding it again (single-flight shared-scan
/// dedup, accounted in [`SharedScanStats`]).
pub struct DecodedTileCache {
    inner: Mutex<CacheInner>,
    budget: u64,
}

impl DecodedTileCache {
    /// Creates a cache bounded to roughly `budget_bytes` of decoded frames.
    pub fn new(budget_bytes: u64) -> Self {
        DecodedTileCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                inflight: HashMap::new(),
                clock: 0,
                bytes: 0,
            }),
            budget: budget_bytes.max(1),
        }
    }

    /// Current decoded bytes held.
    pub fn bytes_used(&self) -> u64 {
        self.inner.lock().expect("cache lock").bytes
    }

    /// Number of cached GOP entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry belonging to `video` of the store identified by
    /// `store` (called on re-ingest).
    pub fn invalidate_video(&self, store: &str, video: &str) {
        self.invalidate_where(|k| k.store.as_ref() == store && k.video.as_ref() == video);
    }

    /// Drops every entry of one SOT of `video` (called on retile).
    pub fn invalidate_sot(&self, store: &str, video: &str, sot_start: u32) {
        self.invalidate_where(|k| {
            k.store.as_ref() == store && k.video.as_ref() == video && k.sot_start == sot_start
        });
    }

    /// Drops the entries of exactly one layout `epoch` of one SOT — the
    /// eager reclaim run when that epoch's tile directory is GC'd, so a
    /// retired epoch's decoded GOPs release their budget immediately
    /// instead of lingering until LRU pressure. Other epochs' entries
    /// (the live layout, other pinned epochs) are untouched.
    pub fn invalidate_sot_epoch(&self, store: &str, video: &str, sot_start: u32, epoch: u32) {
        self.invalidate_where(|k| {
            k.store.as_ref() == store
                && k.video.as_ref() == video
                && k.sot_start == sot_start
                && k.epoch == epoch
        });
    }

    fn invalidate_where(&self, pred: impl Fn(&GopKey) -> bool) {
        let mut inner = self.inner.lock().expect("cache lock");
        let removed: u64 = inner
            .map
            .iter()
            .filter(|(k, _)| pred(k))
            .map(|(_, e)| e.bytes)
            .sum();
        inner.map.retain(|k, _| !pred(k));
        inner.bytes -= removed;
    }

    /// Returns the cached prefix for `key` (cloned `Arc`s), touching LRU
    /// recency. The prefix may be shorter than the caller needs. The
    /// execution path goes through [`DecodedTileCache::acquire`] instead,
    /// which layers single-flight dedup on top of this lookup.
    #[cfg(test)]
    fn lookup(&self, key: &GopKey) -> Option<Vec<Arc<Frame>>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.map.get_mut(key)?;
        entry.stamp = clock;
        Some(entry.frames.clone())
    }

    /// Stores (or extends) the prefix for `key`, evicting least-recently
    /// used entries if the byte budget is exceeded.
    fn store(&self, key: GopKey, frames: Vec<Arc<Frame>>) {
        let bytes = frames.iter().map(|f| frame_bytes(f)).sum::<u64>() + 64;
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some((old_len, old_bytes)) = inner.map.get(&key).map(|e| (e.frames.len(), e.bytes)) {
            if old_len >= frames.len() {
                return; // existing entry is as good or better
            }
            inner.bytes -= old_bytes;
        }
        inner.bytes += bytes;
        inner.map.insert(
            key,
            GopEntry {
                frames,
                bytes,
                stamp,
            },
        );
        while inner.bytes > self.budget && inner.map.len() > 1 {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty map");
            if let Some(e) = inner.map.remove(&victim) {
                inner.bytes -= e.bytes;
            }
        }
    }

    /// Single-flight access to one GOP: either the cache already holds a
    /// prefix of at least `needed` frames ([`GopAccess::Ready`]), or the
    /// caller becomes the *owner* of the decode and must finish it through
    /// the returned [`InflightToken`]. When another query is already
    /// decoding this GOP, the call blocks until that decode settles, sets
    /// `*waited`, and re-checks — so concurrent queries needing the same
    /// GOP pay for exactly one decode between them.
    fn acquire(&self, key: &GopKey, needed: usize, waited: &mut bool) -> GopAccess<'_> {
        loop {
            let inflight = {
                let mut inner = self.inner.lock().expect("cache lock");
                inner.clock += 1;
                let clock = inner.clock;
                if let Some(entry) = inner.map.get_mut(key) {
                    entry.stamp = clock;
                    if entry.frames.len() >= needed {
                        return GopAccess::Ready(entry.frames.clone());
                    }
                }
                match inner.inflight.get(key) {
                    Some(fl) => fl.clone(),
                    None => {
                        let fl = Arc::new(InflightDecode::default());
                        inner.inflight.insert(key.clone(), fl.clone());
                        let prefix = inner
                            .map
                            .get(key)
                            .map(|e| e.frames.clone())
                            .unwrap_or_default();
                        return GopAccess::Owner(
                            InflightToken {
                                cache: self,
                                key: key.clone(),
                                fl,
                                settled: false,
                            },
                            prefix,
                        );
                    }
                }
            };
            // Wait outside the cache lock, then re-check: the owner may
            // have decoded fewer frames than we need (we would then become
            // the owner of the extension), or the entry may have been
            // evicted already (ditto).
            *waited = true;
            inflight.wait();
        }
    }
}

/// Outcome of [`DecodedTileCache::acquire`].
enum GopAccess<'a> {
    /// The cache holds at least the needed prefix.
    Ready(Vec<Arc<Frame>>),
    /// The caller owns the decode; the payload is the (possibly empty)
    /// cached prefix to extend. The token must be completed (or dropped,
    /// which wakes waiters without publishing frames).
    Owner(InflightToken<'a>, Vec<Arc<Frame>>),
}

/// Registration of an in-progress GOP decode. Completing publishes the
/// frames and wakes waiters; dropping without completing (decode error,
/// panic) wakes waiters without publishing — one of them then takes over.
struct InflightToken<'a> {
    cache: &'a DecodedTileCache,
    key: GopKey,
    fl: Arc<InflightDecode>,
    settled: bool,
}

impl InflightToken<'_> {
    fn complete(mut self, frames: Vec<Arc<Frame>>) {
        self.cache.store(self.key.clone(), frames);
        self.settle();
    }

    fn settle(&mut self) {
        if !self.settled {
            self.settled = true;
            let mut inner = self.cache.inner.lock().expect("cache lock");
            inner.inflight.remove(&self.key);
            drop(inner);
            self.fl.finish();
        }
    }
}

impl Drop for InflightToken<'_> {
    fn drop(&mut self) {
        self.settle();
    }
}

fn frame_bytes(f: &Frame) -> u64 {
    let luma = f.width() as u64 * f.height() as u64;
    luma + luma / 2
}

/// Executes decode requests against `store`/`manifest`, fanning out across
/// the store's configured workers and consulting its decoded-tile cache.
///
/// Results are returned in request order with deterministic, worker-count-
/// independent accounting: both pixels and stats are bit-identical whether
/// the plan runs on one thread or many.
pub fn execute(
    store: &VideoStore,
    manifest: &VideoManifest,
    requests: &[TileDecodeRequest],
) -> Result<(Vec<DecodedTile>, DecodeStats, CacheStats, SharedScanStats), StoreError> {
    let workers = store.effective_workers().min(requests.len().max(1));
    let mut outputs: Vec<TaskOutput> = Vec::with_capacity(requests.len());
    if workers <= 1 || requests.len() <= 1 {
        for req in requests {
            outputs.push(run_request(store, manifest, req)?);
        }
    } else {
        let slots: Vec<OnceLock<Result<TaskOutput, StoreError>>> =
            (0..requests.len()).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests.len() {
                        break;
                    }
                    let out = run_request(store, manifest, &requests[i]);
                    slots[i].set(out).ok().expect("each slot is written once");
                });
            }
        });
        for slot in slots {
            outputs.push(slot.into_inner().expect("all slots filled")?);
        }
    }

    let mut decode = DecodeStats::default();
    let mut cache = CacheStats::default();
    let mut shared = SharedScanStats::default();
    let mut tiles = Vec::with_capacity(outputs.len());
    for out in outputs {
        decode += out.stats;
        cache += out.cache;
        shared += out.shared;
        tiles.push(out.tile);
    }
    if tasm_obs::enabled() {
        tasm_obs::counter(
            "tasm_decoded_bytes_total",
            "Compressed tile bytes read and decoded (cache reuse excluded).",
        )
        .add(decode.bytes_read);
        tasm_obs::counter(
            "tasm_decoded_samples_total",
            "Pixel samples decoded (cache reuse excluded).",
        )
        .add(decode.samples_decoded);
        tasm_obs::counter(
            "tasm_cache_hit_bytes_total",
            "Pixel samples served from the decoded-GOP cache instead of being decoded.",
        )
        .add(cache.samples_reused);
    }
    Ok((tiles, decode, cache, shared))
}

struct TaskOutput {
    tile: DecodedTile,
    stats: DecodeStats,
    cache: CacheStats,
    shared: SharedScanStats,
}

/// Decodes one request, GOP by GOP, through the cache when one is attached.
///
/// Work parity: for a cold cache this decodes exactly the frames the old
/// serial path did — from the keyframe preceding the span to its end, with
/// the trailing GOP truncated at the span end — so `DecodeStats` stays
/// comparable across the refactor and across worker counts.
fn run_request(
    store: &VideoStore,
    manifest: &VideoManifest,
    req: &TileDecodeRequest,
) -> Result<TaskOutput, StoreError> {
    let sot = manifest
        .sots
        .get(req.sot_idx)
        .ok_or_else(|| StoreError::NotFound(format!("SOT {}", req.sot_idx)))?;
    let gop_len = manifest.config.gop_len;
    let span = req.local_span.clone();
    assert!(span.start < span.end, "empty decode span");
    assert!(span.end <= sot.len(), "span exceeds SOT");

    let cache = store.decoded_cache();
    // Interned once per request; per-GOP keys below only bump refcounts.
    let store_id: Arc<str> = store.store_id();
    let video_name: Arc<str> = Arc::from(manifest.name.as_str());
    let mut stats = DecodeStats::default();
    let mut cache_stats = CacheStats::default();
    let mut shared = SharedScanStats::default();
    let mut frames: Vec<Arc<Frame>> = Vec::with_capacity(span.len());
    // The tile file is read lazily: a fully cached span never touches disk.
    let mut tile_video: Option<TileVideo> = None;

    let first_gop = span.start / gop_len;
    let last_gop = (span.end - 1) / gop_len;
    for gop in first_gop..=last_gop {
        let gop_start = gop * gop_len;
        // Decode to the span end in the last GOP, else the whole GOP —
        // matching the warm-up the GOP structure forces on a cold decode.
        let needed_end = span.end.min(gop_start + gop_len).min(sot.len());
        let needed = needed_end - gop_start;

        let key = cache.as_ref().map(|_| GopKey {
            store: store_id.clone(),
            video: video_name.clone(),
            sot_start: sot.start,
            tile: req.tile,
            gop,
            epoch: sot.retile_count,
        });
        // Single-flight access: either the GOP is served from the cache
        // (possibly after joining another query's in-flight decode of it),
        // or this request owns the decode and publishes the result.
        let mut waited = false;
        let (mut prefix, token) = match (&cache, &key) {
            (Some(c), Some(k)) => match c.acquire(k, needed as usize, &mut waited) {
                GopAccess::Ready(cached) => (cached, None),
                GopAccess::Owner(t, existing) => (existing, Some(t)),
            },
            _ => (Vec::new(), None),
        };

        if token.is_none() && cache.is_some() {
            cache_stats.hits += 1;
            cache_stats.frames_reused += needed as u64;
            cache_stats.samples_reused +=
                needed as u64 * prefix.first().map(|f| frame_bytes(f)).unwrap_or(0);
            if waited {
                shared.joined += 1;
            }
        } else {
            // A "miss" only exists where a cache exists: uncached stores
            // report all-zero CacheStats, not a phantom 0% hit rate.
            if cache.is_some() {
                cache_stats.misses += 1;
            }
            let have = prefix.len() as u32;
            if have > 0 {
                cache_stats.frames_reused += have as u64;
                cache_stats.samples_reused +=
                    have as u64 * prefix.first().map(|f| frame_bytes(f)).unwrap_or(0);
            }
            let tv = match &tile_video {
                Some(tv) => tv,
                None => {
                    tile_video = Some(store.read_tile(manifest, req.sot_idx, req.tile)?);
                    tile_video.as_ref().expect("just set")
                }
            };
            let reference = prefix.last().map(|f| f.as_ref());
            // On error the token drops unsettled, waking any waiters so one
            // of them can take over the decode.
            let (decoded, s) = tv.decode_resume(gop_start + have, needed_end, reference)?;
            stats += s;
            shared.owned += 1;
            prefix.extend(decoded.into_iter().map(Arc::new));
            if let Some(t) = token {
                t.complete(prefix.clone());
            }
        }

        // Keep the frames inside the requested span.
        let keep_from = span.start.max(gop_start) - gop_start;
        frames.extend(prefix[keep_from as usize..needed as usize].iter().cloned());
    }

    Ok(TaskOutput {
        tile: DecodedTile {
            sot_idx: req.sot_idx,
            tile: req.tile,
            local_start: span.start,
            frames,
        },
        stats,
        cache: cache_stats,
        shared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_frame(tag: u8) -> Arc<Frame> {
        Arc::new(Frame::filled(16, 16, tag, 128, 128))
    }

    fn key(tile: u32, gop: u32) -> GopKey {
        GopKey {
            store: Arc::from("/store-a"),
            video: Arc::from("v"),
            sot_start: 0,
            tile,
            gop,
            epoch: 0,
        }
    }

    #[test]
    fn cache_prefix_semantics() {
        let c = DecodedTileCache::new(1 << 20);
        assert!(c.is_empty());
        c.store(key(0, 0), vec![dummy_frame(1), dummy_frame(2)]);
        assert_eq!(c.lookup(&key(0, 0)).unwrap().len(), 2);
        // A shorter prefix never replaces a longer one.
        c.store(key(0, 0), vec![dummy_frame(1)]);
        assert_eq!(c.lookup(&key(0, 0)).unwrap().len(), 2);
        // A longer prefix does.
        c.store(
            key(0, 0),
            vec![dummy_frame(1), dummy_frame(2), dummy_frame(3)],
        );
        assert_eq!(c.lookup(&key(0, 0)).unwrap().len(), 3);
        assert!(c.lookup(&key(1, 0)).is_none());
    }

    #[test]
    fn cache_accounts_decompressed_bytes_not_disk_bytes() {
        // A flat tile entropy-codes to a few dozen bytes on disk, but the
        // decoded frames it expands to are full planar YUV. The budget must
        // account the latter: charging on-disk size would let a 1 MiB
        // budget hold gigabytes of decoded pixels.
        use tasm_codec::{encode_video, CodecChoice, EncoderConfig, TileLayout};
        use tasm_video::VecFrameSource;
        let src = VecFrameSource::new(vec![Frame::filled(64, 64, 120, 128, 128); 4]);
        let cfg = EncoderConfig {
            codec: CodecChoice::Pred,
            ..Default::default()
        };
        let (videos, _) = encode_video(&src, &TileLayout::untiled(64, 64), &cfg, false).unwrap();
        let disk_bytes = videos[0].size_bytes();
        let (frames, _) = videos[0].decode_all().unwrap();
        let decoded_bytes: u64 = frames.iter().map(frame_bytes).sum();
        assert!(
            disk_bytes < decoded_bytes / 4,
            "test premise: compressed tile ({disk_bytes} B) must be far \
             smaller than decoded frames ({decoded_bytes} B)"
        );
        let c = DecodedTileCache::new(1 << 20);
        c.store(key(0, 0), frames.into_iter().map(Arc::new).collect());
        assert_eq!(
            c.bytes_used(),
            decoded_bytes + 64,
            "cache must charge decompressed frame bytes plus fixed overhead"
        );
    }

    #[test]
    fn cache_evicts_lru_under_budget() {
        // Each 16x16 frame is 384 bytes + 64 overhead per entry.
        let c = DecodedTileCache::new(1000);
        c.store(key(0, 0), vec![dummy_frame(1)]);
        c.store(key(1, 0), vec![dummy_frame(2)]);
        // Touch tile 0 so tile 1 is the LRU victim.
        assert!(c.lookup(&key(0, 0)).is_some());
        c.store(key(2, 0), vec![dummy_frame(3)]);
        assert!(c.bytes_used() <= 1000);
        assert!(
            c.lookup(&key(0, 0)).is_some(),
            "recently used entry survives"
        );
        assert!(c.lookup(&key(1, 0)).is_none(), "LRU entry evicted");
    }

    #[test]
    fn single_flight_joiner_waits_for_owner() {
        let c = Arc::new(DecodedTileCache::new(1 << 20));
        // Owner registers the in-flight decode.
        let mut waited = false;
        let access = c.acquire(&key(0, 0), 2, &mut waited);
        let token = match access {
            GopAccess::Owner(t, prefix) => {
                assert!(prefix.is_empty());
                assert!(!waited);
                t
            }
            GopAccess::Ready(_) => panic!("empty cache cannot be ready"),
        };

        // Joiner on another thread blocks until the owner completes.
        let c2 = Arc::clone(&c);
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let joiner = std::thread::spawn(move || {
            started_tx.send(()).unwrap();
            let mut waited = false;
            match c2.acquire(&key(0, 0), 2, &mut waited) {
                GopAccess::Ready(frames) => {
                    assert_eq!(frames.len(), 2);
                    waited
                }
                GopAccess::Owner(..) => panic!("joiner must not own a completed decode"),
            }
        });
        started_rx.recv().unwrap();
        // Give the joiner time to reach the wait before publishing.
        std::thread::sleep(std::time::Duration::from_millis(20));
        token.complete(vec![dummy_frame(1), dummy_frame(2)]);
        assert!(joiner.join().unwrap(), "joiner must report having waited");
    }

    #[test]
    fn abandoned_owner_wakes_waiters_who_take_over() {
        let c = Arc::new(DecodedTileCache::new(1 << 20));
        let mut waited = false;
        let token = match c.acquire(&key(0, 0), 1, &mut waited) {
            GopAccess::Owner(t, _) => t,
            GopAccess::Ready(_) => unreachable!(),
        };
        let c2 = Arc::clone(&c);
        let waiter = std::thread::spawn(move || {
            let mut waited = false;
            match c2.acquire(&key(0, 0), 1, &mut waited) {
                // The abandoned decode published nothing: the waiter
                // becomes the new owner.
                GopAccess::Owner(t, prefix) => {
                    assert!(prefix.is_empty());
                    t.complete(vec![dummy_frame(7)]);
                    waited
                }
                GopAccess::Ready(_) => panic!("nothing was published"),
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(token); // abandon without completing
        assert!(waiter.join().unwrap());
        assert_eq!(c.lookup(&key(0, 0)).unwrap().len(), 1);
    }

    #[test]
    fn cache_invalidation_by_video_and_sot() {
        let c = DecodedTileCache::new(1 << 20);
        c.store(key(0, 0), vec![dummy_frame(1)]);
        let other = GopKey {
            store: Arc::from("/store-b"),
            video: Arc::from("w"),
            sot_start: 30,
            tile: 0,
            gop: 0,
            epoch: 0,
        };
        c.store(other.clone(), vec![dummy_frame(2)]);
        c.invalidate_sot("/store-a", "v", 0);
        assert!(c.lookup(&key(0, 0)).is_none());
        assert!(c.lookup(&other).is_some());
        c.invalidate_video("/store-b", "w");
        assert!(c.is_empty());
        assert_eq!(c.bytes_used(), 0);
    }

    /// Epoch GC must reclaim a retired epoch's decoded-GOP entries — and
    /// their byte accounting — eagerly, not leave them to age out under
    /// LRU pressure. Entries of other epochs, tiles, and SOTs survive.
    #[test]
    fn cache_invalidation_by_epoch_reclaims_bytes_eagerly() {
        let epoch_key = |epoch: u32, tile: u32| GopKey {
            store: Arc::from("/store-a"),
            video: Arc::from("v"),
            sot_start: 0,
            tile,
            gop: 0,
            epoch,
        };
        let c = DecodedTileCache::new(1 << 20);
        c.store(epoch_key(0, 0), vec![dummy_frame(1)]);
        c.store(epoch_key(0, 1), vec![dummy_frame(2)]);
        c.store(epoch_key(1, 0), vec![dummy_frame(3)]);
        let other_sot = GopKey {
            sot_start: 30,
            ..epoch_key(0, 0)
        };
        c.store(other_sot.clone(), vec![dummy_frame(4)]);
        let all_bytes = c.bytes_used();
        let per_entry = all_bytes / 4;
        assert_eq!(all_bytes % 4, 0, "equal-sized entries");

        c.invalidate_sot_epoch("/store-a", "v", 0, 0);
        assert!(c.lookup(&epoch_key(0, 0)).is_none());
        assert!(c.lookup(&epoch_key(0, 1)).is_none());
        assert!(
            c.lookup(&epoch_key(1, 0)).is_some(),
            "the live epoch's entries survive"
        );
        assert!(
            c.lookup(&other_sot).is_some(),
            "other SOTs' entries survive"
        );
        assert_eq!(
            c.bytes_used(),
            2 * per_entry,
            "reclaimed entries must release their budget immediately"
        );
    }
}
