//! Non-uniform tile layout generation around objects (§3.4.2).
//!
//! Given the bounding boxes of the objects a layout should serve,
//! [`partition`] places tile boundaries so that **no boundary intersects any
//! box**, while respecting the codec's minimum tile dimensions:
//!
//! * **fine-grained** layouts cut in every gap between objects, isolating
//!   non-intersecting boxes into small tiles (Figure 4(a));
//! * **coarse-grained** layouts place all boxes within a single large tile
//!   (Figure 4(b)).
//!
//! Because valid HEVC layouts are regular grids, boundaries are chosen per
//! axis from the gaps left by the boxes' interval projections.

use serde::{Deserialize, Serialize};
use tasm_codec::{TileLayout, TILE_ALIGN};
use tasm_video::Rect;

/// Tile granularity (§3.4.2, evaluated in Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// Isolate objects into the smallest aligned tiles.
    Fine,
    /// One large tile containing every object.
    Coarse,
}

/// Parameters for layout generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Minimum tile width in luma pixels (HEVC imposes 256; scaled down with
    /// our frame sizes). Must be a multiple of [`TILE_ALIGN`].
    pub min_tile_width: u32,
    /// Minimum tile height in luma pixels (HEVC imposes 64).
    pub min_tile_height: u32,
    /// Fine or coarse tiles.
    pub granularity: Granularity,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            min_tile_width: 64,
            min_tile_height: 32,
            granularity: Granularity::Fine,
        }
    }
}

/// Designs a tile layout for a `frame_w`×`frame_h` frame around `boxes`.
///
/// Returns the untiled layout `ω` when no useful cut exists (no boxes, boxes
/// covering everything, or minimum dimensions admitting no boundary).
///
/// Guarantees, verified by tests and property tests:
/// * the layout exactly covers the frame;
/// * no interior boundary intersects any input box;
/// * every tile respects the configured minimum dimensions.
pub fn partition(frame_w: u32, frame_h: u32, boxes: &[Rect], cfg: &PartitionConfig) -> TileLayout {
    assert!(
        frame_w.is_multiple_of(TILE_ALIGN) && frame_h.is_multiple_of(TILE_ALIGN),
        "frame dimensions must be tile-aligned"
    );
    assert!(
        cfg.min_tile_width.is_multiple_of(TILE_ALIGN)
            && cfg.min_tile_height.is_multiple_of(TILE_ALIGN),
        "minimum tile dimensions must be multiples of {TILE_ALIGN}"
    );
    let boxes: Vec<Rect> = boxes
        .iter()
        .map(|b| b.clamp_to(frame_w, frame_h))
        .filter(|b| !b.is_empty())
        .collect();

    let cols = axis_cuts(
        frame_w,
        cfg.min_tile_width,
        &project(&boxes, |b| (b.x, b.right())),
        cfg.granularity,
    );
    let rows = axis_cuts(
        frame_h,
        cfg.min_tile_height,
        &project(&boxes, |b| (b.y, b.bottom())),
        cfg.granularity,
    );
    let col_widths = widths_from_cuts(frame_w, &cols);
    let row_heights = widths_from_cuts(frame_h, &rows);
    TileLayout::new(col_widths, row_heights).expect("generated cuts are aligned by construction")
}

/// Merges box projections into disjoint, sorted occupied intervals.
fn project(boxes: &[Rect], f: impl Fn(&Rect) -> (u32, u32)) -> Vec<(u32, u32)> {
    let mut iv: Vec<(u32, u32)> = boxes.iter().map(&f).collect();
    iv.sort_unstable();
    let mut merged: Vec<(u32, u32)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        match merged.last_mut() {
            Some((_, end)) if a <= *end => *end = (*end).max(b),
            _ => merged.push((a, b)),
        }
    }
    merged
}

/// Chooses interior cut positions on one axis.
///
/// A cut at position `c` is *valid* if it is aligned, lies strictly inside
/// `(0, total)`, and does not fall strictly inside any occupied interval.
fn axis_cuts(total: u32, min_dim: u32, occupied: &[(u32, u32)], g: Granularity) -> Vec<u32> {
    let candidates: Vec<u32> = match g {
        Granularity::Fine => {
            // Tight cuts around every occupied interval: floor-align the
            // start, ceil-align the end.
            let mut c = Vec::with_capacity(occupied.len() * 2);
            for &(a, b) in occupied {
                c.push(a / TILE_ALIGN * TILE_ALIGN);
                c.push(b.div_ceil(TILE_ALIGN) * TILE_ALIGN);
            }
            c
        }
        Granularity::Coarse => {
            // One band containing all intervals.
            match (occupied.first(), occupied.last()) {
                (Some(&(a, _)), Some(&(_, b))) => {
                    vec![
                        a / TILE_ALIGN * TILE_ALIGN,
                        b.div_ceil(TILE_ALIGN) * TILE_ALIGN,
                    ]
                }
                _ => Vec::new(),
            }
        }
    };

    let mut cuts: Vec<u32> = candidates
        .into_iter()
        .filter(|&c| c > 0 && c < total)
        .filter(|&c| !occupied.iter().any(|&(a, b)| c > a && c < b))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();

    // Enforce minimum tile dimensions greedily left-to-right, always keeping
    // the later cut when two are too close (later cuts close off object
    // bands whose start survived).
    let mut spaced: Vec<u32> = Vec::with_capacity(cuts.len());
    for c in cuts {
        while let Some(&last) = spaced.last() {
            if c - last < min_dim {
                spaced.pop();
            } else {
                break;
            }
        }
        if c >= min_dim {
            spaced.push(c);
        }
    }
    // The final segment must also satisfy the minimum.
    while let Some(&last) = spaced.last() {
        if total - last < min_dim {
            spaced.pop();
        } else {
            break;
        }
    }
    spaced
}

/// Converts sorted interior cuts to segment widths covering `[0, total]`.
fn widths_from_cuts(total: u32, cuts: &[u32]) -> Vec<u32> {
    let mut widths = Vec::with_capacity(cuts.len() + 1);
    let mut prev = 0;
    for &c in cuts {
        widths.push(c - prev);
        prev = c;
    }
    widths.push(total - prev);
    widths
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u32 = 640;
    const H: u32 = 352;

    fn fine() -> PartitionConfig {
        PartitionConfig::default()
    }

    fn coarse() -> PartitionConfig {
        PartitionConfig {
            granularity: Granularity::Coarse,
            ..Default::default()
        }
    }

    fn check_invariants(layout: &TileLayout, boxes: &[Rect]) {
        layout
            .check_covers(W, H)
            .expect("layout must cover the frame");
        for b in boxes {
            assert!(
                !layout.boundary_intersects(b),
                "boundary cuts box {b:?} in layout {layout:?}"
            );
        }
    }

    #[test]
    fn no_boxes_yields_untiled() {
        let l = partition(W, H, &[], &fine());
        assert!(l.is_untiled());
        let l = partition(W, H, &[], &coarse());
        assert!(l.is_untiled());
    }

    #[test]
    fn single_central_box_fine_isolates_it() {
        let boxes = [Rect::new(300, 150, 40, 40)];
        let l = partition(W, H, &boxes, &fine());
        check_invariants(&l, &boxes);
        assert!(l.tile_count() > 1, "should tile around the box");
        // The tile containing the box should be much smaller than the frame.
        let tiles = l.tiles_intersecting(&boxes[0]);
        assert_eq!(tiles.len(), 1, "box should lie in exactly one tile");
        let area = l.tile_rect_by_index(tiles[0]).area();
        assert!(
            area < (W as u64 * H as u64) / 8,
            "containing tile too large: {area}"
        );
    }

    #[test]
    fn coarse_layout_puts_all_boxes_in_one_tile() {
        let boxes = [Rect::new(100, 50, 40, 40), Rect::new(400, 200, 60, 60)];
        let l = partition(W, H, &boxes, &coarse());
        check_invariants(&l, &boxes);
        // Both boxes must share a single tile.
        let t0 = l.tiles_intersecting(&boxes[0]);
        let t1 = l.tiles_intersecting(&boxes[1]);
        assert_eq!(t0.len(), 1);
        assert_eq!(t0, t1, "coarse tiles must contain all boxes together");
        // At most 9 tiles (3x3 band structure).
        assert!(l.tile_count() <= 9);
    }

    #[test]
    fn fine_separates_two_distant_boxes() {
        let boxes = [Rect::new(64, 64, 40, 40), Rect::new(480, 240, 60, 60)];
        let l = partition(W, H, &boxes, &fine());
        check_invariants(&l, &boxes);
        let t0 = l.tiles_intersecting(&boxes[0]);
        let t1 = l.tiles_intersecting(&boxes[1]);
        assert_eq!(t0.len(), 1);
        assert_eq!(t1.len(), 1);
        assert_ne!(t0, t1, "distant boxes should land in different tiles");
        // Fine layout decodes fewer pixels for box 0 than coarse.
        let lc = partition(W, H, &boxes, &coarse());
        assert!(l.covered_area(&boxes[0]) < lc.covered_area(&boxes[0]));
    }

    #[test]
    fn overlapping_boxes_share_a_tile() {
        let boxes = [Rect::new(200, 100, 80, 80), Rect::new(240, 140, 80, 80)];
        let l = partition(W, H, &boxes, &fine());
        check_invariants(&l, &boxes);
    }

    #[test]
    fn box_covering_whole_frame_yields_untiled() {
        let boxes = [Rect::new(0, 0, W, H)];
        assert!(partition(W, H, &boxes, &fine()).is_untiled());
    }

    #[test]
    fn boxes_out_of_bounds_are_clamped() {
        let boxes = [Rect::new(600, 330, 100, 100)];
        let l = partition(W, H, &boxes, &fine());
        l.check_covers(W, H).unwrap();
    }

    #[test]
    fn min_dims_respected() {
        // Many small boxes close together: cuts must stay >= min apart.
        let boxes: Vec<Rect> = (0..8)
            .map(|i| Rect::new(40 * i + 8, 30 * i + 8, 12, 12))
            .collect();
        for cfg in [fine(), coarse()] {
            let l = partition(W, H, &boxes, &cfg);
            l.check_covers(W, H).unwrap();
            assert!(l.col_widths().iter().all(|&w| w >= cfg.min_tile_width));
            assert!(l.row_heights().iter().all(|&h| h >= cfg.min_tile_height));
        }
    }

    #[test]
    fn fine_produces_no_fewer_tiles_than_coarse() {
        let boxes = [
            Rect::new(64, 32, 32, 32),
            Rect::new(256, 128, 48, 48),
            Rect::new(512, 256, 40, 40),
        ];
        let f = partition(W, H, &boxes, &fine());
        let c = partition(W, H, &boxes, &coarse());
        check_invariants(&f, &boxes);
        check_invariants(&c, &boxes);
        assert!(f.tile_count() >= c.tile_count());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_box() -> impl Strategy<Value = Rect> {
        (0u32..600, 0u32..320, 4u32..200, 4u32..150).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Layout invariants hold for arbitrary box sets at both
        /// granularities: full coverage, aligned min-sized tiles, and no
        /// boundary through any box.
        #[test]
        fn prop_partition_invariants(
            boxes in proptest::collection::vec(arb_box(), 0..12),
            coarse in any::<bool>(),
        ) {
            let cfg = PartitionConfig {
                granularity: if coarse { Granularity::Coarse } else { Granularity::Fine },
                ..Default::default()
            };
            let l = partition(640, 352, &boxes, &cfg);
            prop_assert!(l.check_covers(640, 352).is_ok());
            prop_assert!(l.col_widths().iter().all(|&w| w >= cfg.min_tile_width));
            prop_assert!(l.row_heights().iter().all(|&h| h >= cfg.min_tile_height));
            for b in &boxes {
                let clamped = b.clamp_to(640, 352);
                if !clamped.is_empty() {
                    prop_assert!(
                        !l.boundary_intersects(&clamped),
                        "boundary intersects {:?}", clamped
                    );
                }
            }
        }
    }
}
