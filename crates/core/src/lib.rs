//! # TASM: a tile-based storage manager for video analytics
//!
//! A from-scratch Rust reproduction of *TASM: A Tile-Based Storage Manager
//! for Video Analytics* (Daum et al., ICDE 2021). TASM sits at the bottom of
//! a video database system and accelerates queries that retrieve objects
//! from videos by optimizing the on-disk *tile layout* of each part of the
//! video around the objects queries actually target.
//!
//! ## What lives where
//!
//! * [`mod@partition`] — non-uniform layout generation around bounding boxes
//!   (fine/coarse granularity, §3.4.2);
//! * [`cost`] — the `C = β·P + γ·T` query cost model, the `R(s, L)`
//!   re-encode model, and their least-squares calibration (§4.1);
//! * [`storage`] — each tile stored as its own video file, per-SOT layouts,
//!   re-tiling by transcode (§3.4.5) under an atomic commit protocol with
//!   startup recovery and `fsck` validation;
//! * [`durable`] — the injectable [`StorageIo`] filesystem shim behind
//!   every manifest/tile write: durable production I/O ([`RealIo`]) and a
//!   deterministic crash injector ([`FaultIo`]) for the crash-point sweep
//!   tests;
//! * [`exec`] — the parallel tile-decode execution pipeline: per-(SOT, tile)
//!   decode planning, a scoped-thread executor, and the shared decoded-GOP
//!   cache (buffer-pool-style LRU with a byte budget);
//! * [`mod@scan`] — the `Scan(video, L, T)` access method with CNF label
//!   predicates (§3.1);
//! * [`mod@query`] — the spatiotemporal query planner: ROI, sampling
//!   stride, first-k limit, and aggregate modes, with index-driven tile and
//!   GOP pruning before any decode;
//! * [`tasm`] — the facade: `AddMetadata`, `Scan`, KQKO optimization (§4.2),
//!   incremental-more and regret-based re-tiling (§4.4);
//! * [`runner`] — workload execution under the strategies compared in §5.3;
//! * [`edge`] — capture-time tiling on a simulated edge camera (§4.3).
//!
//! ## Quickstart
//!
//! ```no_run
//! use tasm_core::{LabelPredicate, Tasm, TasmConfig};
//! use tasm_index::MemoryIndex;
//! use tasm_video::{Frame, Rect, VecFrameSource};
//!
//! let mut tasm = Tasm::open(
//!     "/tmp/tasm-store",
//!     Box::new(MemoryIndex::in_memory()),
//!     TasmConfig::default(),
//! ).unwrap();
//!
//! let video = VecFrameSource::new(vec![Frame::black(640, 352); 60]);
//! tasm.ingest("traffic", &video, 30).unwrap();
//! tasm.add_metadata("traffic", "car", 0, Rect::new(100, 80, 64, 40)).unwrap();
//!
//! // Retrieve just the car pixels; only the tiles containing them decode.
//! let result = tasm.scan("traffic", &LabelPredicate::label("car"), 0..30).unwrap();
//! println!("decoded {} samples", result.stats.samples_decoded);
//!
//! // Narrow further with the spatiotemporal planner: cars in the left
//! // half only, every 5th frame — pruned tiles/GOPs are never decoded.
//! use tasm_core::Query;
//! let roi = tasm.query("traffic", &Query::new(LabelPredicate::label("car"))
//!     .frames(0..30)
//!     .roi(Rect::new(0, 0, 320, 352))
//!     .stride(5)).unwrap();
//! println!("{} matches, {} tiles pruned", roi.matched, roi.plan.tiles_pruned);
//! ```
//!
//! ## Execution pipeline and decoded-GOP cache
//!
//! `Scan` no longer decodes tiles in a serial loop. A query is *planned*
//! into independent per-(SOT, tile) decode requests, which an executor fans
//! out across scoped worker threads — tile bitstreams share nothing, so
//! they decode in parallel and the results are reassembled in deterministic
//! order (pixels and work accounting are bit-identical at any worker
//! count). Between planning and execution sits a shared, byte-budgeted LRU
//! cache of decoded GOP prefixes, keyed by
//! `(video, SOT, tile, GOP, layout epoch)`, so overlapping and repeated
//! queries reuse decode work instead of repeating it; re-tiling or
//! re-ingesting invalidates the affected entries. Cache reuse is reported
//! separately ([`ScanResult::cache`]) from real decode work
//! ([`ScanResult::stats`]), keeping the §4.1 cost model calibrated.
//!
//! Two [`TasmConfig`] knobs control the pipeline:
//!
//! * [`TasmConfig::workers`] — decode worker threads. `0` (default) uses
//!   one per available core; `1` reproduces strictly serial execution.
//! * [`TasmConfig::cache_bytes`] — decoded-GOP cache budget in bytes.
//!   `0` disables caching; the default is 256 MiB.
//!
//! ## Concurrency
//!
//! [`Tasm`] is `Sync` and every operation — including [`Tasm::scan`] and
//! the incremental policies — takes `&self`, so one instance behind an
//! `Arc` serves any number of threads. Per-video state (manifest, policy
//! counters) is sharded, so on those locks queries on different videos
//! never contend; the semantic index is one shared lock, but it is held
//! only across the brief lookup phase and released before decode — the
//! dominant decode cost runs fully concurrently. The decoded-GOP cache
//! performs *single-flight
//! shared-scan dedup*: concurrent queries needing the same
//! `(video, SOT, tile, GOP)` decode join one in-flight decode instead of
//! repeating it ([`ScanResult::shared`](scan::ScanResult) accounts joined
//! vs. owned decodes). Tile layouts are versioned as MVCC *layout epochs*:
//! a scan pins its video's epoch at plan time and reads that immutable
//! snapshot to completion, while re-tiles commit new epochs immediately —
//! never waiting on readers — and superseded epochs are garbage-collected
//! when their last reader drains. Results stay bit-exact across concurrent
//! re-tiling, and [`Query::as_of`] can re-query any still-pinned epoch.
//! The `tasm-service` crate builds a multi-query engine (bounded queue,
//! worker pool, background retile daemon) on these guarantees.
//!
//! ```no_run
//! use tasm_core::{Tasm, TasmConfig};
//! use tasm_index::MemoryIndex;
//!
//! let cfg = TasmConfig {
//!     workers: 8,                 // decode on 8 threads
//!     cache_bytes: 512 << 20,     // half a GiB of warm GOPs
//!     ..TasmConfig::default()
//! };
//! let tasm = Tasm::open("/tmp/tasm-store", Box::new(MemoryIndex::in_memory()), cfg);
//! ```

pub mod cost;
pub mod durable;
pub mod edge;
pub mod exec;
pub mod partition;
pub mod query;
pub mod runner;
pub mod scan;
pub mod storage;
pub mod tasm;

pub use cost::{estimate_work, fit_linear, pixel_ratio, CostModel, EncodeModel, Work, WorkSample};
pub use durable::{
    FaultIo, FaultKind, FsckIssue, FsckReport, RealIo, RecoveryAction, RecoveryReport, StorageIo,
    StorageTierIo,
};
pub use edge::{edge_ingest, EdgeConfig, EdgeReport};
pub use exec::{
    CacheStats, DecodedTile, DecodedTileCache, PlanStats, SharedScanStats, TileDecodeRequest,
};
pub use partition::{partition, Granularity, PartitionConfig};
pub use query::{Query, QueryMode};
pub use runner::{run_workload, QueryRecord, RunQuery, Strategy, TruthFn, WorkloadReport};
pub use scan::{scan, scan_prepared, LabelPredicate, RegionPixels, ScanError, ScanResult};
pub use storage::{
    RetileStats, RetiredEpoch, SotEntry, StorageConfig, StoreError, VideoManifest, VideoStore,
};
pub use tasm::{EpochPin, SotTileBytes, Tasm, TasmConfig, TasmError};
