//! The `Scan` access method (§3.1).
//!
//! `Scan(video, L, T)` retrieves the pixels satisfying a CNF predicate `L`
//! over object labels, optionally restricted to a time range `T`. For each
//! disjunctive clause TASM retrieves pixels inside boxes of *any* of its
//! labels; conjunctions intersect the clauses' regions ("red cars" = boxes
//! labelled car ∩ boxes labelled red).
//!
//! Execution: look up boxes in the semantic index, map them to the tiles of
//! each overlapping SOT, decode only those tiles, and crop the requested
//! regions. Reported stats include the index lookup time and the decode
//! work, as the paper's reported query times do.

use crate::cost::Work;
use crate::exec::{self, CacheStats, PlanStats, SharedScanStats, TileDecodeRequest};
use crate::storage::{StoreError, VideoManifest, VideoStore};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;
use std::time::{Duration, Instant};
use tasm_codec::DecodeStats;
use tasm_index::{IndexResult, SemanticIndex};
use tasm_video::{Frame, Rect};

/// A CNF predicate over labels: an AND of OR-clauses.
///
/// `(car ∨ bicycle) ∧ red` retrieves pixels of red cars and red bicycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelPredicate {
    clauses: Vec<Vec<String>>,
}

impl LabelPredicate {
    /// A single-label predicate (the common case in the evaluation).
    pub fn label(label: &str) -> Self {
        LabelPredicate {
            clauses: vec![vec![label.to_string()]],
        }
    }

    /// One disjunctive clause: any of `labels`.
    pub fn any_of(labels: &[&str]) -> Self {
        assert!(!labels.is_empty(), "clause must name at least one label");
        LabelPredicate {
            clauses: vec![labels.iter().map(|l| l.to_string()).collect()],
        }
    }

    /// Conjunction with another clause.
    pub fn and(mut self, labels: &[&str]) -> Self {
        assert!(!labels.is_empty(), "clause must name at least one label");
        self.clauses
            .push(labels.iter().map(|l| l.to_string()).collect());
        self
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<String>] {
        &self.clauses
    }

    /// All labels mentioned anywhere in the predicate.
    pub fn labels(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .clauses
            .iter()
            .flat_map(|c| c.iter().map(|s| s.as_str()))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Evaluates the predicate against the index: per-frame target regions.
    pub fn target_regions(
        &self,
        index: &mut dyn SemanticIndex,
        video: u32,
        frames: Range<u32>,
    ) -> IndexResult<BTreeMap<u32, Vec<Rect>>> {
        // Per clause: per-frame union list of boxes for any clause label.
        let mut per_clause: Vec<BTreeMap<u32, Vec<Rect>>> = Vec::with_capacity(self.clauses.len());
        for clause in &self.clauses {
            let mut frame_boxes: BTreeMap<u32, Vec<Rect>> = BTreeMap::new();
            for label in clause {
                for d in index.query(video, label, frames.clone())? {
                    frame_boxes.entry(d.frame).or_default().push(d.bbox);
                }
            }
            per_clause.push(frame_boxes);
        }
        // Conjunction: fold clause regions by intersection. Small frames use
        // direct pairwise tests; larger box sets go through the spatial grid
        // the paper proposes for conjunctive predicates (§3.2).
        let mut iter = per_clause.into_iter();
        let Some(mut acc) = iter.next() else {
            return Ok(BTreeMap::new());
        };
        for clause in iter {
            let mut next: BTreeMap<u32, Vec<Rect>> = BTreeMap::new();
            for (frame, lhs) in &acc {
                if let Some(rhs) = clause.get(frame) {
                    let regions = intersect_box_sets(lhs, rhs);
                    if !regions.is_empty() {
                        next.insert(*frame, regions);
                    }
                }
            }
            acc = next;
        }
        Ok(acc)
    }
}

/// Pixels returned for one matched region.
#[derive(Debug, Clone)]
pub struct RegionPixels {
    /// Frame the region belongs to.
    pub frame: u32,
    /// The region rectangle in frame coordinates.
    pub rect: Rect,
    /// The decoded pixels (dimensions = `rect` aligned outward to chroma
    /// parity).
    pub pixels: Frame,
}

/// Result of a `Scan` (or [`crate::Tasm::query`]) call.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Matched regions with their pixels, frame order. Empty for the
    /// aggregate query modes ([`crate::QueryMode::Count`] /
    /// [`crate::QueryMode::Exists`]), which never materialize pixels.
    pub regions: Vec<RegionPixels>,
    /// Number of regions matching the query's predicates (label ∧ ROI ∧
    /// stride ∧ limit). Equal to `regions.len()` in pixel-returning modes;
    /// the aggregate modes report it without decoding anything.
    pub matched: u64,
    /// Planner accounting: decode units scheduled vs. pruned relative to
    /// the label-only baseline plan. Computed at plan time from the index —
    /// identical at any worker count and any cache state.
    pub plan: PlanStats,
    /// Exact decode accounting — only work actually performed; frames
    /// served by the decoded-GOP cache are *not* counted here, so the
    /// §4.1 cost model stays calibrated against real decode effort.
    pub stats: DecodeStats,
    /// Decoded-GOP cache reuse for this scan.
    pub cache: CacheStats,
    /// Shared-scan dedup accounting: GOP decodes this scan performed itself
    /// (`owned`) vs. GOP needs served by joining another in-flight query's
    /// decode (`joined`). Joined work appears in `cache`, never in `stats`,
    /// so the §4.1 cost model stays calibrated under concurrency.
    pub shared: SharedScanStats,
    /// The layout epoch of the manifest snapshot this result was computed
    /// against ([`crate::VideoManifest::epoch`]) — for [`crate::Tasm`]
    /// queries, the epoch pinned at plan time and read to completion.
    pub epoch: u64,
    /// Time spent querying the semantic index.
    pub lookup_time: Duration,
    /// Wall-clock time of the decode execution phase. With `workers > 1`
    /// this is *elapsed* time, not the sum of per-worker decode times —
    /// `stats.decode_time` holds that sum (the cost model's work measure).
    pub exec_time: Duration,
    /// Tiles-and-pixels estimate actually incurred (for cost-model
    /// validation): mirrors `stats` in estimator units.
    pub work: Work,
}

impl ScanResult {
    /// Total wall-clock seconds (lookup + decode execution), the paper's
    /// reported query time. Parallel decode shortens this without changing
    /// `stats` — query latency and decode work are separate quantities.
    pub fn seconds(&self) -> f64 {
        self.lookup_time.as_secs_f64() + self.exec_time.as_secs_f64()
    }
}

/// Executes `Scan(video, predicate, frames)` against stored tiles.
pub fn scan(
    store: &VideoStore,
    manifest: &VideoManifest,
    index: &mut dyn SemanticIndex,
    video_id: u32,
    predicate: &LabelPredicate,
    frames: Range<u32>,
) -> Result<ScanResult, ScanError> {
    let t0 = Instant::now();
    let frames = frames.start..frames.end.min(manifest.frame_count);
    let regions = predicate
        .target_regions(index, video_id, frames.clone())
        .map_err(ScanError::Index)?;
    scan_prepared(store, manifest, regions, frames, t0.elapsed())
}

/// The decode half of [`scan`]: executes against already-resolved target
/// regions. Split out so callers (notably [`crate::Tasm::scan`]) can release
/// the semantic-index lock after the lookup phase — decode work then runs
/// without serializing concurrent queries on the index.
pub fn scan_prepared(
    store: &VideoStore,
    manifest: &VideoManifest,
    regions: BTreeMap<u32, Vec<Rect>>,
    frames: Range<u32>,
    lookup_time: Duration,
) -> Result<ScanResult, ScanError> {
    let mut result = ScanResult {
        lookup_time,
        epoch: manifest.epoch(),
        ..Default::default()
    };
    if regions.is_empty() {
        return Ok(result);
    }

    // --- Planning: reduce the query to per-(SOT, tile) decode requests ---
    let mut sot_plans: Vec<(usize, Range<u32>)> = Vec::new();
    let mut requests: Vec<TileDecodeRequest> = Vec::new();
    for sot_idx in manifest.sots_for_range(frames.clone()) {
        let sot = &manifest.sots[sot_idx];
        // Needed tiles for this SOT (BTreeSet: dedup + sorted raster order).
        let mut needed: BTreeSet<u32> = BTreeSet::new();
        let mut first_frame = u32::MAX;
        let mut last_frame = 0u32;
        for (&frame, rects) in regions.range(sot.start..sot.end) {
            for r in rects {
                needed.extend(sot.layout.tiles_intersecting(r));
            }
            first_frame = first_frame.min(frame);
            last_frame = last_frame.max(frame);
        }
        if needed.is_empty() {
            continue;
        }
        let local = (first_frame - sot.start)..(last_frame - sot.start + 1);
        result.plan.tiles_planned += needed.len() as u64;
        result.plan.gops_planned +=
            needed.len() as u64 * gop_count(&local, manifest.config.gop_len);
        requests.extend(needed.into_iter().map(|tile| TileDecodeRequest {
            sot_idx,
            tile,
            local_span: local.clone(),
        }));
        sot_plans.push((sot_idx, local));
    }
    result.plan.frames_sampled = regions.len() as u64;
    if requests.is_empty() {
        return Ok(result);
    }

    // --- Execution: fan the requests out across the store's workers ---
    let t1 = Instant::now();
    let (decoded, stats, cache, shared) =
        exec::execute(store, manifest, &requests).map_err(ScanError::Store)?;
    result.exec_time = t1.elapsed();
    result.stats += stats;
    result.cache += cache;
    result.shared += shared;
    result.work.pixels += stats.samples_decoded;
    result.work.tile_chunks += stats.tile_chunks_decoded;
    let by_tile: HashMap<(usize, u32), &exec::DecodedTile> =
        decoded.iter().map(|d| ((d.sot_idx, d.tile), d)).collect();

    // --- Reassembly: crop each region from its SOT's decoded tiles ---
    for (sot_idx, local) in sot_plans {
        let sot = &manifest.sots[sot_idx];
        for (&frame, rects) in regions.range(sot.start..sot.end) {
            let local_idx = frame - sot.start;
            debug_assert!(local.contains(&local_idx));
            for r in rects {
                let aligned = align_out(r, manifest.width, manifest.height);
                if aligned.is_empty() {
                    continue;
                }
                let mut canvas = Frame::black(aligned.w, aligned.h);
                for t in sot.layout.tiles_intersecting(&aligned) {
                    let Some(tile) = by_tile.get(&(sot_idx, t)) else {
                        continue;
                    };
                    let trect = sot.layout.tile_rect_by_index(t);
                    blit_tile_overlap(&mut canvas, tile.frame_at(local_idx), &trect, &aligned);
                }
                result.regions.push(RegionPixels {
                    frame,
                    rect: *r,
                    pixels: canvas,
                });
            }
        }
    }
    result.matched = result.regions.len() as u64;
    Ok(result)
}

/// Copies the part of a decoded tile that overlaps the (chroma-aligned)
/// region rectangle onto the region canvas. Shared by the scan and query
/// reassembly paths so both compose pixels identically.
pub(crate) fn blit_tile_overlap(
    canvas: &mut Frame,
    tile_frame: &Frame,
    trect: &Rect,
    aligned: &Rect,
) {
    let Some(overlap) = trect.intersect(aligned) else {
        return;
    };
    let src_rect = Rect::new(
        overlap.x - trect.x,
        overlap.y - trect.y,
        overlap.w,
        overlap.h,
    );
    let src_aligned = align_in(&src_rect);
    if src_aligned.is_empty() {
        return;
    }
    canvas.blit(
        tile_frame,
        src_aligned,
        overlap.x + (src_aligned.x - src_rect.x) - aligned.x,
        overlap.y + (src_aligned.y - src_rect.y) - aligned.y,
    );
}

/// Number of GOPs a local frame span touches.
pub(crate) fn gop_count(span: &Range<u32>, gop_len: u32) -> u64 {
    if span.is_empty() {
        return 0;
    }
    let first = span.start / gop_len;
    let last = (span.end - 1) / gop_len;
    (last - first + 1) as u64
}

/// Errors from scan execution.
#[derive(Debug)]
pub enum ScanError {
    /// Semantic index failure.
    Index(tasm_index::TreeError),
    /// Storage failure.
    Store(StoreError),
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Index(e) => write!(f, "scan index error: {e}"),
            ScanError::Store(e) => write!(f, "scan store error: {e}"),
        }
    }
}

impl std::error::Error for ScanError {}

/// Pairwise intersections between two box sets. Beyond a small size product
/// the spatial grid of `tasm-index` prunes the candidate pairs.
fn intersect_box_sets(lhs: &[Rect], rhs: &[Rect]) -> Vec<Rect> {
    const GRID_THRESHOLD: usize = 64;
    if lhs.len() * rhs.len() <= GRID_THRESHOLD {
        let mut out = Vec::new();
        for a in lhs {
            for b in rhs {
                if let Some(i) = a.intersect(b) {
                    out.push(i);
                }
            }
        }
        return out;
    }
    let hull = Rect::hull(lhs.iter().chain(rhs));
    let grid =
        tasm_index::SpatialGrid::from_boxes(hull.right().max(64), hull.bottom().max(64), lhs);
    let mut out = Vec::new();
    for b in rhs {
        out.extend(grid.intersections(b));
    }
    out
}

/// Aligns a rectangle outward to even coordinates (chroma parity), clamped
/// to the frame.
pub(crate) fn align_out(r: &Rect, w: u32, h: u32) -> Rect {
    let x = r.x & !1;
    let y = r.y & !1;
    let right = (r.right() + 1) & !1;
    let bottom = (r.bottom() + 1) & !1;
    Rect::new(x, y, right - x, bottom - y).clamp_to(w, h)
}

/// Aligns a rectangle inward to even coordinates.
fn align_in(r: &Rect) -> Rect {
    let x = (r.x + 1) & !1;
    let y = (r.y + 1) & !1;
    let right = r.right() & !1;
    let bottom = r.bottom() & !1;
    Rect::new(x, y, right.saturating_sub(x), bottom.saturating_sub(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_constructors() {
        let p = LabelPredicate::label("car");
        assert_eq!(p.clauses().len(), 1);
        assert_eq!(p.labels(), vec!["car"]);

        let p = LabelPredicate::any_of(&["car", "bicycle"]).and(&["red"]);
        assert_eq!(p.clauses().len(), 2);
        assert_eq!(p.labels(), vec!["bicycle", "car", "red"]);
    }

    #[test]
    fn disjunction_unions_boxes() {
        let mut idx = tasm_index::MemoryIndex::in_memory();
        idx.add_metadata(0, "car", 3, Rect::new(0, 0, 10, 10))
            .unwrap();
        idx.add_metadata(0, "bicycle", 3, Rect::new(50, 50, 10, 10))
            .unwrap();
        idx.add_metadata(0, "person", 3, Rect::new(90, 90, 10, 10))
            .unwrap();
        let p = LabelPredicate::any_of(&["car", "bicycle"]);
        let regions = p.target_regions(&mut idx, 0, 0..10).unwrap();
        assert_eq!(regions[&3].len(), 2);
    }

    #[test]
    fn conjunction_intersects_boxes() {
        let mut idx = tasm_index::MemoryIndex::in_memory();
        idx.add_metadata(0, "car", 3, Rect::new(0, 0, 20, 20))
            .unwrap();
        idx.add_metadata(0, "red", 3, Rect::new(10, 10, 20, 20))
            .unwrap();
        idx.add_metadata(0, "red", 4, Rect::new(10, 10, 20, 20))
            .unwrap(); // no car on 4
        let p = LabelPredicate::label("car").and(&["red"]);
        let regions = p.target_regions(&mut idx, 0, 0..10).unwrap();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[&3], vec![Rect::new(10, 10, 10, 10)]);
    }

    #[test]
    fn disjoint_conjunction_is_empty() {
        let mut idx = tasm_index::MemoryIndex::in_memory();
        idx.add_metadata(0, "car", 3, Rect::new(0, 0, 10, 10))
            .unwrap();
        idx.add_metadata(0, "red", 3, Rect::new(50, 50, 10, 10))
            .unwrap();
        let p = LabelPredicate::label("car").and(&["red"]);
        assert!(p.target_regions(&mut idx, 0, 0..10).unwrap().is_empty());
    }

    #[test]
    fn alignment_helpers() {
        assert_eq!(
            align_out(&Rect::new(3, 3, 5, 5), 100, 100),
            Rect::new(2, 2, 6, 6)
        );
        assert_eq!(
            align_out(&Rect::new(0, 0, 4, 4), 100, 100),
            Rect::new(0, 0, 4, 4)
        );
        assert_eq!(align_in(&Rect::new(3, 3, 5, 5)), Rect::new(4, 4, 4, 4));
        assert!(align_in(&Rect::new(3, 3, 1, 1)).is_empty());
    }

    // Full end-to-end scan tests (with real encoded tiles) live in
    // tests/end_to_end.rs at the workspace level.
}
