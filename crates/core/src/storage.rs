//! Tile-based data storage (§3.4.5).
//!
//! TASM stores each tile as a separate video file so that every tile is a
//! spatial random-access point (Figure 1). A video is a concatenation of
//! SOTs (sequences of tiles, §2): each SOT has its own layout and its own
//! directory of tile files, and layouts change only at GOP boundaries.
//!
//! ```text
//! root/<video>/manifest.json
//! root/<video>/sot_000000_000030/tile_000.tvf           (layout epoch 0)
//! root/<video>/sot_000000_000030/tile_001.tvf
//! root/<video>/sot_000030_000060_r000002/tile_000.tvf   (re-tiled twice)
//! ```
//!
//! Re-tiling a SOT ([`VideoStore::retile`]) decodes its current tiles and
//! re-encodes under the new layout — the `R(s, L)` cost in the incremental
//! policies. Each SOT directory name is stamped with the SOT's layout
//! epoch (its `retile_count`; epoch 0 is unstamped), so a re-tile
//! publishes into a *fresh* directory and the superseded epoch's tile
//! files stay valid on disk for readers still pinned to the old manifest
//! snapshot. [`VideoStore::retile`] reclaims the retired directory
//! immediately; [`VideoStore::retile_deferred`] leaves it for the caller
//! to reclaim with [`VideoStore::gc_epoch`] once its readers drain — the
//! mechanism the `Tasm` facade's MVCC epoch registry is built on.
//!
//! ## Durability
//!
//! Every manifest and tile-file mutation goes through the [`StorageIo`]
//! shim and follows an atomic commit discipline, so a crash at *any* single
//! operation leaves each video wholly in one layout epoch:
//!
//! * **Manifests** are replaced by write-temp → fsync → rename; readers
//!   never observe a torn `manifest.json`.
//! * **Re-tiles** ([`VideoStore::retile`]) run a commit protocol: the new
//!   tile files are written (and fsynced) under a staging directory, an
//!   epoch-stamped *commit record* holding the full post-retile manifest is
//!   atomically renamed into place (the commit point), and only then is the
//!   staging directory promoted to the new epoch-stamped SOT directory, the
//!   manifest rewritten, and the record garbage-collected. The superseded
//!   epoch's directory survives until its readers drain.
//! * **Opening** a store ([`VideoStore::open`] and friends) runs startup
//!   recovery: committed-but-unfinished re-tiles roll *forward*,
//!   uncommitted ones roll *back*, interrupted ingests and temp files are
//!   removed, and every repair is listed in the store's
//!   [`RecoveryReport`]. Shared decoded-GOP caches are invalidated for any
//!   repaired video.
//! * **[`VideoStore::fsck`]** validates manifests against the on-disk tile
//!   files and their container headers.
//!
//! A retile that returns an error either never committed (the old epoch is
//! intact) or passed its commit point — in which case the handle's
//! manifest is advanced to the committed epoch and the surviving commit
//! record is completed by the next re-tile of that video or the next open.
//! The crash-point sweep in `tests/crash_recovery.rs` exercises every
//! operation of the protocol.

use crate::durable::{
    commit_file_name, parse_commit_name, parse_sot_name, parse_staging_name, sot_dir_name,
    staging_dir_name, FsckIssue, FsckReport, RealIo, RecoveryAction, RecoveryReport, StorageIo,
    TMP_SUFFIX,
};
use crate::exec::{self, CacheStats, DecodedTileCache, TileDecodeRequest};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tasm_codec::{
    encode_video, CodecChoice, ContainerError, ContainerHeader, DecodeStats, EncodeStats,
    EncoderConfig, LayoutError, StitchError, TileLayout, TileVideo,
};
use tasm_video::{Frame, FrameSource, SliceSource, VecFrameSource};

/// Why one tile file failed fsck's bounded-read validation.
enum TileProblem {
    /// The file does not exist.
    Missing,
    /// The file exists but could not be read (permissions, I/O error).
    Unreadable(String),
    /// The file read but failed container validation.
    Invalid(ContainerError),
}

/// The commit record of an in-flight re-tile: written under a temporary
/// name, fsynced, then atomically renamed to `commit_sot_*.json` — that
/// rename is the commit point. It carries the *entire* post-retile manifest
/// so recovery can roll forward without re-deriving anything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct CommitRecord {
    /// First frame of the re-tiled SOT.
    pub sot_start: u32,
    /// Past-the-end frame of the re-tiled SOT.
    pub sot_end: u32,
    /// The manifest as it must read once the re-tile is complete.
    pub manifest: VideoManifest,
}

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// Manifest (de)serialization failure.
    Manifest(serde_json::Error),
    /// Codec container failure.
    Container(ContainerError),
    /// Invalid layout for this video.
    Layout(LayoutError),
    /// Stitching failure during retile.
    Stitch(StitchError),
    /// Caller referenced a video/SOT/tile that does not exist.
    NotFound(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Manifest(e) => write!(f, "manifest error: {e}"),
            StoreError::Container(e) => write!(f, "container error: {e}"),
            StoreError::Layout(e) => write!(f, "layout error: {e}"),
            StoreError::Stitch(e) => write!(f, "stitch error: {e}"),
            StoreError::NotFound(what) => write!(f, "not found: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Manifest(e)
    }
}

impl From<ContainerError> for StoreError {
    fn from(e: ContainerError) -> Self {
        StoreError::Container(e)
    }
}

impl From<LayoutError> for StoreError {
    fn from(e: LayoutError) -> Self {
        StoreError::Layout(e)
    }
}

impl From<StitchError> for StoreError {
    fn from(e: StitchError) -> Self {
        StoreError::Stitch(e)
    }
}

/// Encoding parameters for a stored video.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageConfig {
    /// Quantization parameter.
    pub qp: u8,
    /// GOP length in frames (one second at 30 fps by default, §2).
    pub gop_len: u32,
    /// SOT duration in frames; must be a multiple of `gop_len` (layout
    /// duration, §3.4.3).
    pub sot_frames: u32,
    /// Motion search range.
    pub search_range: u8,
    /// In-loop deblocking.
    pub deblock: bool,
    /// Rate-control mode (constant QP by default; target-rate mode emulates
    /// hardware encoders under a bit budget).
    pub rate: tasm_codec::encoder::RateControl,
    /// Encode tiles on multiple threads (bit-identical output either way).
    pub parallel_encode: bool,
    /// Per-tile codec selection. [`CodecChoice::Auto`] (the default) runs a
    /// cheap size trial per tile at ingest and re-tile, keeping whichever of
    /// the DCT and entropy-coded lossless streams is smaller.
    pub codec: CodecChoice,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            qp: 28,
            gop_len: 30,
            sot_frames: 30,
            search_range: 7,
            deblock: true,
            rate: tasm_codec::encoder::RateControl::ConstantQp,
            parallel_encode: true,
            codec: CodecChoice::Auto,
        }
    }
}

impl StorageConfig {
    fn encoder(&self) -> EncoderConfig {
        EncoderConfig {
            gop_len: self.gop_len,
            qp: self.qp,
            search_range: self.search_range,
            deblock: self.deblock,
            rate: self.rate,
            codec: self.codec,
        }
    }
}

/// One sequence of tiles: a frame range sharing a layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SotEntry {
    /// First frame (global, inclusive).
    pub start: u32,
    /// Last frame (global, exclusive).
    pub end: u32,
    /// Layout used for these frames.
    pub layout: TileLayout,
    /// How many times this SOT has been re-tiled (diagnostics).
    pub retile_count: u32,
    /// Container codec id of each tile (raster order), recorded at ingest
    /// and re-tile so fsck can cross-check headers against the manifest.
    pub tile_codecs: Vec<u8>,
}

impl SotEntry {
    /// Frames in this SOT.
    pub fn frames(&self) -> Range<u32> {
        self.start..self.end
    }

    /// Number of frames.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Persistent description of a stored video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoManifest {
    /// Video name (directory name under the store root).
    pub name: String,
    /// Frame width.
    pub width: u32,
    /// Frame height.
    pub height: u32,
    /// Frames per second (metadata).
    pub fps: u32,
    /// Total frames.
    pub frame_count: u32,
    /// Encoding parameters shared by all SOTs.
    pub config: StorageConfig,
    /// The video's SOTs in temporal order.
    pub sots: Vec<SotEntry>,
}

impl VideoManifest {
    /// The video's layout epoch: the sum of every SOT's `retile_count`.
    /// Monotonic — each re-tile commit advances exactly one SOT's count by
    /// one — starting at 0 for a fresh ingest or replica install. This is
    /// the epoch readers pin, `AS OF` queries name, and replication ships
    /// as its per-video watermark.
    pub fn epoch(&self) -> u64 {
        self.sots.iter().map(|s| s.retile_count as u64).sum()
    }

    /// Index of the SOT containing `frame`.
    pub fn sot_for_frame(&self, frame: u32) -> Option<usize> {
        // SOTs are fixed-length except the last; direct computation.
        if frame >= self.frame_count {
            return None;
        }
        Some((frame / self.config.sot_frames) as usize)
    }

    /// Indices of the SOTs overlapping `frames`.
    pub fn sots_for_range(&self, frames: Range<u32>) -> Range<usize> {
        if frames.start >= frames.end || frames.start >= self.frame_count {
            return 0..0;
        }
        let first = (frames.start / self.config.sot_frames) as usize;
        let last_frame = frames.end.min(self.frame_count) - 1;
        let last = (last_frame / self.config.sot_frames) as usize;
        first..(last + 1).min(self.sots.len())
    }
}

/// Per-tile decode output: `(tile raster index, frames over the local span)`.
pub type DecodedTiles = Vec<(u32, Vec<Arc<Frame>>)>;

/// Costs of a retile operation (decode existing + encode new).
#[derive(Debug, Clone, Copy, Default)]
pub struct RetileStats {
    /// Work to decode the SOT's current tiles.
    pub decode: DecodeStats,
    /// Work to encode the new layout.
    pub encode: EncodeStats,
}

impl RetileStats {
    /// Total wall-clock seconds of the transcode.
    pub fn seconds(&self) -> f64 {
        self.decode.seconds() + self.encode.seconds()
    }
}

/// A superseded SOT layout epoch left on disk by
/// [`VideoStore::retile_deferred`]: the directory
/// `sot_<start>_<end>[_r<retile_count>]` still holds the pre-retile tile
/// files so readers pinned to the old manifest snapshot keep working.
/// Pass it to [`VideoStore::gc_epoch`] once those readers drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetiredEpoch {
    /// First frame of the retired SOT (global, inclusive).
    pub sot_start: u32,
    /// Past-the-end frame of the retired SOT.
    pub sot_end: u32,
    /// The SOT's `retile_count` *before* the re-tile — the layout epoch
    /// whose directory is now retired.
    pub retile_count: u32,
}

/// The on-disk tile store, with its attached decode-execution settings:
/// worker count for the parallel tile-decode pipeline and an optional
/// shared decoded-GOP cache.
pub struct VideoStore {
    root: PathBuf,
    /// Canonical identity of this store in shared-cache keys.
    store_id: Arc<str>,
    workers: usize,
    cache: Option<Arc<DecodedTileCache>>,
    io: Arc<dyn StorageIo>,
    recovery: RecoveryReport,
    /// Exclusive advisory lock on `<root>/.tasm.lock`, held for this
    /// handle's lifetime when acquired. Only the handle holding it runs
    /// (mutating) startup recovery — a concurrent `tasm fsck` against a
    /// live `tasm serve` must never delete the server's in-flight staging
    /// directories. `flock` semantics: released automatically when the
    /// process dies, so a `kill -9` never wedges the store.
    _lock: Option<fs::File>,
}

impl VideoStore {
    /// Opens (creating) a store rooted at `root` with default execution
    /// settings: auto worker count, no decoded-tile cache. Startup recovery
    /// runs before the store is returned (see [`VideoStore::recovery_report`]).
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_with(root, 0, 0)
    }

    /// Opens a store with explicit execution settings: `workers` decode
    /// threads (`0` = one per available core) and a decoded-GOP cache of
    /// `cache_bytes` (`0` disables caching).
    pub fn open_with(
        root: impl Into<PathBuf>,
        workers: usize,
        cache_bytes: u64,
    ) -> Result<Self, StoreError> {
        let cache = (cache_bytes > 0).then(|| Arc::new(DecodedTileCache::new(cache_bytes)));
        Self::open_shared(root, workers, cache)
    }

    /// Opens a store sharing an existing decoded-GOP cache — lets several
    /// store handles (e.g. per-connection `Tasm` instances over the same
    /// directory) hit each other's warm GOPs.
    pub fn open_shared(
        root: impl Into<PathBuf>,
        workers: usize,
        cache: Option<Arc<DecodedTileCache>>,
    ) -> Result<Self, StoreError> {
        Self::open_shared_io(root, workers, cache, Arc::new(RealIo))
    }

    /// [`VideoStore::open_with`] with an explicit [`StorageIo`]
    /// implementation — the hook the crash-injection tests use.
    pub fn open_with_io(
        root: impl Into<PathBuf>,
        workers: usize,
        cache_bytes: u64,
        io: Arc<dyn StorageIo>,
    ) -> Result<Self, StoreError> {
        let cache = (cache_bytes > 0).then(|| Arc::new(DecodedTileCache::new(cache_bytes)));
        Self::open_shared_io(root, workers, cache, io)
    }

    /// The fully general constructor: explicit worker count, shared cache,
    /// and I/O implementation. Startup recovery runs here: interrupted
    /// re-tiles are rolled forward (committed) or back (uncommitted),
    /// half-ingested videos and temp files are removed, and cache entries
    /// of every repaired video are invalidated.
    pub fn open_shared_io(
        root: impl Into<PathBuf>,
        workers: usize,
        cache: Option<Arc<DecodedTileCache>>,
        io: Arc<dyn StorageIo>,
    ) -> Result<Self, StoreError> {
        let root = root.into();
        io.create_dir_all(&root)?;
        // Canonicalize so two handles over the same directory share cache
        // entries regardless of how the path was spelled.
        let store_id: Arc<str> = Arc::from(
            fs::canonicalize(&root)
                .unwrap_or_else(|_| root.clone())
                .to_string_lossy()
                .as_ref(),
        );
        // The store lock decides who may *mutate* during startup: recovery
        // deletes staging directories, which would corrupt an in-flight
        // re-tile if another live handle (or process) owns them. Taken
        // directly against the real filesystem — it coordinates processes,
        // it is not data I/O.
        let (lock, contended) = match fs::File::create(root.join(".tasm.lock")) {
            Ok(f) => match f.try_lock() {
                Ok(()) => (Some(f), false),
                Err(_) => (None, true),
            },
            // The lock file cannot even be created (e.g. a read-only
            // store): that is not evidence of a live peer, so recovery
            // still runs — on a genuinely read-only store a clean state
            // needs no repair, and a dirty one fails the open loudly
            // instead of silently skipping repairs forever.
            Err(_) => (None, false),
        };
        let mut store = VideoStore {
            root,
            store_id,
            workers,
            cache,
            io,
            recovery: RecoveryReport::default(),
            _lock: lock,
        };
        if contended {
            // Another live handle owns the store: it already ran recovery
            // (or is the very process whose re-tiles are in flight), so
            // this open must not repair anything.
            store.recovery.deferred = true;
        } else {
            store.recovery = store.recover_all()?;
        }
        Ok(store)
    }

    /// What startup recovery did when this store was opened. Empty after a
    /// clean shutdown.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Identity of this store in shared decoded-GOP cache keys.
    pub(crate) fn store_id(&self) -> Arc<str> {
        self.store_id.clone()
    }

    /// Worker threads the decode executor will use.
    pub(crate) fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// The attached decoded-GOP cache, if any.
    pub fn decoded_cache(&self) -> Option<&DecodedTileCache> {
        self.cache.as_deref()
    }

    /// Shareable handle to the decoded-GOP cache, if any.
    pub fn decoded_cache_handle(&self) -> Option<Arc<DecodedTileCache>> {
        self.cache.clone()
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Ingests a video: splits it into SOTs, encodes each under the layout
    /// chosen by `layout_for`, writes tile files and the manifest.
    ///
    /// `layout_for(sot_index, frames)` returns the initial layout for each
    /// SOT (untiled `ω` for lazy strategies, object layouts for eager/edge).
    ///
    /// The manifest write is the publish point: until it lands (atomically),
    /// the video does not exist. If encoding or writing fails midway, the
    /// partially written directory is removed so no orphan tile files
    /// survive; if the failure was a crash (cleanup impossible), startup
    /// recovery removes the manifest-less directory at the next open.
    pub fn ingest(
        &self,
        name: &str,
        src: &dyn FrameSource,
        fps: u32,
        cfg: StorageConfig,
        layout_for: impl FnMut(usize, Range<u32>) -> TileLayout,
    ) -> Result<(VideoManifest, EncodeStats), StoreError> {
        assert!(
            cfg.sot_frames > 0 && cfg.sot_frames.is_multiple_of(cfg.gop_len),
            "SOT duration must be a positive multiple of the GOP length"
        );
        assert!(
            !name.is_empty() && !name.contains(['/', '\\']),
            "invalid video name"
        );
        let dir = self.root.join(name);
        if self.io.exists(&dir) {
            // Unpublish first: the manifest is removed (one atomic unlink)
            // before the tree, so a crash mid-removal — which unlinks
            // entries in unspecified order — always leaves a manifest-less
            // directory for recovery to reap, never a manifest naming
            // already-deleted tile files.
            let manifest_path = dir.join("manifest.json");
            if self.io.exists(&manifest_path) {
                self.io.remove_file(&manifest_path)?;
            }
            self.io.remove_dir_all(&dir)?;
        }
        self.io.create_dir_all(&dir)?;
        // Any cached GOPs of a previous video under this name are stale.
        if let Some(cache) = &self.cache {
            cache.invalidate_video(&self.store_id, name);
        }
        match self.ingest_files(name, src, fps, cfg, layout_for) {
            Ok(ok) => {
                // The video directory's own name in the store root must be
                // durable for the publish to survive a power cut.
                self.io.sync_dir(&self.root)?;
                Ok(ok)
            }
            Err(e) => {
                // Best-effort: under an injected crash these removals fail
                // too (as they would after kill -9) and startup recovery
                // reaps the manifest-less directory instead.
                let _ = self.io.remove_dir_all(&dir);
                Err(e)
            }
        }
    }

    fn ingest_files(
        &self,
        name: &str,
        src: &dyn FrameSource,
        fps: u32,
        cfg: StorageConfig,
        mut layout_for: impl FnMut(usize, Range<u32>) -> TileLayout,
    ) -> Result<(VideoManifest, EncodeStats), StoreError> {
        let mut sots = Vec::new();
        let mut total = EncodeStats::default();
        let mut start = 0u32;
        let mut sot_idx = 0usize;
        while start < src.len() {
            let end = (start + cfg.sot_frames).min(src.len());
            let layout = layout_for(sot_idx, start..end);
            layout.check_covers(src.width(), src.height())?;
            let slice = SliceSource::new(src, start, end - start);
            let (tiles, stats) =
                encode_video(&slice, &layout, &cfg.encoder(), cfg.parallel_encode)?;
            total += stats;
            self.write_sot_files(name, start, end, &tiles)?;
            sots.push(SotEntry {
                start,
                end,
                layout,
                retile_count: 0,
                tile_codecs: tiles.iter().map(|t| t.codec.id()).collect(),
            });
            start = end;
            sot_idx += 1;
        }

        let manifest = VideoManifest {
            name: name.to_string(),
            width: src.width(),
            height: src.height(),
            fps,
            frame_count: src.len(),
            config: cfg,
            sots,
        };
        self.save_manifest(&manifest)?;
        Ok((manifest, total))
    }

    /// Loads a video's manifest.
    pub fn load_manifest(&self, name: &str) -> Result<VideoManifest, StoreError> {
        let path = self.root.join(name).join("manifest.json");
        if !self.io.exists(&path) {
            return Err(StoreError::NotFound(format!("video '{name}'")));
        }
        Ok(serde_json::from_slice(&self.io.read(&path)?)?)
    }

    /// Persists a manifest (after retiling) atomically: the new content is
    /// written to a temporary file, fsynced, and renamed over
    /// `manifest.json`, so a crash leaves either the old or the new
    /// manifest — never a torn mix.
    pub fn save_manifest(&self, manifest: &VideoManifest) -> Result<(), StoreError> {
        let dir = self.root.join(&manifest.name);
        let tmp = dir.join(format!("manifest.json{TMP_SUFFIX}"));
        self.io.write(&tmp, &serde_json::to_vec_pretty(manifest)?)?;
        self.io.rename(&tmp, &dir.join("manifest.json"))?;
        Ok(())
    }

    /// Reads one tile file of one SOT.
    pub fn read_tile(
        &self,
        manifest: &VideoManifest,
        sot_idx: usize,
        tile_idx: u32,
    ) -> Result<TileVideo, StoreError> {
        let sot = manifest
            .sots
            .get(sot_idx)
            .ok_or_else(|| StoreError::NotFound(format!("SOT {sot_idx}")))?;
        let path = self.tile_path(&manifest.name, sot, tile_idx);
        if !self.io.exists(&path) {
            return Err(StoreError::NotFound(path.display().to_string()));
        }
        Ok(TileVideo::from_bytes(&self.io.read(&path)?)?)
    }

    /// Plans the decode of a set of tiles of one SOT over a *local* frame
    /// range: one [`TileDecodeRequest`] per tile. Planning is pure — the
    /// work happens in [`exec::execute`].
    pub fn plan_decode_tiles(
        &self,
        manifest: &VideoManifest,
        sot_idx: usize,
        tile_indices: &[u32],
        local_frames: Range<u32>,
    ) -> Result<Vec<TileDecodeRequest>, StoreError> {
        let sot = manifest
            .sots
            .get(sot_idx)
            .ok_or_else(|| StoreError::NotFound(format!("SOT {sot_idx}")))?;
        if local_frames.start >= local_frames.end || local_frames.end > sot.len() {
            return Err(StoreError::NotFound(format!(
                "local frames {local_frames:?} of SOT {sot_idx}"
            )));
        }
        Ok(tile_indices
            .iter()
            .map(|&tile| TileDecodeRequest {
                sot_idx,
                tile,
                local_span: local_frames.clone(),
            })
            .collect())
    }

    /// Decodes a set of tiles of one SOT over a *local* frame range through
    /// the parallel execution pipeline, returning per-tile frames plus
    /// exact accounting of the decode work (cache reuse excluded — see
    /// [`VideoStore::decode_tiles_cached`] for the cache counters).
    pub fn decode_tiles(
        &self,
        manifest: &VideoManifest,
        sot_idx: usize,
        tile_indices: &[u32],
        local_frames: Range<u32>,
    ) -> Result<(DecodedTiles, DecodeStats), StoreError> {
        let (tiles, stats, _) =
            self.decode_tiles_cached(manifest, sot_idx, tile_indices, local_frames)?;
        Ok((tiles, stats))
    }

    /// [`VideoStore::decode_tiles`] with cache-reuse accounting included.
    pub fn decode_tiles_cached(
        &self,
        manifest: &VideoManifest,
        sot_idx: usize,
        tile_indices: &[u32],
        local_frames: Range<u32>,
    ) -> Result<(DecodedTiles, DecodeStats, CacheStats), StoreError> {
        let plan = self.plan_decode_tiles(manifest, sot_idx, tile_indices, local_frames)?;
        let (decoded, stats, cache, _shared) = exec::execute(self, manifest, &plan)?;
        let out = decoded.into_iter().map(|d| (d.tile, d.frames)).collect();
        Ok((out, stats, cache))
    }

    /// Re-encodes one SOT under `new_layout` (the incremental policies'
    /// re-tile operation). Updates and persists the manifest.
    ///
    /// Runs the atomic commit protocol, so a crash at any point leaves the
    /// video entirely in the pre- or post-retile epoch once recovery runs:
    ///
    /// 1. the new tile files are written (each fsynced) under a *staging*
    ///    directory invisible to readers;
    /// 2. a commit record carrying the full post-retile manifest is written
    ///    to a temp name, fsynced, and atomically renamed into place — the
    ///    **commit point**;
    /// 3. the staging directory is renamed to the new epoch-stamped SOT
    ///    directory, the manifest atomically rewritten, and the commit
    ///    record garbage-collected; the superseded epoch's directory is
    ///    then reclaimed (immediately here, deferred in
    ///    [`VideoStore::retile_deferred`]).
    ///
    /// A crash before step 2 rolls back (staging is discarded at the next
    /// open); a crash after it rolls forward (recovery finishes step 3).
    /// If this method returns an error *after* the commit point, the
    /// handle's manifest is still advanced to the committed epoch — the
    /// commit record is the durable truth — and the surviving record is
    /// finished by the next re-tile of the video or the next open. Reads
    /// of the affected SOT may fail until then; they never observe a torn
    /// mix of epochs.
    ///
    /// This wrapper reclaims the superseded epoch's directory immediately
    /// — correct when no reader holds the old manifest snapshot. The
    /// `Tasm` facade uses [`VideoStore::retile_deferred`] instead and GCs
    /// through its epoch refcounts.
    pub fn retile(
        &self,
        manifest: &mut VideoManifest,
        sot_idx: usize,
        new_layout: TileLayout,
    ) -> Result<RetileStats, StoreError> {
        let (stats, retired) = self.retile_deferred(manifest, sot_idx, new_layout)?;
        if let Some(old) = retired {
            self.gc_epoch(&manifest.name, old)?;
        }
        Ok(stats)
    }

    /// [`VideoStore::retile`] without the immediate old-epoch reclaim: the
    /// commit publishes the new epoch-stamped SOT directory and manifest
    /// while the superseded directory stays on disk, readable by any
    /// pinned pre-retile manifest snapshot. Returns the [`RetiredEpoch`]
    /// to hand to [`VideoStore::gc_epoch`] once those readers drain
    /// (`None` when the layout was unchanged and nothing committed).
    pub fn retile_deferred(
        &self,
        manifest: &mut VideoManifest,
        sot_idx: usize,
        new_layout: TileLayout,
    ) -> Result<(RetileStats, Option<RetiredEpoch>), StoreError> {
        new_layout.check_covers(manifest.width, manifest.height)?;
        let sot = manifest
            .sots
            .get(sot_idx)
            .ok_or_else(|| StoreError::NotFound(format!("SOT {sot_idx}")))?
            .clone();
        if sot.layout == new_layout {
            return Ok((RetileStats::default(), None));
        }

        // Finish any committed-but-incomplete earlier re-tile of this video
        // first: writing a *new* commit record while an old one survives
        // would let the next open resurrect the old record's manifest
        // snapshot and erase this re-tile. If the pending record cannot be
        // completed now, this re-tile must not proceed.
        self.finish_pending_commits(&manifest.name)?;

        // Decode the SOT in full from its current tiles, compositing each
        // tile into place. (Homomorphic stitching only splices DCT streams;
        // decode-and-blit handles mixed-codec layouts too.)
        let old_tile_count = sot.layout.tile_count();
        let tiles: Vec<TileVideo> = (0..old_tile_count)
            .map(|t| self.read_tile(manifest, sot_idx, t))
            .collect::<Result<_, _>>()?;
        let mut decode = DecodeStats::new();
        let mut frames: Vec<Frame> = (0..sot.len())
            .map(|_| Frame::black(manifest.width, manifest.height))
            .collect();
        for ((_, rect), tile) in sot.layout.tiles().zip(&tiles) {
            let (tile_frames, s) = tile.decode_all()?;
            decode += s;
            for (dst, src) in frames.iter_mut().zip(&tile_frames) {
                dst.blit(src, src.rect(), rect.x, rect.y);
            }
        }

        // Re-encode under the new layout.
        let src = VecFrameSource::new(frames);
        let (new_tiles, encode) = encode_video(
            &src,
            &new_layout,
            &manifest.config.encoder(),
            manifest.config.parallel_encode,
        )?;

        // Stage the new tile files next to (not over) the live ones.
        let video_dir = self.root.join(&manifest.name);
        let staging = video_dir.join(staging_dir_name(sot.start, sot.end));
        if self.io.exists(&staging) {
            // Residue of an earlier failed attempt in this process (opens
            // clean it up, but the store may not have been reopened).
            self.io.remove_dir_all(&staging)?;
        }
        self.write_tiles(&staging, &new_tiles)?;

        // Commit: publish the epoch-stamped record atomically.
        let mut new_manifest = manifest.clone();
        {
            let entry = &mut new_manifest.sots[sot_idx];
            entry.layout = new_layout;
            entry.retile_count += 1;
            entry.tile_codecs = new_tiles.iter().map(|t| t.codec.id()).collect();
        }
        let record = CommitRecord {
            sot_start: sot.start,
            sot_end: sot.end,
            manifest: new_manifest.clone(),
        };
        let commit = video_dir.join(commit_file_name(sot.start, sot.end));
        let commit_tmp = video_dir.join(format!(
            "{}{TMP_SUFFIX}",
            commit_file_name(sot.start, sot.end)
        ));
        self.io
            .write(&commit_tmp, &serde_json::to_vec_pretty(&record)?)?;
        self.io.rename(&commit_tmp, &commit)?; // ← commit point

        // Complete: swap directories, rewrite the manifest, drop the
        // record — exactly the steps recovery's roll-forward replays after
        // a crash. Completion is idempotent, so a *transient* failure gets
        // one immediate retry before the error surfaces; a dead disk fails
        // both attempts and the next re-tile or open finishes the job.
        let completion = self
            .roll_forward(&video_dir, &record, &commit)
            .or_else(|_| self.roll_forward(&video_dir, &record, &commit));

        // Past the commit point the re-tile has logically happened whether
        // or not completion succeeded — the handle's manifest must advance
        // either way, so a later re-tile through this handle builds on (and
        // never silently erases) this one. Cached GOPs of the old epoch
        // stay valid (cache keys carry the layout epoch) and are reclaimed
        // with the epoch by `gc_epoch`.
        *manifest = new_manifest;
        completion?;
        Ok((
            RetileStats { decode, encode },
            Some(RetiredEpoch {
                sot_start: sot.start,
                sot_end: sot.end,
                retile_count: sot.retile_count,
            }),
        ))
    }

    /// Reclaims one retired SOT layout epoch: removes its tile directory
    /// (through the [`StorageIo`] shim, so the crash-point sweep covers
    /// it) and eagerly drops its decoded-GOP cache entries. Idempotent —
    /// a missing directory is success, so a crash mid-GC is resolved by
    /// simply running it again (or by startup recovery, which reaps
    /// retired epoch directories itself). Refuses to reclaim an epoch the
    /// on-disk manifest still references.
    pub fn gc_epoch(&self, video: &str, old: RetiredEpoch) -> Result<(), StoreError> {
        // Guard: never remove a live epoch. The manifest is the truth for
        // which epoch each SOT currently serves reads from.
        if let Ok(manifest) = self.load_manifest(video) {
            if manifest.sots.iter().any(|s| {
                s.start == old.sot_start
                    && s.end == old.sot_end
                    && s.retile_count == old.retile_count
            }) {
                return Err(StoreError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "refusing to GC live epoch r{} of '{video}' SOT {}..{}",
                        old.retile_count, old.sot_start, old.sot_end
                    ),
                )));
            }
        }
        let dir =
            self.root
                .join(video)
                .join(sot_dir_name(old.sot_start, old.sot_end, old.retile_count));
        if self.io.exists(&dir) {
            self.io.remove_dir_all(&dir)?;
            self.io.sync_dir(&self.root.join(video))?;
        }
        if let Some(cache) = &self.cache {
            cache.invalidate_sot_epoch(&self.store_id, video, old.sot_start, old.retile_count);
        }
        Ok(())
    }

    /// Completes every surviving commit record of `name` (there is at most
    /// one short of outside interference): the in-process equivalent of
    /// recovery's roll-forward, run before a new re-tile may commit.
    fn finish_pending_commits(&self, name: &str) -> Result<(), StoreError> {
        let dir = self.root.join(name);
        for entry in self.io.list_dir(&dir)? {
            if parse_commit_name(&entry_name(&entry)).is_none() {
                continue;
            }
            let record: CommitRecord = serde_json::from_slice(&self.io.read(&entry)?)?;
            self.roll_forward(&dir, &record, &entry)?;
            if let Some(cache) = &self.cache {
                cache.invalidate_video(&self.store_id, name);
            }
        }
        Ok(())
    }

    /// Total bytes of all tile files of a video.
    pub fn video_size_bytes(&self, manifest: &VideoManifest) -> Result<u64, StoreError> {
        let mut total = 0;
        for (i, sot) in manifest.sots.iter().enumerate() {
            for t in 0..sot.layout.tile_count() {
                let path = self.tile_path(&manifest.name, sot, t);
                total += self
                    .io
                    .file_len(&path)
                    .map_err(|_| StoreError::NotFound(format!("SOT {i} tile {t}")))?;
            }
        }
        Ok(total)
    }

    /// Raw on-disk bytes of one tile file — the replication payload. Bytes
    /// are shipped verbatim so a backup's tile files end up byte-identical
    /// to the primary's; bit-exact answers then fall out of deterministic
    /// decode over identical inputs.
    pub fn tile_file_bytes(
        &self,
        manifest: &VideoManifest,
        sot_idx: usize,
        tile_idx: u32,
    ) -> Result<Vec<u8>, StoreError> {
        let sot = manifest
            .sots
            .get(sot_idx)
            .ok_or_else(|| StoreError::NotFound(format!("SOT {sot_idx}")))?;
        let path = self.tile_path(&manifest.name, sot, tile_idx);
        if !self.io.exists(&path) {
            return Err(StoreError::NotFound(path.display().to_string()));
        }
        Ok(self.io.read(&path)?)
    }

    /// Installs a complete replicated video: one `Vec<u8>` of raw tile-file
    /// bytes per tile of every SOT (outer index = SOT index), plus the
    /// primary's manifest verbatim. Mirrors `ingest`'s crash story: the
    /// directory is rewritten from scratch and the manifest write is the
    /// publish point, so a crash mid-install leaves a manifest-less
    /// directory for startup recovery to reap. Every payload must parse as
    /// a tile container before anything is written.
    pub fn install_video(
        &self,
        manifest: &VideoManifest,
        sots: &[Vec<Vec<u8>>],
    ) -> Result<(), StoreError> {
        validate_replica_payload(manifest, sots)?;
        let name = manifest.name.as_str();
        let dir = self.root.join(name);
        if self.io.exists(&dir) {
            // Unpublish first, exactly as `ingest` does (see above).
            let manifest_path = dir.join("manifest.json");
            if self.io.exists(&manifest_path) {
                self.io.remove_file(&manifest_path)?;
            }
            self.io.remove_dir_all(&dir)?;
        }
        self.io.create_dir_all(&dir)?;
        if let Some(cache) = &self.cache {
            cache.invalidate_video(&self.store_id, name);
        }
        let write_all = || -> Result<(), StoreError> {
            for (sot, tiles) in manifest.sots.iter().zip(sots) {
                // Replicas preserve each SOT's `retile_count`, so the
                // backup's directory names match the primary's.
                let sot_dir = self.sot_dir(name, sot);
                self.write_raw_tiles(&sot_dir, tiles)?;
            }
            self.save_manifest(manifest)?;
            Ok(())
        };
        match write_all() {
            Ok(()) => {
                self.io.sync_dir(&self.root)?;
                Ok(())
            }
            Err(e) => {
                let _ = self.io.remove_dir_all(&dir);
                Err(e)
            }
        }
    }

    /// Installs one replicated SOT of an *existing* video via the PR 5
    /// staged-commit protocol: tile bytes land in a staging directory, the
    /// commit record (carrying `new_manifest`) is atomically renamed into
    /// place — the commit point — and roll-forward swaps the directory and
    /// rewrites the manifest. A crash at any step is resolved by the same
    /// startup recovery that resolves an interrupted local re-tile.
    ///
    /// Reclaims the epoch the install supersedes immediately; a replica
    /// serving pinned readers uses [`VideoStore::install_sot_deferred`]
    /// and GCs when they drain.
    pub fn install_sot(
        &self,
        new_manifest: &VideoManifest,
        sot_idx: usize,
        tiles: &[Vec<u8>],
    ) -> Result<(), StoreError> {
        let retired = self.install_sot_deferred(new_manifest, sot_idx, tiles)?;
        if let Some(old) = retired {
            self.gc_epoch(&new_manifest.name, old)?;
        }
        Ok(())
    }

    /// [`VideoStore::install_sot`] without the immediate reclaim of the
    /// superseded layout epoch: returns the [`RetiredEpoch`] (if the
    /// install replaced one) for the caller to [`VideoStore::gc_epoch`]
    /// once its pinned readers drain.
    pub fn install_sot_deferred(
        &self,
        new_manifest: &VideoManifest,
        sot_idx: usize,
        tiles: &[Vec<u8>],
    ) -> Result<Option<RetiredEpoch>, StoreError> {
        let sot = new_manifest
            .sots
            .get(sot_idx)
            .ok_or_else(|| StoreError::NotFound(format!("SOT {sot_idx}")))?;
        validate_replica_sot(sot, tiles)?;
        let name = new_manifest.name.as_str();
        self.finish_pending_commits(name)?;
        // The epoch this install supersedes, per the (post-roll-forward)
        // on-disk manifest — read before the commit below rewrites it.
        let retired = self.load_manifest(name)?.sots.iter().find_map(|old| {
            (old.start == sot.start && old.end == sot.end && old.retile_count != sot.retile_count)
                .then_some(RetiredEpoch {
                    sot_start: old.start,
                    sot_end: old.end,
                    retile_count: old.retile_count,
                })
        });

        let video_dir = self.root.join(name);
        let staging = video_dir.join(staging_dir_name(sot.start, sot.end));
        if self.io.exists(&staging) {
            self.io.remove_dir_all(&staging)?;
        }
        self.write_raw_tiles(&staging, tiles)?;

        let record = CommitRecord {
            sot_start: sot.start,
            sot_end: sot.end,
            manifest: new_manifest.clone(),
        };
        let commit = video_dir.join(commit_file_name(sot.start, sot.end));
        let commit_tmp = video_dir.join(format!(
            "{}{TMP_SUFFIX}",
            commit_file_name(sot.start, sot.end)
        ));
        self.io
            .write(&commit_tmp, &serde_json::to_vec_pretty(&record)?)?;
        self.io.rename(&commit_tmp, &commit)?; // ← commit point

        let completion = self
            .roll_forward(&video_dir, &record, &commit)
            .or_else(|_| self.roll_forward(&video_dir, &record, &commit));
        // Cached GOPs keyed at the *installed* epoch (possible only if a
        // caller overwrote an epoch in place) are stale now; older epochs'
        // entries stay valid and die with their epoch in `gc_epoch`.
        if let Some(cache) = &self.cache {
            cache.invalidate_sot_epoch(&self.store_id, name, sot.start, sot.retile_count);
        }
        completion?;
        Ok(retired)
    }

    /// Removes a video from the store (rebalance GC). The manifest is
    /// unlinked first — one atomic unpublish — so a crash mid-removal
    /// leaves a manifest-less directory that startup recovery reaps.
    pub fn remove_video(&self, name: &str) -> Result<(), StoreError> {
        let dir = self.root.join(name);
        let manifest_path = dir.join("manifest.json");
        if !self.io.exists(&manifest_path) {
            return Err(StoreError::NotFound(format!("video '{name}'")));
        }
        self.io.remove_file(&manifest_path)?;
        self.io.remove_dir_all(&dir)?;
        self.io.sync_dir(&self.root)?;
        if let Some(cache) = &self.cache {
            cache.invalidate_video(&self.store_id, name);
        }
        Ok(())
    }

    /// Writes raw (already-encoded) tile-file bytes into `dir` with the
    /// same durability barrier as `write_tiles`: every file fsynced, then
    /// the directory once for the batch.
    fn write_raw_tiles(&self, dir: &Path, tiles: &[Vec<u8>]) -> Result<(), StoreError> {
        self.io.create_dir_all(dir)?;
        for (i, bytes) in tiles.iter().enumerate() {
            self.io.write(&dir.join(tile_file_name(i as u32)), bytes)?;
        }
        self.io.sync_dir(dir)?;
        Ok(())
    }

    /// A SOT's directory at the layout epoch its manifest entry records —
    /// the only path derivation in the store, so a pinned manifest
    /// snapshot keeps resolving to its own epoch's files no matter how
    /// many re-tiles commit after it.
    fn sot_dir(&self, name: &str, sot: &SotEntry) -> PathBuf {
        self.root
            .join(name)
            .join(sot_dir_name(sot.start, sot.end, sot.retile_count))
    }

    fn tile_path(&self, name: &str, sot: &SotEntry, tile: u32) -> PathBuf {
        self.sot_dir(name, sot).join(tile_file_name(tile))
    }

    fn write_sot_files(
        &self,
        name: &str,
        start: u32,
        end: u32,
        tiles: &[TileVideo],
    ) -> Result<(), StoreError> {
        // Ingest always writes layout epoch 0.
        let dir = self.root.join(name).join(sot_dir_name(start, end, 0));
        self.write_tiles(&dir, tiles)
    }

    /// Writes one tile file per entry of `tiles` into `dir` (created if
    /// missing). Every file is fsynced, then the directory itself — one
    /// barrier for the whole batch — so the files *and their names* are
    /// durable before any commit point that depends on them.
    fn write_tiles(&self, dir: &Path, tiles: &[TileVideo]) -> Result<(), StoreError> {
        self.io.create_dir_all(dir)?;
        for (i, tile) in tiles.iter().enumerate() {
            self.io
                .write(&dir.join(tile_file_name(i as u32)), &tile.to_bytes())?;
        }
        self.io.sync_dir(dir)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Startup recovery
    // ------------------------------------------------------------------

    /// Scans every video directory for residue of interrupted operations
    /// and restores the two-epoch invariant. Idempotent: recovery itself
    /// can crash at any operation and the next open finishes the job.
    fn recover_all(&self) -> Result<RecoveryReport, StoreError> {
        let mut report = RecoveryReport::default();
        for entry in self.io.list_dir(&self.root)? {
            if !self.io.is_dir(&entry) {
                continue;
            }
            let Some(video) = entry.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            self.recover_video_dir(&entry, &video, &mut report)?;
        }
        Ok(report)
    }

    fn recover_video_dir(
        &self,
        dir: &Path,
        video: &str,
        report: &mut RecoveryReport,
    ) -> Result<(), StoreError> {
        // 0. Only touch directories that are recognizably ours: a manifest,
        //    tile-store residue (SOT/staging dirs, commit records, manifest
        //    temp), or a completely empty directory (an ingest that died at
        //    its first operation). A foreign directory — e.g. the store was
        //    opened at a wrong or shared path — is left strictly alone.
        let entries = self.io.list_dir(dir)?;
        let is_ours = self.io.exists(&dir.join("manifest.json"))
            || entries.is_empty()
            || entries.iter().any(|e| {
                let name = entry_name(e);
                parse_sot_name(&name).is_some()
                    || parse_staging_name(&name).is_some()
                    || parse_commit_name(&name).is_some()
                    || name == format!("manifest.json{TMP_SUFFIX}")
            });
        if !is_ours {
            return Ok(());
        }

        // 1. Interrupted atomic writes: the temp file never became visible
        //    under its final name, so it holds no committed state.
        for entry in self.io.list_dir(dir)? {
            let name = entry_name(&entry);
            if name.ends_with(TMP_SUFFIX) && !self.io.is_dir(&entry) {
                self.io.remove_file(&entry)?;
                report.actions.push(RecoveryAction::RemovedTemp {
                    video: video.to_string(),
                    file: name,
                });
            }
        }

        // 2. Commit records: the re-tile passed its commit point — finish
        //    it (roll forward). Records are fsynced before the rename that
        //    publishes them, so an unparsable record cannot exist short of
        //    outside interference; treat one as pre-commit garbage.
        for entry in self.io.list_dir(dir)? {
            let name = entry_name(&entry);
            let Some((start, end)) = parse_commit_name(&name) else {
                continue;
            };
            match serde_json::from_slice::<CommitRecord>(&self.io.read(&entry)?) {
                Ok(record) => {
                    self.roll_forward(dir, &record, &entry)?;
                    report.actions.push(RecoveryAction::RolledForward {
                        video: video.to_string(),
                        sot_start: record.sot_start,
                        sot_end: record.sot_end,
                    });
                    if let Some(cache) = &self.cache {
                        cache.invalidate_video(&self.store_id, video);
                    }
                }
                Err(_) => {
                    let staging = dir.join(staging_dir_name(start, end));
                    if self.io.exists(&staging) {
                        self.io.remove_dir_all(&staging)?;
                    }
                    self.io.remove_file(&entry)?;
                    report.actions.push(RecoveryAction::RolledBack {
                        video: video.to_string(),
                        sot_start: start,
                        sot_end: end,
                    });
                }
            }
        }

        // 3. Staging directories without a commit record: the re-tile never
        //    committed — discard (roll back).
        for entry in self.io.list_dir(dir)? {
            let name = entry_name(&entry);
            let Some((start, end)) = parse_staging_name(&name) else {
                continue;
            };
            if self.io.is_dir(&entry) {
                self.io.remove_dir_all(&entry)?;
                report.actions.push(RecoveryAction::RolledBack {
                    video: video.to_string(),
                    sot_start: start,
                    sot_end: end,
                });
            }
        }

        // 3.5. Superseded layout epochs: a SOT directory whose range the
        //    manifest covers at a *different* retile count is a retired
        //    epoch whose GC was interrupted (or deferred and never run —
        //    no process survived to hold a pin on it). Reclaim it so the
        //    crash lands in exactly one epoch set. Ranges the manifest
        //    does not cover at all are left for fsck to flag.
        if let Ok(bytes) = self.io.read(&dir.join("manifest.json")) {
            if let Ok(manifest) = serde_json::from_slice::<VideoManifest>(&bytes) {
                for entry in self.io.list_dir(dir)? {
                    let Some((start, end, rc)) = parse_sot_name(&entry_name(&entry)) else {
                        continue;
                    };
                    let superseded = manifest
                        .sots
                        .iter()
                        .any(|s| s.start == start && s.end == end && s.retile_count != rc);
                    if superseded && self.io.is_dir(&entry) {
                        self.io.remove_dir_all(&entry)?;
                        report.actions.push(RecoveryAction::ReclaimedEpoch {
                            video: video.to_string(),
                            sot_start: start,
                            sot_end: end,
                            epoch: rc,
                        });
                        if let Some(cache) = &self.cache {
                            cache.invalidate_sot_epoch(&self.store_id, video, start, rc);
                        }
                    }
                }
            }
        }

        // 4. No manifest after the above: an ingest crashed before its
        //    publish point — the video never existed.
        if !self.io.exists(&dir.join("manifest.json")) {
            self.io.remove_dir_all(dir)?;
            report.actions.push(RecoveryAction::RemovedPartialVideo {
                video: video.to_string(),
            });
            if let Some(cache) = &self.cache {
                cache.invalidate_video(&self.store_id, video);
            }
        }
        Ok(())
    }

    /// Replays the post-commit steps of the re-tile protocol. Idempotent:
    /// safe to re-run from any intermediate crash state.
    fn roll_forward(
        &self,
        dir: &Path,
        record: &CommitRecord,
        commit_path: &Path,
    ) -> Result<(), StoreError> {
        let staging = dir.join(staging_dir_name(record.sot_start, record.sot_end));
        // The staging directory is promoted to the *new* epoch's name (the
        // record's manifest is the post-retile truth); the superseded
        // epoch's directory is untouched here — it stays readable for
        // pinned snapshots until `gc_epoch` or recovery reclaims it.
        let new_rc = record
            .manifest
            .sots
            .iter()
            .find(|s| s.start == record.sot_start && s.end == record.sot_end)
            .map(|s| s.retile_count)
            .ok_or_else(|| {
                StoreError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "commit record for SOT {}..{} names a SOT absent from its manifest",
                        record.sot_start, record.sot_end
                    ),
                ))
            })?;
        let final_dir = dir.join(sot_dir_name(record.sot_start, record.sot_end, new_rc));
        if self.io.exists(&staging) {
            if self.io.exists(&final_dir) {
                self.io.remove_dir_all(&final_dir)?;
            }
            self.io.rename(&staging, &final_dir)?;
        }
        // If staging is gone the swap already happened; either way the
        // record holds the authoritative post-retile manifest.
        self.save_manifest(&record.manifest)?;
        self.io.remove_file(commit_path)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // fsck
    // ------------------------------------------------------------------

    /// Validates every video in the store: manifest readable, SOT chain
    /// contiguous, every tile file present with a container header that
    /// matches the manifest (dimensions, GOP length, frame count, exact
    /// length), and no unaccounted files. Read-only.
    pub fn fsck(&self) -> Result<FsckReport, StoreError> {
        self.fsck_with(&[])
    }

    /// [`VideoStore::fsck`] with an allow-list of sidecar file names the
    /// caller places inside video directories (e.g. the CLI's scene spec):
    /// those are not flagged as stray. The core store itself needs no
    /// extras.
    pub fn fsck_with(&self, allowed_extras: &[&str]) -> Result<FsckReport, StoreError> {
        let mut report = FsckReport::default();
        for entry in self.io.list_dir(&self.root)? {
            if self.io.is_dir(&entry) {
                self.fsck_video_into(&entry_name(&entry), allowed_extras, &mut report);
            }
        }
        Ok(report)
    }

    /// [`VideoStore::fsck`] restricted to one video. Errors if the video's
    /// directory does not exist at all.
    pub fn fsck_video(&self, name: &str) -> Result<FsckReport, StoreError> {
        self.fsck_video_with(name, &[])
    }

    /// [`VideoStore::fsck_video`] with a caller sidecar allow-list (see
    /// [`VideoStore::fsck_with`]).
    pub fn fsck_video_with(
        &self,
        name: &str,
        allowed_extras: &[&str],
    ) -> Result<FsckReport, StoreError> {
        if !self.io.is_dir(&self.root.join(name)) {
            return Err(StoreError::NotFound(format!("video '{name}'")));
        }
        let mut report = FsckReport::default();
        self.fsck_video_into(name, allowed_extras, &mut report);
        Ok(report)
    }

    /// Bounded-read container validation of one tile file. Only the header
    /// and frame table are read; the rare container whose frame table
    /// outgrows the prefix is re-read in full.
    fn validate_tile_header(&self, path: &Path) -> Result<ContainerHeader, TileProblem> {
        const HEADER_PREFIX: usize = 64 << 10;
        // A file that exists but cannot be read (EACCES, EIO from a dying
        // disk) is damage, not absence — report it faithfully.
        let io_problem = |e: io::Error| {
            if self.io.exists(path) {
                TileProblem::Unreadable(e.to_string())
            } else {
                TileProblem::Missing
            }
        };
        let total = self.io.file_len(path).map_err(io_problem)?;
        let head = self
            .io
            .read_prefix(path, HEADER_PREFIX)
            .map_err(io_problem)?;
        if head.len() as u64 == total {
            return TileVideo::validate(&head).map_err(TileProblem::Invalid);
        }
        match TileVideo::validate_header(&head, total) {
            // Ambiguous truncation: the table may simply outgrow the
            // prefix — judge from the whole file.
            Err(ContainerError::Truncated) => {
                let all = self.io.read(path).map_err(io_problem)?;
                TileVideo::validate(&all).map_err(TileProblem::Invalid)
            }
            r => r.map_err(TileProblem::Invalid),
        }
    }

    fn fsck_video_into(&self, video: &str, allowed_extras: &[&str], report: &mut FsckReport) {
        report.videos_checked += 1;
        let dir = self.root.join(video);
        let manifest = match self.load_manifest(video) {
            Ok(m) => m,
            Err(e) => {
                report.issues.push(FsckIssue::ManifestUnreadable {
                    video: video.to_string(),
                    detail: e.to_string(),
                });
                return;
            }
        };

        // SOT chain: contiguous frames covering exactly 0..frame_count.
        let mut expected_start = 0u32;
        for (i, sot) in manifest.sots.iter().enumerate() {
            if sot.start != expected_start || sot.end <= sot.start {
                report.issues.push(FsckIssue::SotChainBroken {
                    video: video.to_string(),
                    detail: format!(
                        "SOT {i} spans {}..{} but frame {expected_start} comes next",
                        sot.start, sot.end
                    ),
                });
            }
            expected_start = sot.end;
        }
        if expected_start != manifest.frame_count {
            report.issues.push(FsckIssue::SotChainBroken {
                video: video.to_string(),
                detail: format!(
                    "SOTs cover 0..{expected_start} of {} frames",
                    manifest.frame_count
                ),
            });
        }

        // Tile files vs manifest, container headers included. Only a
        // bounded prefix (header + frame table) of each file is read; the
        // exact-length check compares the declared size against the file
        // length, so payload bytes never enter memory.
        for sot in &manifest.sots {
            for t in 0..sot.layout.tile_count() {
                let path = self.tile_path(video, sot, t);
                let header = match self.validate_tile_header(&path) {
                    Ok(h) => h,
                    Err(TileProblem::Missing) => {
                        report.issues.push(FsckIssue::MissingTile {
                            video: video.to_string(),
                            sot_start: sot.start,
                            tile: t,
                        });
                        continue;
                    }
                    Err(TileProblem::Unreadable(detail)) => {
                        report.issues.push(FsckIssue::TileCorrupt {
                            video: video.to_string(),
                            sot_start: sot.start,
                            tile: t,
                            detail: format!("unreadable: {detail}"),
                        });
                        continue;
                    }
                    Err(TileProblem::Invalid(e)) => {
                        report.issues.push(FsckIssue::TileCorrupt {
                            video: video.to_string(),
                            sot_start: sot.start,
                            tile: t,
                            detail: e.to_string(),
                        });
                        continue;
                    }
                };
                report.tiles_checked += 1;
                let rect = sot.layout.tile_rect_by_index(t);
                let mut mismatch = |detail: String| {
                    report.issues.push(FsckIssue::TileMismatch {
                        video: video.to_string(),
                        sot_start: sot.start,
                        tile: t,
                        detail,
                    });
                };
                if header.width != rect.w || header.height != rect.h {
                    mismatch(format!(
                        "container is {}x{}, layout rect is {}x{}",
                        header.width, header.height, rect.w, rect.h
                    ));
                }
                if header.gop_len != manifest.config.gop_len {
                    mismatch(format!(
                        "container GOP length {} vs configured {}",
                        header.gop_len, manifest.config.gop_len
                    ));
                }
                if header.frame_count != sot.len() {
                    mismatch(format!(
                        "container holds {} frames, SOT spans {}",
                        header.frame_count,
                        sot.len()
                    ));
                }
                if let Some(&declared) = sot.tile_codecs.get(t as usize) {
                    if header.codec.id() != declared {
                        mismatch(format!(
                            "container codec id {} vs manifest codec id {declared}",
                            header.codec.id()
                        ));
                    }
                }
            }

            // Unaccounted entries inside the SOT directory.
            let sot_dir = self.sot_dir(video, sot);
            let expected: std::collections::BTreeSet<String> =
                (0..sot.layout.tile_count()).map(tile_file_name).collect();
            if let Ok(entries) = self.io.list_dir(&sot_dir) {
                for entry in entries {
                    let name = entry_name(&entry);
                    if !expected.contains(&name) {
                        report.issues.push(FsckIssue::Stray {
                            video: video.to_string(),
                            path: format!(
                                "{}/{name}",
                                sot_dir_name(sot.start, sot.end, sot.retile_count)
                            ),
                        });
                    }
                }
            }
        }

        // Unaccounted entries in the video directory: anything other than
        // the manifest, allow-listed extras, and the manifest's SOT dirs.
        if let Ok(entries) = self.io.list_dir(&dir) {
            for entry in entries {
                let name = entry_name(&entry);
                let known_sot = manifest
                    .sots
                    .iter()
                    .any(|s| name == sot_dir_name(s.start, s.end, s.retile_count));
                let allowed =
                    name == "manifest.json" || allowed_extras.contains(&name.as_str()) || known_sot;
                // When recovery was deferred (another live handle holds the
                // store lock), staging/commit/temp entries are plausibly
                // that handle's in-flight re-tiles, not crash residue — and
                // a SOT directory at a superseded epoch of a manifest range
                // is plausibly a retired epoch still pinned by that
                // handle's readers. A concurrent fsck must not call a
                // healthy live store dirty.
                let live_protocol_state = self.recovery.deferred
                    && (parse_staging_name(&name).is_some()
                        || parse_commit_name(&name).is_some()
                        || name.ends_with(TMP_SUFFIX)
                        || parse_sot_name(&name).is_some_and(|(s, e, _)| {
                            manifest.sots.iter().any(|x| x.start == s && x.end == e)
                        }));
                if !allowed && !live_protocol_state {
                    report.issues.push(FsckIssue::Stray {
                        video: video.to_string(),
                        path: name,
                    });
                }
            }
        }
    }
}

/// The on-disk name of a tile file.
/// Rejects a replicated video payload whose shape disagrees with the
/// manifest it claims to realize, before any byte lands on disk.
fn validate_replica_payload(
    manifest: &VideoManifest,
    sots: &[Vec<Vec<u8>>],
) -> Result<(), StoreError> {
    if sots.len() != manifest.sots.len() {
        return Err(invalid_payload(format!(
            "replica payload has {} SOTs, manifest has {}",
            sots.len(),
            manifest.sots.len()
        )));
    }
    for (sot, tiles) in manifest.sots.iter().zip(sots) {
        validate_replica_sot(sot, tiles)?;
    }
    Ok(())
}

/// Every tile payload must parse as a tile container and match the codec
/// the manifest records for its slot.
fn validate_replica_sot(sot: &SotEntry, tiles: &[Vec<u8>]) -> Result<(), StoreError> {
    if tiles.len() as u32 != sot.layout.tile_count() {
        return Err(invalid_payload(format!(
            "SOT {}..{} payload has {} tiles, layout has {}",
            sot.start,
            sot.end,
            tiles.len(),
            sot.layout.tile_count()
        )));
    }
    for (i, bytes) in tiles.iter().enumerate() {
        let tile = TileVideo::from_bytes(bytes)?;
        if sot
            .tile_codecs
            .get(i)
            .is_some_and(|&codec| tile.codec.id() != codec)
        {
            return Err(invalid_payload(format!(
                "SOT {}..{} tile {i} codec disagrees with manifest",
                sot.start, sot.end
            )));
        }
    }
    Ok(())
}

fn invalid_payload(msg: String) -> StoreError {
    StoreError::Io(io::Error::new(io::ErrorKind::InvalidData, msg))
}

fn tile_file_name(tile: u32) -> String {
    format!("tile_{tile:03}.tvf")
}

/// Final path component as an owned string (empty for pathological paths).
fn entry_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_video::{Plane, Rect};

    fn test_source(frames: u32) -> VecFrameSource {
        VecFrameSource::new(
            (0..frames)
                .map(|i| {
                    let mut f = Frame::filled(64, 64, 90, 128, 128);
                    for y in 0..64 {
                        for x in 0..64 {
                            f.set_sample(
                                Plane::Y,
                                x,
                                y,
                                ((x * 3 + y * 5 + i * 2) % 200 + 20) as u8,
                            );
                        }
                    }
                    f.fill_rect(Rect::new((i * 4) % 48, 16, 16, 16), 230, 90, 160);
                    f
                })
                .collect(),
        )
    }

    fn temp_store(tag: &str) -> VideoStore {
        let dir = std::env::temp_dir().join(format!("tasm-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        VideoStore::open(dir).unwrap()
    }

    fn small_cfg() -> StorageConfig {
        StorageConfig {
            gop_len: 5,
            sot_frames: 10,
            parallel_encode: false,
            ..Default::default()
        }
    }

    #[test]
    fn ingest_creates_sots_and_manifest() {
        let store = temp_store("ingest");
        let src = test_source(25);
        let (manifest, stats) = store
            .ingest("v", &src, 30, small_cfg(), |_, _| {
                TileLayout::untiled(64, 64)
            })
            .unwrap();
        assert_eq!(manifest.sots.len(), 3); // 10 + 10 + 5
        assert_eq!(manifest.sots[2].frames(), 20..25);
        assert!(stats.bytes_produced > 0);
        let loaded = store.load_manifest("v").unwrap();
        assert_eq!(loaded, manifest);
        assert!(store.video_size_bytes(&manifest).unwrap() > 0);
    }

    #[test]
    fn sot_lookup_by_frame() {
        let store = temp_store("lookup");
        let src = test_source(25);
        let (m, _) = store
            .ingest("v", &src, 30, small_cfg(), |_, _| {
                TileLayout::untiled(64, 64)
            })
            .unwrap();
        assert_eq!(m.sot_for_frame(0), Some(0));
        assert_eq!(m.sot_for_frame(9), Some(0));
        assert_eq!(m.sot_for_frame(10), Some(1));
        assert_eq!(m.sot_for_frame(24), Some(2));
        assert_eq!(m.sot_for_frame(25), None);
        assert_eq!(m.sots_for_range(5..15), 0..2);
        assert_eq!(m.sots_for_range(10..11), 1..2);
        assert_eq!(m.sots_for_range(0..25), 0..3);
        assert_eq!(m.sots_for_range(30..40), 0..0);
    }

    #[test]
    fn decode_tiles_returns_requested_frames() {
        let store = temp_store("decode");
        let src = test_source(20);
        let layout = TileLayout::uniform(64, 64, 2, 2).unwrap();
        let (m, _) = store
            .ingest("v", &src, 30, small_cfg(), move |_, _| layout.clone())
            .unwrap();
        let (tiles, stats) = store.decode_tiles(&m, 0, &[0, 3], 2..6).unwrap();
        assert_eq!(tiles.len(), 2);
        assert_eq!(tiles[0].1.len(), 4);
        assert!(stats.samples_decoded > 0);
        // Warmup from the GOP start at frame 0 is charged.
        assert_eq!(stats.frames_decoded, 2 * 6);
    }

    #[test]
    fn retile_preserves_content() {
        let store = temp_store("retile");
        let src = test_source(10);
        let (mut m, _) = store
            .ingest("v", &src, 30, small_cfg(), |_, _| {
                TileLayout::untiled(64, 64)
            })
            .unwrap();
        let new_layout = TileLayout::uniform(64, 64, 2, 2).unwrap();
        let stats = store.retile(&mut m, 0, new_layout.clone()).unwrap();
        assert!(stats.encode.bytes_produced > 0);
        assert!(stats.seconds() > 0.0);
        assert_eq!(m.sots[0].layout, new_layout);
        assert_eq!(m.sots[0].retile_count, 1);

        // The re-tiled SOT still decodes to (approximately) the source.
        let (tiles, _) = store.decode_tiles(&m, 0, &[0, 1, 2, 3], 0..10).unwrap();
        let mut composite = Frame::black(64, 64);
        for (t, frames) in &tiles {
            let rect = new_layout.tile_rect_by_index(*t);
            composite.blit(&frames[3], frames[3].rect(), rect.x, rect.y);
        }
        let r = tasm_video::psnr_frames(&src.frame(3), &composite);
        assert!(r.y > 26.0, "retiled PSNR {:.1}", r.y);

        // Manifest on disk reflects the new layout.
        let reloaded = store.load_manifest("v").unwrap();
        assert_eq!(reloaded.sots[0].layout, m.sots[0].layout);
    }

    #[test]
    fn retile_to_same_layout_is_free() {
        let store = temp_store("retile-noop");
        let src = test_source(10);
        let (mut m, _) = store
            .ingest("v", &src, 30, small_cfg(), |_, _| {
                TileLayout::untiled(64, 64)
            })
            .unwrap();
        let stats = store
            .retile(&mut m, 0, TileLayout::untiled(64, 64))
            .unwrap();
        assert_eq!(stats.encode.bytes_produced, 0);
        assert_eq!(m.sots[0].retile_count, 0);
    }

    #[test]
    fn missing_video_reports_not_found() {
        let store = temp_store("missing");
        assert!(matches!(
            store.load_manifest("nope"),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn reingest_replaces_existing_video() {
        let store = temp_store("reingest");
        let src = test_source(10);
        let (m1, _) = store
            .ingest("v", &src, 30, small_cfg(), |_, _| {
                TileLayout::untiled(64, 64)
            })
            .unwrap();
        let layout = TileLayout::uniform(64, 64, 1, 2).unwrap();
        let (m2, _) = store
            .ingest("v", &src, 30, small_cfg(), move |_, _| layout.clone())
            .unwrap();
        assert_ne!(m1.sots[0].layout, m2.sots[0].layout);
        // Old single-tile files are gone; new layout has 2 tiles.
        assert!(store.read_tile(&m2, 0, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "multiple of the GOP")]
    fn sot_must_align_to_gops() {
        let store = temp_store("align");
        let src = test_source(10);
        let cfg = StorageConfig {
            gop_len: 4,
            sot_frames: 10,
            ..Default::default()
        };
        let _ = store.ingest("v", &src, 30, cfg, |_, _| TileLayout::untiled(64, 64));
    }
}
