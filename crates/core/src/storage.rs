//! Tile-based data storage (§3.4.5).
//!
//! TASM stores each tile as a separate video file so that every tile is a
//! spatial random-access point (Figure 1). A video is a concatenation of
//! SOTs (sequences of tiles, §2): each SOT has its own layout and its own
//! directory of tile files, and layouts change only at GOP boundaries.
//!
//! ```text
//! root/<video>/manifest.json
//! root/<video>/sot_000000_000030/tile_000.tvf
//! root/<video>/sot_000000_000030/tile_001.tvf
//! root/<video>/sot_000030_000060/tile_000.tvf
//! ```
//!
//! Re-tiling a SOT ([`VideoStore::retile`]) decodes its current tiles and
//! re-encodes under the new layout — the `R(s, L)` cost in the incremental
//! policies.

use crate::exec::{self, CacheStats, DecodedTileCache, TileDecodeRequest};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tasm_codec::{
    encode_video, ContainerError, DecodeStats, EncodeStats, EncoderConfig, LayoutError,
    StitchError, StitchedVideo, TileLayout, TileVideo,
};
use tasm_video::{Frame, FrameSource, SliceSource, VecFrameSource};

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// Manifest (de)serialization failure.
    Manifest(serde_json::Error),
    /// Codec container failure.
    Container(ContainerError),
    /// Invalid layout for this video.
    Layout(LayoutError),
    /// Stitching failure during retile.
    Stitch(StitchError),
    /// Caller referenced a video/SOT/tile that does not exist.
    NotFound(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Manifest(e) => write!(f, "manifest error: {e}"),
            StoreError::Container(e) => write!(f, "container error: {e}"),
            StoreError::Layout(e) => write!(f, "layout error: {e}"),
            StoreError::Stitch(e) => write!(f, "stitch error: {e}"),
            StoreError::NotFound(what) => write!(f, "not found: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Manifest(e)
    }
}

impl From<ContainerError> for StoreError {
    fn from(e: ContainerError) -> Self {
        StoreError::Container(e)
    }
}

impl From<LayoutError> for StoreError {
    fn from(e: LayoutError) -> Self {
        StoreError::Layout(e)
    }
}

impl From<StitchError> for StoreError {
    fn from(e: StitchError) -> Self {
        StoreError::Stitch(e)
    }
}

/// Encoding parameters for a stored video.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageConfig {
    /// Quantization parameter.
    pub qp: u8,
    /// GOP length in frames (one second at 30 fps by default, §2).
    pub gop_len: u32,
    /// SOT duration in frames; must be a multiple of `gop_len` (layout
    /// duration, §3.4.3).
    pub sot_frames: u32,
    /// Motion search range.
    pub search_range: u8,
    /// In-loop deblocking.
    pub deblock: bool,
    /// Rate-control mode (constant QP by default; target-rate mode emulates
    /// hardware encoders under a bit budget).
    pub rate: tasm_codec::encoder::RateControl,
    /// Encode tiles on multiple threads (bit-identical output either way).
    pub parallel_encode: bool,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            qp: 28,
            gop_len: 30,
            sot_frames: 30,
            search_range: 7,
            deblock: true,
            rate: tasm_codec::encoder::RateControl::ConstantQp,
            parallel_encode: true,
        }
    }
}

impl StorageConfig {
    fn encoder(&self) -> EncoderConfig {
        EncoderConfig {
            gop_len: self.gop_len,
            qp: self.qp,
            search_range: self.search_range,
            deblock: self.deblock,
            rate: self.rate,
        }
    }
}

/// One sequence of tiles: a frame range sharing a layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SotEntry {
    /// First frame (global, inclusive).
    pub start: u32,
    /// Last frame (global, exclusive).
    pub end: u32,
    /// Layout used for these frames.
    pub layout: TileLayout,
    /// How many times this SOT has been re-tiled (diagnostics).
    pub retile_count: u32,
}

impl SotEntry {
    /// Frames in this SOT.
    pub fn frames(&self) -> Range<u32> {
        self.start..self.end
    }

    /// Number of frames.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Persistent description of a stored video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoManifest {
    /// Video name (directory name under the store root).
    pub name: String,
    /// Frame width.
    pub width: u32,
    /// Frame height.
    pub height: u32,
    /// Frames per second (metadata).
    pub fps: u32,
    /// Total frames.
    pub frame_count: u32,
    /// Encoding parameters shared by all SOTs.
    pub config: StorageConfig,
    /// The video's SOTs in temporal order.
    pub sots: Vec<SotEntry>,
}

impl VideoManifest {
    /// Index of the SOT containing `frame`.
    pub fn sot_for_frame(&self, frame: u32) -> Option<usize> {
        // SOTs are fixed-length except the last; direct computation.
        if frame >= self.frame_count {
            return None;
        }
        Some((frame / self.config.sot_frames) as usize)
    }

    /// Indices of the SOTs overlapping `frames`.
    pub fn sots_for_range(&self, frames: Range<u32>) -> Range<usize> {
        if frames.start >= frames.end || frames.start >= self.frame_count {
            return 0..0;
        }
        let first = (frames.start / self.config.sot_frames) as usize;
        let last_frame = frames.end.min(self.frame_count) - 1;
        let last = (last_frame / self.config.sot_frames) as usize;
        first..(last + 1).min(self.sots.len())
    }
}

/// Per-tile decode output: `(tile raster index, frames over the local span)`.
pub type DecodedTiles = Vec<(u32, Vec<Arc<Frame>>)>;

/// Costs of a retile operation (decode existing + encode new).
#[derive(Debug, Clone, Copy, Default)]
pub struct RetileStats {
    /// Work to decode the SOT's current tiles.
    pub decode: DecodeStats,
    /// Work to encode the new layout.
    pub encode: EncodeStats,
}

impl RetileStats {
    /// Total wall-clock seconds of the transcode.
    pub fn seconds(&self) -> f64 {
        self.decode.seconds() + self.encode.seconds()
    }
}

/// The on-disk tile store, with its attached decode-execution settings:
/// worker count for the parallel tile-decode pipeline and an optional
/// shared decoded-GOP cache.
pub struct VideoStore {
    root: PathBuf,
    /// Canonical identity of this store in shared-cache keys.
    store_id: Arc<str>,
    workers: usize,
    cache: Option<Arc<DecodedTileCache>>,
}

impl VideoStore {
    /// Opens (creating) a store rooted at `root` with default execution
    /// settings: auto worker count, no decoded-tile cache.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_with(root, 0, 0)
    }

    /// Opens a store with explicit execution settings: `workers` decode
    /// threads (`0` = one per available core) and a decoded-GOP cache of
    /// `cache_bytes` (`0` disables caching).
    pub fn open_with(
        root: impl Into<PathBuf>,
        workers: usize,
        cache_bytes: u64,
    ) -> Result<Self, StoreError> {
        let cache = (cache_bytes > 0).then(|| Arc::new(DecodedTileCache::new(cache_bytes)));
        Self::open_shared(root, workers, cache)
    }

    /// Opens a store sharing an existing decoded-GOP cache — lets several
    /// store handles (e.g. per-connection `Tasm` instances over the same
    /// directory) hit each other's warm GOPs.
    pub fn open_shared(
        root: impl Into<PathBuf>,
        workers: usize,
        cache: Option<Arc<DecodedTileCache>>,
    ) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        // Canonicalize so two handles over the same directory share cache
        // entries regardless of how the path was spelled.
        let store_id: Arc<str> = Arc::from(
            fs::canonicalize(&root)
                .unwrap_or_else(|_| root.clone())
                .to_string_lossy()
                .as_ref(),
        );
        Ok(VideoStore {
            root,
            store_id,
            workers,
            cache,
        })
    }

    /// Identity of this store in shared decoded-GOP cache keys.
    pub(crate) fn store_id(&self) -> Arc<str> {
        self.store_id.clone()
    }

    /// Worker threads the decode executor will use.
    pub(crate) fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// The attached decoded-GOP cache, if any.
    pub fn decoded_cache(&self) -> Option<&DecodedTileCache> {
        self.cache.as_deref()
    }

    /// Shareable handle to the decoded-GOP cache, if any.
    pub fn decoded_cache_handle(&self) -> Option<Arc<DecodedTileCache>> {
        self.cache.clone()
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Ingests a video: splits it into SOTs, encodes each under the layout
    /// chosen by `layout_for`, writes tile files and the manifest.
    ///
    /// `layout_for(sot_index, frames)` returns the initial layout for each
    /// SOT (untiled `ω` for lazy strategies, object layouts for eager/edge).
    pub fn ingest(
        &self,
        name: &str,
        src: &dyn FrameSource,
        fps: u32,
        cfg: StorageConfig,
        mut layout_for: impl FnMut(usize, Range<u32>) -> TileLayout,
    ) -> Result<(VideoManifest, EncodeStats), StoreError> {
        assert!(
            cfg.sot_frames > 0 && cfg.sot_frames.is_multiple_of(cfg.gop_len),
            "SOT duration must be a positive multiple of the GOP length"
        );
        assert!(
            !name.is_empty() && !name.contains(['/', '\\']),
            "invalid video name"
        );
        let dir = self.root.join(name);
        if dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        fs::create_dir_all(&dir)?;
        // Any cached GOPs of a previous video under this name are stale.
        if let Some(cache) = &self.cache {
            cache.invalidate_video(&self.store_id, name);
        }

        let mut sots = Vec::new();
        let mut total = EncodeStats::default();
        let mut start = 0u32;
        let mut sot_idx = 0usize;
        while start < src.len() {
            let end = (start + cfg.sot_frames).min(src.len());
            let layout = layout_for(sot_idx, start..end);
            layout.check_covers(src.width(), src.height())?;
            let slice = SliceSource::new(src, start, end - start);
            let (tiles, stats) =
                encode_video(&slice, &layout, &cfg.encoder(), cfg.parallel_encode)?;
            total += stats;
            self.write_sot_files(name, start, end, &tiles)?;
            sots.push(SotEntry {
                start,
                end,
                layout,
                retile_count: 0,
            });
            start = end;
            sot_idx += 1;
        }

        let manifest = VideoManifest {
            name: name.to_string(),
            width: src.width(),
            height: src.height(),
            fps,
            frame_count: src.len(),
            config: cfg,
            sots,
        };
        self.save_manifest(&manifest)?;
        Ok((manifest, total))
    }

    /// Loads a video's manifest.
    pub fn load_manifest(&self, name: &str) -> Result<VideoManifest, StoreError> {
        let path = self.root.join(name).join("manifest.json");
        if !path.exists() {
            return Err(StoreError::NotFound(format!("video '{name}'")));
        }
        Ok(serde_json::from_slice(&fs::read(path)?)?)
    }

    /// Persists a manifest (after retiling).
    pub fn save_manifest(&self, manifest: &VideoManifest) -> Result<(), StoreError> {
        let path = self.root.join(&manifest.name).join("manifest.json");
        fs::write(path, serde_json::to_vec_pretty(manifest)?)?;
        Ok(())
    }

    /// Reads one tile file of one SOT.
    pub fn read_tile(
        &self,
        manifest: &VideoManifest,
        sot_idx: usize,
        tile_idx: u32,
    ) -> Result<TileVideo, StoreError> {
        let sot = manifest
            .sots
            .get(sot_idx)
            .ok_or_else(|| StoreError::NotFound(format!("SOT {sot_idx}")))?;
        let path = self.tile_path(&manifest.name, sot.start, sot.end, tile_idx);
        if !path.exists() {
            return Err(StoreError::NotFound(path.display().to_string()));
        }
        Ok(TileVideo::from_bytes(&fs::read(path)?)?)
    }

    /// Plans the decode of a set of tiles of one SOT over a *local* frame
    /// range: one [`TileDecodeRequest`] per tile. Planning is pure — the
    /// work happens in [`exec::execute`].
    pub fn plan_decode_tiles(
        &self,
        manifest: &VideoManifest,
        sot_idx: usize,
        tile_indices: &[u32],
        local_frames: Range<u32>,
    ) -> Result<Vec<TileDecodeRequest>, StoreError> {
        let sot = manifest
            .sots
            .get(sot_idx)
            .ok_or_else(|| StoreError::NotFound(format!("SOT {sot_idx}")))?;
        if local_frames.start >= local_frames.end || local_frames.end > sot.len() {
            return Err(StoreError::NotFound(format!(
                "local frames {local_frames:?} of SOT {sot_idx}"
            )));
        }
        Ok(tile_indices
            .iter()
            .map(|&tile| TileDecodeRequest {
                sot_idx,
                tile,
                local_span: local_frames.clone(),
            })
            .collect())
    }

    /// Decodes a set of tiles of one SOT over a *local* frame range through
    /// the parallel execution pipeline, returning per-tile frames plus
    /// exact accounting of the decode work (cache reuse excluded — see
    /// [`VideoStore::decode_tiles_cached`] for the cache counters).
    pub fn decode_tiles(
        &self,
        manifest: &VideoManifest,
        sot_idx: usize,
        tile_indices: &[u32],
        local_frames: Range<u32>,
    ) -> Result<(DecodedTiles, DecodeStats), StoreError> {
        let (tiles, stats, _) =
            self.decode_tiles_cached(manifest, sot_idx, tile_indices, local_frames)?;
        Ok((tiles, stats))
    }

    /// [`VideoStore::decode_tiles`] with cache-reuse accounting included.
    pub fn decode_tiles_cached(
        &self,
        manifest: &VideoManifest,
        sot_idx: usize,
        tile_indices: &[u32],
        local_frames: Range<u32>,
    ) -> Result<(DecodedTiles, DecodeStats, CacheStats), StoreError> {
        let plan = self.plan_decode_tiles(manifest, sot_idx, tile_indices, local_frames)?;
        let (decoded, stats, cache, _shared) = exec::execute(self, manifest, &plan)?;
        let out = decoded.into_iter().map(|d| (d.tile, d.frames)).collect();
        Ok((out, stats, cache))
    }

    /// Re-encodes one SOT under `new_layout` (the incremental policies'
    /// re-tile operation). Updates and persists the manifest.
    pub fn retile(
        &self,
        manifest: &mut VideoManifest,
        sot_idx: usize,
        new_layout: TileLayout,
    ) -> Result<RetileStats, StoreError> {
        new_layout.check_covers(manifest.width, manifest.height)?;
        let sot = manifest
            .sots
            .get(sot_idx)
            .ok_or_else(|| StoreError::NotFound(format!("SOT {sot_idx}")))?
            .clone();
        if sot.layout == new_layout {
            return Ok(RetileStats::default());
        }

        // Decode the SOT in full from its current tiles.
        let old_tile_count = sot.layout.tile_count();
        let tiles: Vec<TileVideo> = (0..old_tile_count)
            .map(|t| self.read_tile(manifest, sot_idx, t))
            .collect::<Result<_, _>>()?;
        let stitched = StitchedVideo::stitch(sot.layout.clone(), tiles)?;
        let (frames, decode) = stitched.decode_all()?;

        // Re-encode under the new layout.
        let src = VecFrameSource::new(frames);
        let (new_tiles, encode) = encode_video(
            &src,
            &new_layout,
            &manifest.config.encoder(),
            manifest.config.parallel_encode,
        )?;

        // Replace files: remove stale tiles, write new ones.
        let dir = self.sot_dir(&manifest.name, sot.start, sot.end);
        fs::remove_dir_all(&dir)?;
        self.write_sot_files(&manifest.name, sot.start, sot.end, &new_tiles)?;

        let entry = &mut manifest.sots[sot_idx];
        entry.layout = new_layout;
        entry.retile_count += 1;
        self.save_manifest(manifest)?;
        // The layout epoch in cache keys changed with `retile_count`; drop
        // the stale entries eagerly to reclaim their bytes.
        if let Some(cache) = &self.cache {
            cache.invalidate_sot(&self.store_id, &manifest.name, sot.start);
        }
        Ok(RetileStats { decode, encode })
    }

    /// Total bytes of all tile files of a video.
    pub fn video_size_bytes(&self, manifest: &VideoManifest) -> Result<u64, StoreError> {
        let mut total = 0;
        for (i, sot) in manifest.sots.iter().enumerate() {
            for t in 0..sot.layout.tile_count() {
                let path = self.tile_path(&manifest.name, sot.start, sot.end, t);
                total += fs::metadata(&path)
                    .map_err(|_| StoreError::NotFound(format!("SOT {i} tile {t}")))?
                    .len();
            }
        }
        Ok(total)
    }

    fn sot_dir(&self, name: &str, start: u32, end: u32) -> PathBuf {
        self.root
            .join(name)
            .join(format!("sot_{start:06}_{end:06}"))
    }

    fn tile_path(&self, name: &str, start: u32, end: u32, tile: u32) -> PathBuf {
        self.sot_dir(name, start, end)
            .join(format!("tile_{tile:03}.tvf"))
    }

    fn write_sot_files(
        &self,
        name: &str,
        start: u32,
        end: u32,
        tiles: &[TileVideo],
    ) -> Result<(), StoreError> {
        let dir = self.sot_dir(name, start, end);
        fs::create_dir_all(&dir)?;
        for (i, tile) in tiles.iter().enumerate() {
            fs::write(self.tile_path(name, start, end, i as u32), tile.to_bytes())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_video::{Plane, Rect};

    fn test_source(frames: u32) -> VecFrameSource {
        VecFrameSource::new(
            (0..frames)
                .map(|i| {
                    let mut f = Frame::filled(64, 64, 90, 128, 128);
                    for y in 0..64 {
                        for x in 0..64 {
                            f.set_sample(
                                Plane::Y,
                                x,
                                y,
                                ((x * 3 + y * 5 + i * 2) % 200 + 20) as u8,
                            );
                        }
                    }
                    f.fill_rect(Rect::new((i * 4) % 48, 16, 16, 16), 230, 90, 160);
                    f
                })
                .collect(),
        )
    }

    fn temp_store(tag: &str) -> VideoStore {
        let dir = std::env::temp_dir().join(format!("tasm-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        VideoStore::open(dir).unwrap()
    }

    fn small_cfg() -> StorageConfig {
        StorageConfig {
            gop_len: 5,
            sot_frames: 10,
            parallel_encode: false,
            ..Default::default()
        }
    }

    #[test]
    fn ingest_creates_sots_and_manifest() {
        let store = temp_store("ingest");
        let src = test_source(25);
        let (manifest, stats) = store
            .ingest("v", &src, 30, small_cfg(), |_, _| {
                TileLayout::untiled(64, 64)
            })
            .unwrap();
        assert_eq!(manifest.sots.len(), 3); // 10 + 10 + 5
        assert_eq!(manifest.sots[2].frames(), 20..25);
        assert!(stats.bytes_produced > 0);
        let loaded = store.load_manifest("v").unwrap();
        assert_eq!(loaded, manifest);
        assert!(store.video_size_bytes(&manifest).unwrap() > 0);
    }

    #[test]
    fn sot_lookup_by_frame() {
        let store = temp_store("lookup");
        let src = test_source(25);
        let (m, _) = store
            .ingest("v", &src, 30, small_cfg(), |_, _| {
                TileLayout::untiled(64, 64)
            })
            .unwrap();
        assert_eq!(m.sot_for_frame(0), Some(0));
        assert_eq!(m.sot_for_frame(9), Some(0));
        assert_eq!(m.sot_for_frame(10), Some(1));
        assert_eq!(m.sot_for_frame(24), Some(2));
        assert_eq!(m.sot_for_frame(25), None);
        assert_eq!(m.sots_for_range(5..15), 0..2);
        assert_eq!(m.sots_for_range(10..11), 1..2);
        assert_eq!(m.sots_for_range(0..25), 0..3);
        assert_eq!(m.sots_for_range(30..40), 0..0);
    }

    #[test]
    fn decode_tiles_returns_requested_frames() {
        let store = temp_store("decode");
        let src = test_source(20);
        let layout = TileLayout::uniform(64, 64, 2, 2).unwrap();
        let (m, _) = store
            .ingest("v", &src, 30, small_cfg(), move |_, _| layout.clone())
            .unwrap();
        let (tiles, stats) = store.decode_tiles(&m, 0, &[0, 3], 2..6).unwrap();
        assert_eq!(tiles.len(), 2);
        assert_eq!(tiles[0].1.len(), 4);
        assert!(stats.samples_decoded > 0);
        // Warmup from the GOP start at frame 0 is charged.
        assert_eq!(stats.frames_decoded, 2 * 6);
    }

    #[test]
    fn retile_preserves_content() {
        let store = temp_store("retile");
        let src = test_source(10);
        let (mut m, _) = store
            .ingest("v", &src, 30, small_cfg(), |_, _| {
                TileLayout::untiled(64, 64)
            })
            .unwrap();
        let new_layout = TileLayout::uniform(64, 64, 2, 2).unwrap();
        let stats = store.retile(&mut m, 0, new_layout.clone()).unwrap();
        assert!(stats.encode.bytes_produced > 0);
        assert!(stats.seconds() > 0.0);
        assert_eq!(m.sots[0].layout, new_layout);
        assert_eq!(m.sots[0].retile_count, 1);

        // The re-tiled SOT still decodes to (approximately) the source.
        let (tiles, _) = store.decode_tiles(&m, 0, &[0, 1, 2, 3], 0..10).unwrap();
        let mut composite = Frame::black(64, 64);
        for (t, frames) in &tiles {
            let rect = new_layout.tile_rect_by_index(*t);
            composite.blit(&frames[3], frames[3].rect(), rect.x, rect.y);
        }
        let r = tasm_video::psnr_frames(&src.frame(3), &composite);
        assert!(r.y > 26.0, "retiled PSNR {:.1}", r.y);

        // Manifest on disk reflects the new layout.
        let reloaded = store.load_manifest("v").unwrap();
        assert_eq!(reloaded.sots[0].layout, m.sots[0].layout);
    }

    #[test]
    fn retile_to_same_layout_is_free() {
        let store = temp_store("retile-noop");
        let src = test_source(10);
        let (mut m, _) = store
            .ingest("v", &src, 30, small_cfg(), |_, _| {
                TileLayout::untiled(64, 64)
            })
            .unwrap();
        let stats = store
            .retile(&mut m, 0, TileLayout::untiled(64, 64))
            .unwrap();
        assert_eq!(stats.encode.bytes_produced, 0);
        assert_eq!(m.sots[0].retile_count, 0);
    }

    #[test]
    fn missing_video_reports_not_found() {
        let store = temp_store("missing");
        assert!(matches!(
            store.load_manifest("nope"),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn reingest_replaces_existing_video() {
        let store = temp_store("reingest");
        let src = test_source(10);
        let (m1, _) = store
            .ingest("v", &src, 30, small_cfg(), |_, _| {
                TileLayout::untiled(64, 64)
            })
            .unwrap();
        let layout = TileLayout::uniform(64, 64, 1, 2).unwrap();
        let (m2, _) = store
            .ingest("v", &src, 30, small_cfg(), move |_, _| layout.clone())
            .unwrap();
        assert_ne!(m1.sots[0].layout, m2.sots[0].layout);
        // Old single-tile files are gone; new layout has 2 tiles.
        assert!(store.read_tile(&m2, 0, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "multiple of the GOP")]
    fn sot_must_align_to_gops() {
        let store = temp_store("align");
        let src = test_source(10);
        let cfg = StorageConfig {
            gop_len: 4,
            sot_frames: 10,
            ..Default::default()
        };
        let _ = store.ingest("v", &src, 30, cfg, |_, _| TileLayout::untiled(64, 64));
    }
}
